"""repro — a from-scratch reproduction of GOGGLES (SIGMOD 2020).

GOGGLES labels unlabeled image collections via *affinity coding*: a
library of reusable VGG-16 prototype affinity functions scores every
pair of images, and a hierarchical generative model clusters the
resulting affinity matrix, with a tiny labeled development set mapping
clusters to classes.

Quickstart::

    from repro import Goggles, GogglesConfig, make_dataset

    dataset = make_dataset("cub", n_per_class=40)
    dev = dataset.sample_dev_set(per_class=5, seed=0)
    result = Goggles(GogglesConfig(seed=0)).label(dataset.images, dev)
    print("labeling accuracy:", result.accuracy(dataset.labels, exclude=dev.indices))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import Goggles, GogglesConfig, GogglesResult
from repro.datasets import DATASET_NAMES, LabeledImageDataset, make_dataset
from repro.nn import VGG16, VGGConfig

__version__ = "1.0.0"

__all__ = [
    "Goggles",
    "GogglesConfig",
    "GogglesResult",
    "DATASET_NAMES",
    "LabeledImageDataset",
    "make_dataset",
    "VGG16",
    "VGGConfig",
    "__version__",
]
