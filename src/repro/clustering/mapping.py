"""Optimal cluster→class mapping for baseline clustering methods.

The paper gives the clustering baselines the benefit of the doubt:
"As we would like to see the absolute best performance of the baseline
clustering approaches, we use the optimal 'cluster-class' mapping for
all baselines" (§5.1.6).  The optimum is a linear assignment on the
cluster/class contingency table.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.utils.validation import check_labels

__all__ = ["optimal_mapping_accuracy", "contingency_table"]


def contingency_table(cluster_labels: np.ndarray, true_labels: np.ndarray, n_classes: int) -> np.ndarray:
    """``C[k, k']`` = number of instances in cluster k with true class k'."""
    cluster_labels = check_labels(cluster_labels, n_classes=n_classes, name="cluster_labels")
    true_labels = check_labels(true_labels, n_classes=n_classes, name="true_labels")
    if cluster_labels.shape != true_labels.shape:
        raise ValueError("cluster and true labels must align")
    table = np.zeros((n_classes, n_classes), dtype=np.int64)
    for cluster, klass in zip(cluster_labels, true_labels):
        table[cluster, klass] += 1
    return table


def optimal_mapping_accuracy(
    cluster_labels: np.ndarray, true_labels: np.ndarray, n_classes: int
) -> tuple[float, np.ndarray]:
    """Best achievable accuracy over all one-to-one cluster→class maps.

    Returns ``(accuracy, cluster_to_class)``.
    """
    table = contingency_table(cluster_labels, true_labels, n_classes)
    rows, cols = linear_sum_assignment(table, maximize=True)
    mapping = np.empty(n_classes, dtype=np.int64)
    mapping[rows] = cols
    correct = table[rows, cols].sum()
    return float(correct / max(len(cluster_labels), 1)), mapping
