"""K-means clustering (Lloyd's algorithm with k-means++ seeding).

Table 1 ablation baseline: "We compare our proposed hierarchical model
for clustering with other baseline methods, including K-means ..."
(§5.1.6).  The baselines consume the concatenated affinity features.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.inference.base_gmm import kmeans_plusplus_init
from repro.utils.rng import spawn_rng
from repro.utils.validation import check_array

__all__ = ["KMeans", "KMeansResult"]


@dataclass(frozen=True)
class KMeansResult:
    """Clustering outcome: hard labels, centroids, and inertia."""

    labels: np.ndarray
    centers: np.ndarray
    inertia: float
    n_iterations: int


class KMeans:
    """Standard K-means with multiple seeded restarts.

    Parameters:
        n_clusters: K.
        n_init: restarts (best inertia wins).
        max_iter: Lloyd iterations per restart.
        tol: stop when inertia improves less than this.
        seed: RNG seed.
    """

    def __init__(
        self,
        n_clusters: int,
        n_init: int = 4,
        max_iter: int = 100,
        tol: float = 1e-7,
        seed: int = 0,
    ):
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed

    def _run(self, x: np.ndarray, rng: np.random.Generator) -> KMeansResult:
        n = x.shape[0]
        centers = kmeans_plusplus_init(x, self.n_clusters, rng)
        labels = np.zeros(n, dtype=np.int64)
        previous_inertia = np.inf
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            distances = ((x[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
            labels = distances.argmin(axis=1)
            inertia = float(distances[np.arange(n), labels].sum())
            for k in range(self.n_clusters):
                members = x[labels == k]
                if members.shape[0] == 0:
                    # Re-seed empty cluster at the point farthest from its centre.
                    farthest = int(distances[np.arange(n), labels].argmax())
                    centers[k] = x[farthest]
                else:
                    centers[k] = members.mean(axis=0)
            if previous_inertia - inertia < self.tol:
                previous_inertia = inertia
                break
            previous_inertia = inertia
        return KMeansResult(labels=labels, centers=centers, inertia=previous_inertia, n_iterations=iteration)

    def fit_predict(self, x: np.ndarray) -> KMeansResult:
        """Cluster rows of ``x``; returns the best of ``n_init`` restarts."""
        x = check_array(np.asarray(x, dtype=np.float64), name="x", ndim=2)
        if x.shape[0] < self.n_clusters:
            raise ValueError(f"need at least {self.n_clusters} points, got {x.shape[0]}")
        rng = spawn_rng(self.seed, "kmeans")
        best: KMeansResult | None = None
        for restart in range(self.n_init):
            result = self._run(x, spawn_rng(rng, "restart", restart))
            if best is None or result.inertia < best.inertia:
                best = result
        assert best is not None
        return best
