"""Spectral co-clustering (Dhillon, KDD 2001) — Table 1 ablation baseline.

The paper's "Spectral" baseline is spectral co-clustering of the
affinity features: treat the (non-negative) data matrix as a bipartite
graph between rows (instances) and columns (affinity features),
normalise ``A_n = D_1^{-1/2} A D_2^{-1/2}``, take the singular vectors
after the first, and k-means the projected rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.kmeans import KMeans
from repro.utils.validation import check_array

__all__ = ["SpectralCoclustering", "SpectralResult"]


@dataclass(frozen=True)
class SpectralResult:
    """Co-clustering outcome: row (instance) labels and column labels."""

    row_labels: np.ndarray
    column_labels: np.ndarray


class SpectralCoclustering:
    """Bipartite spectral graph partitioning of a non-negative matrix.

    Parameters:
        n_clusters: number of co-clusters K.
        n_init: k-means restarts on the spectral embedding.
        seed: RNG seed.
    """

    def __init__(self, n_clusters: int, n_init: int = 4, seed: int = 0):
        if n_clusters < 2:
            raise ValueError(f"n_clusters must be >= 2, got {n_clusters}")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.seed = seed

    def fit_predict(self, matrix: np.ndarray) -> SpectralResult:
        """Co-cluster ``matrix`` (rows x columns, non-negative).

        Affinities in [-1, 1] should be shifted to [0, 1] by the caller;
        negative entries raise.
        """
        a = check_array(np.asarray(matrix, dtype=np.float64), name="matrix", ndim=2)
        if a.min() < 0:
            raise ValueError("spectral co-clustering needs a non-negative matrix")
        row_sums = np.maximum(a.sum(axis=1), 1e-12)
        col_sums = np.maximum(a.sum(axis=0), 1e-12)
        d1 = 1.0 / np.sqrt(row_sums)
        d2 = 1.0 / np.sqrt(col_sums)
        normalised = d1[:, None] * a * d2[None, :]
        # log2(K) singular vector pairs after the leading (trivial) one.
        n_vectors = max(1, int(np.ceil(np.log2(self.n_clusters))))
        u, _, vt = np.linalg.svd(normalised, full_matrices=False)
        u_part = u[:, 1 : 1 + n_vectors]
        v_part = vt[1 : 1 + n_vectors].T
        row_embedding = d1[:, None] * u_part
        col_embedding = d2[:, None] * v_part
        stacked = np.concatenate([row_embedding, col_embedding], axis=0)
        clustering = KMeans(self.n_clusters, n_init=self.n_init, seed=self.seed).fit_predict(stacked)
        n_rows = a.shape[0]
        return SpectralResult(
            row_labels=clustering.labels[:n_rows],
            column_labels=clustering.labels[n_rows:],
        )
