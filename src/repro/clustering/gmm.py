"""Full-covariance Gaussian mixture (EM) — Table 1 ablation baseline.

This is the "naive invocation of GMM on our affinity matrix" the paper
argues against in §4: a K-component mixture with *full* covariance
matrices over the concatenated affinity features.  In high dimensions
the covariance estimate needs heavy regularisation (shrinkage to the
diagonal), which is exactly the pathology §4 describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import solve_triangular
from scipy.special import logsumexp

from repro.core.inference.base_gmm import kmeans_plusplus_init
from repro.utils.rng import spawn_rng
from repro.utils.validation import check_array

__all__ = ["FullCovarianceGMM", "FullGMMResult"]


@dataclass(frozen=True)
class FullGMMResult:
    """EM outcome for the full-covariance mixture."""

    responsibilities: np.ndarray
    log_likelihood: float
    n_iterations: int
    converged: bool

    @property
    def labels(self) -> np.ndarray:
        return self.responsibilities.argmax(axis=1)


class FullCovarianceGMM:
    """K-component GMM with full covariances and shrinkage regularisation.

    Parameters:
        n_components: K.
        max_iter / tol: EM schedule.
        shrinkage: convex combination weight pulling each covariance
            toward its diagonal (needed when features >> examples).
        ridge: additive diagonal jitter for numerical stability.
        seed: initialisation seed.
    """

    def __init__(
        self,
        n_components: int,
        max_iter: int = 100,
        tol: float = 1e-6,
        shrinkage: float = 0.5,
        ridge: float = 1e-6,
        seed: int = 0,
    ):
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        if not 0.0 <= shrinkage <= 1.0:
            raise ValueError(f"shrinkage must be in [0, 1], got {shrinkage}")
        self.n_components = n_components
        self.max_iter = max_iter
        self.tol = tol
        self.shrinkage = shrinkage
        self.ridge = ridge
        self.seed = seed
        self.weights_: np.ndarray | None = None
        self.means_: np.ndarray | None = None
        self.covariances_: np.ndarray | None = None

    def _regularise(self, cov: np.ndarray) -> np.ndarray:
        diag = np.diag(np.diag(cov))
        out = (1 - self.shrinkage) * cov + self.shrinkage * diag
        out[np.diag_indices_from(out)] += self.ridge
        return out

    def _log_prob(self, x: np.ndarray) -> np.ndarray:
        assert self.means_ is not None and self.covariances_ is not None and self.weights_ is not None
        n, d = x.shape
        out = np.empty((n, self.n_components))
        for k in range(self.n_components):
            diff = x - self.means_[k]
            try:
                chol = np.linalg.cholesky(self.covariances_[k])
            except np.linalg.LinAlgError:
                cov = self.covariances_[k].copy()
                cov[np.diag_indices_from(cov)] += 1e-3 * max(np.trace(cov) / d, 1.0)
                chol = np.linalg.cholesky(cov)
            solved = solve_triangular(chol, diff.T, lower=True)
            quad = (solved**2).sum(axis=0)
            log_det = 2.0 * np.log(np.diag(chol)).sum()
            out[:, k] = -0.5 * (d * np.log(2 * np.pi) + log_det + quad)
        return out + np.log(np.maximum(self.weights_, 1e-300))

    def fit(self, x: np.ndarray) -> FullGMMResult:
        """Run EM on ``(N, D)`` data."""
        x = check_array(np.asarray(x, dtype=np.float64), name="x", ndim=2)
        n, d = x.shape
        if n < self.n_components:
            raise ValueError(f"need at least {self.n_components} examples, got {n}")
        rng = spawn_rng(self.seed, "full-gmm")
        self.means_ = kmeans_plusplus_init(x, self.n_components, rng)
        base_cov = self._regularise(np.cov(x.T) if n > 1 else np.eye(d))
        self.covariances_ = np.stack([base_cov.copy() for _ in range(self.n_components)])
        self.weights_ = np.full(self.n_components, 1.0 / self.n_components)

        previous_ll = -np.inf
        converged = False
        responsibilities = np.full((n, self.n_components), 1.0 / self.n_components)
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            log_joint = self._log_prob(x)
            log_norm = logsumexp(log_joint, axis=1, keepdims=True)
            responsibilities = np.exp(log_joint - log_norm)
            log_likelihood = float(log_norm.sum())
            nk = np.maximum(responsibilities.sum(axis=0), 1e-10)
            self.weights_ = nk / n
            for k in range(self.n_components):
                self.means_[k] = responsibilities[:, k] @ x / nk[k]
                diff = x - self.means_[k]
                cov = (responsibilities[:, k, None] * diff).T @ diff / nk[k]
                self.covariances_[k] = self._regularise(cov)
            if log_likelihood - previous_ll < self.tol and iteration > 1:
                converged = True
                previous_ll = log_likelihood
                break
            previous_ll = log_likelihood
        return FullGMMResult(
            responsibilities=responsibilities,
            log_likelihood=previous_ll,
            n_iterations=iteration,
            converged=converged,
        )
