"""Baseline clustering methods for the class-inference ablation."""

from repro.clustering.gmm import FullCovarianceGMM, FullGMMResult
from repro.clustering.kmeans import KMeans, KMeansResult
from repro.clustering.mapping import contingency_table, optimal_mapping_accuracy
from repro.clustering.spectral import SpectralCoclustering, SpectralResult

__all__ = [
    "FullCovarianceGMM",
    "FullGMMResult",
    "KMeans",
    "KMeansResult",
    "contingency_table",
    "optimal_mapping_accuracy",
    "SpectralCoclustering",
    "SpectralResult",
]
