"""Experiment harness: one runner per table/figure of the paper's §5.

Every benchmark in ``benchmarks/`` and several examples call into this
module, so the exact experiment protocol lives in one place:

* :func:`run_table1_row` / :func:`run_table1` — labeling accuracy of
  GOGGLES, Snorkel, Snuba and the ablation baselines (Table 1).
* :func:`run_table2_row` / :func:`run_table2` — end-model accuracy of
  FSL, Snorkel, Snuba, GOGGLES and the supervised bound (Table 2).
* :func:`run_fig2` — per-affinity-function same/different-class score
  separation (Figure 2).
* :func:`run_fig5` — affinity-matrix block structure (Figure 5).
* :func:`run_fig7` — dev-set size theory curves (Figure 7).
* :func:`run_fig8` — accuracy vs. development-set size (Figure 8).
* :func:`run_fig9` — accuracy vs. number of affinity functions (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering import FullCovarianceGMM, KMeans, SpectralCoclustering, optimal_mapping_accuracy
from repro.core.affinity import AffinityMatrix, affinity_from_features
from repro.core.goggles import Goggles, GogglesConfig
from repro.engine import AffinityEngine, EngineConfig, InferenceEngine, PrototypeAffinitySource
from repro.core.inference.bernoulli import BernoulliMixture, one_hot_encode_lp
from repro.core.inference.hierarchical import HierarchicalConfig, HierarchicalModel
from repro.core.inference.mapping import apply_mapping, map_clusters_to_classes
from repro.core.inference.theory import p_mapping_correct_lower_bound
from repro.datasets import make_dataset
from repro.datasets.base import DevSet
from repro.endmodel import TrainConfig, one_hot, train_head
from repro.eval.metrics import labeling_accuracy, mask_excluding, roc_auc
from repro.fsl import FSLBaseline, FSLConfig
from repro.labeling import LabelModel, Snuba, apply_labeling_functions, attribute_lfs_from_dataset
from repro.labeling.primitives import extract_snuba_primitives
from repro.nn.vgg import VGG16, VGGConfig
from repro.utils.rng import derive_seed
from repro.vision.hog import hog_batch
from repro.vision.pca import PCA

__all__ = [
    "ExperimentSettings",
    "shared_model",
    "build_affinity",
    "run_table1_row",
    "run_table1",
    "run_table2_row",
    "run_table2",
    "run_fig2",
    "run_fig5",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_inference_ablation",
]


@dataclass(frozen=True)
class ExperimentSettings:
    """Shared experiment protocol (paper §5.1).

    Attributes:
        n_per_class: images generated per class per run.
        image_size: square image side.
        dev_per_class: labeled dev examples per class (paper: 5).
        n_seeds: independent runs averaged per cell ("all experiments
            ... are conducted 10 times, and we report the average";
            smaller default keeps CPU benchmarks affordable).
        vgg_seed: seed of the surrogate-pretrained backbone.
        seed: root seed for everything else.
        n_jobs: worker count for affinity tiling and base-model
            fitting; results are identical at any width.
        executor: worker model for base-model fits (``"serial"`` /
            ``"thread"`` / ``"process"``); value-neutral like n_jobs.
        batch_size: images per backbone forward pass in the affinity
            engine (memory bound, value-neutral).
        precision: engine compute precision (``"float64"`` exact,
            ``"float32"`` fast — agreement within ``np.allclose``).
            ``None`` picks the mode default: float64 dense, float32
            sparse.
        cache_dir: artifact cache shared across the harness' runs;
            ``None`` disables on-disk caching.
        cache_max_bytes: size budget for that cache (LRU eviction);
            ``None`` means unbounded.
        affinity_mode: ``"dense"`` (default) or ``"sparse"`` top-k
            affinity (see :class:`repro.engine.engine.EngineConfig`).
        top_k: kept affinities per row in sparse mode (``None`` =
            ``ceil(N / 4)``).
        memmap: memory-mapped block densification in sparse mode.
    """

    n_per_class: int = 40
    image_size: int = 64
    dev_per_class: int = 5
    n_seeds: int = 5
    vgg_seed: int = 0
    seed: int = 0
    n_jobs: int = 1
    executor: str = "thread"
    batch_size: int | None = 32
    precision: str | None = None
    cache_dir: str | None = None
    cache_max_bytes: int | None = None
    affinity_mode: str = "dense"
    top_k: int | None = None
    memmap: bool = False

    def engine_config(self) -> EngineConfig:
        sparse = self.affinity_mode == "sparse"
        precision = self.precision or ("float32" if sparse else "float64")
        return EngineConfig(
            batch_size=self.batch_size,
            n_jobs=self.n_jobs,
            executor=self.executor,
            precision=precision,
            cache_dir=self.cache_dir,
            cache_max_bytes=self.cache_max_bytes,
            affinity_mode=self.affinity_mode,
            top_k=self.top_k,
            memmap=self.memmap,
        )


_MODEL_CACHE: dict[tuple, VGG16] = {}


def shared_model(settings: ExperimentSettings) -> VGG16:
    """A process-wide cached backbone (it is frozen, so sharing is safe)."""
    key = (settings.vgg_seed,)
    if key not in _MODEL_CACHE:
        _MODEL_CACHE[key] = VGG16(VGGConfig(seed=settings.vgg_seed))
    return _MODEL_CACHE[key]


def build_affinity(
    model: VGG16,
    images: np.ndarray,
    settings: ExperimentSettings,
    top_z: int = 10,
) -> AffinityMatrix:
    """Affinity construction for harness runs, through the staged engine.

    Chunked extraction + tiled similarity + (when ``settings.cache_dir``
    is set) the content-addressed artifact cache, so sweep experiments
    that revisit the same corpus skip step 1 entirely.
    """
    engine = AffinityEngine(PrototypeAffinitySource(model, top_z=top_z), settings.engine_config())
    return engine.build(images, keep_state=False)


def _infer_with_affinity(
    affinity: AffinityMatrix,
    dev: DevSet,
    n_classes: int,
    seed: int,
    n_jobs: int = 1,
    executor: str = "thread",
) -> np.ndarray:
    """Hierarchical inference + dev mapping on a prebuilt affinity matrix."""
    engine = InferenceEngine(
        HierarchicalConfig(n_classes=n_classes, seed=seed), executor=executor, n_jobs=n_jobs
    )
    result = engine.fit(affinity)
    mapping = map_clusters_to_classes(result.posterior, dev, n_classes)
    return apply_mapping(result.posterior, mapping)


# ----------------------------------------------------------------------
# Table 1: labeling accuracy
# ----------------------------------------------------------------------
def run_table1_row(
    dataset_name: str,
    settings: ExperimentSettings,
    run_seed: int,
    methods: tuple[str, ...] = ("goggles", "snorkel", "snuba", "hog", "logits", "kmeans", "gmm", "spectral"),
) -> dict[str, float | None]:
    """One seed of the Table-1 protocol for one dataset.

    Returns labeling accuracy (%) per method; ``None`` where the method
    is not applicable (Snorkel outside CUB).
    """
    model = shared_model(settings)
    dataset = make_dataset(
        dataset_name,
        n_per_class=settings.n_per_class,
        image_size=settings.image_size,
        seed=derive_seed(settings.seed, "table1", dataset_name, run_seed),
        pair_seed=run_seed,
    )
    dev = dataset.sample_dev_set(settings.dev_per_class, seed=derive_seed(settings.seed, "dev", run_seed))
    k = dataset.n_classes
    out: dict[str, float | None] = {}

    affinity: AffinityMatrix | None = None
    if any(m in methods for m in ("goggles", "kmeans", "gmm", "spectral")):
        affinity = build_affinity(model, dataset.images, settings)

    if "goggles" in methods:
        assert affinity is not None
        goggles = Goggles(
            GogglesConfig(
                n_classes=k,
                seed=derive_seed(settings.seed, "goggles", run_seed),
                engine=settings.engine_config(),
            ),
            model=model,
        )
        result = goggles.infer_labels(affinity, dev)
        out["goggles"] = 100 * result.accuracy(dataset.labels, exclude=dev.indices)

    if "snorkel" in methods:
        if dataset.attributes is None:
            out["snorkel"] = None
        else:
            lfs = attribute_lfs_from_dataset(dataset)
            votes = apply_labeling_functions(lfs, dataset.n_examples)
            lm = LabelModel(n_classes=k, seed=derive_seed(settings.seed, "snorkel", run_seed)).fit(votes)
            out["snorkel"] = 100 * labeling_accuracy(
                lm.probabilistic_labels, dataset.labels, exclude=dev.indices
            )

    if "snuba" in methods:
        primitives = extract_snuba_primitives(model, dataset.images, n_components=10)
        snuba = Snuba(n_classes=k, seed=derive_seed(settings.seed, "snuba", run_seed))
        result_snuba = snuba.fit(primitives, dev.indices, dev.labels)
        out["snuba"] = 100 * labeling_accuracy(
            result_snuba.probabilistic_labels, dataset.labels, exclude=dev.indices
        )

    if "hog" in methods:
        descriptors = hog_batch(dataset.images)
        posterior = _infer_with_affinity(
            affinity_from_features(descriptors),
            dev,
            k,
            derive_seed(settings.seed, "hog", run_seed),
            n_jobs=settings.n_jobs,
            executor=settings.executor,
        )
        out["hog"] = 100 * labeling_accuracy(posterior, dataset.labels, exclude=dev.indices)

    if "logits" in methods:
        logits = model.logits(dataset.images)
        posterior = _infer_with_affinity(
            affinity_from_features(logits),
            dev,
            k,
            derive_seed(settings.seed, "logits", run_seed),
            n_jobs=settings.n_jobs,
            executor=settings.executor,
        )
        out["logits"] = 100 * labeling_accuracy(posterior, dataset.labels, exclude=dev.indices)

    score_mask = mask_excluding(dataset.n_examples, dev.indices)
    if "kmeans" in methods:
        assert affinity is not None
        kmeans = KMeans(k, seed=derive_seed(settings.seed, "kmeans", run_seed))
        clustering = kmeans.fit_predict(affinity.values)
        acc, _ = optimal_mapping_accuracy(clustering.labels[score_mask], dataset.labels[score_mask], k)
        out["kmeans"] = 100 * acc

    if "gmm" in methods:
        assert affinity is not None
        # Full-covariance GMM is intractable at αN dimensions (§4's
        # point); following standard practice we give it the top
        # principal components of the affinity features.
        n_components = min(8, affinity.n_examples - 1)
        reduced = PCA(n_components).fit_transform(affinity.values)
        gmm_result = FullCovarianceGMM(
            k, shrinkage=0.9, seed=derive_seed(settings.seed, "gmm", run_seed)
        ).fit(reduced)
        acc, _ = optimal_mapping_accuracy(gmm_result.labels[score_mask], dataset.labels[score_mask], k)
        out["gmm"] = 100 * acc

    if "spectral" in methods:
        assert affinity is not None
        shifted = (affinity.values + 1.0) / 2.0
        coclustering = SpectralCoclustering(k, seed=derive_seed(settings.seed, "spectral", run_seed))
        spectral = coclustering.fit_predict(shifted)
        acc, _ = optimal_mapping_accuracy(spectral.row_labels[score_mask], dataset.labels[score_mask], k)
        out["spectral"] = 100 * acc

    return out


def run_table1(
    settings: ExperimentSettings,
    datasets: tuple[str, ...] = ("cub", "gtsrb", "surface", "tbxray", "pnxray"),
    methods: tuple[str, ...] = ("goggles", "snorkel", "snuba", "hog", "logits", "kmeans", "gmm", "spectral"),
) -> dict[str, dict[str, float | None]]:
    """Full Table 1: mean over ``settings.n_seeds`` runs per dataset."""
    table: dict[str, dict[str, float | None]] = {}
    for dataset_name in datasets:
        rows = [run_table1_row(dataset_name, settings, s, methods) for s in range(settings.n_seeds)]
        merged: dict[str, float | None] = {}
        for method in methods:
            values = [row[method] for row in rows if row.get(method) is not None]
            merged[method] = float(np.mean(values)) if values else None
        table[dataset_name] = merged
    return table


# ----------------------------------------------------------------------
# Table 2: end-model accuracy
# ----------------------------------------------------------------------
def _train_and_score(
    features_train: np.ndarray,
    soft_labels: np.ndarray,
    features_test: np.ndarray,
    test_labels: np.ndarray,
    seed: int,
) -> float:
    result = train_head(features_train, soft_labels, TrainConfig(seed=seed))
    return 100 * float((result.head.predict(features_test) == test_labels).mean())


def run_table2_row(
    dataset_name: str,
    settings: ExperimentSettings,
    run_seed: int,
    methods: tuple[str, ...] = ("fsl", "snorkel", "snuba", "goggles", "upper_bound"),
) -> dict[str, float | None]:
    """One seed of the Table-2 protocol (train labels -> end model -> test)."""
    model = shared_model(settings)
    # Generate train+test pools; the paper uses each dataset's original
    # split, we generate both splits from the same distribution.
    dataset = make_dataset(
        dataset_name,
        n_per_class=settings.n_per_class + settings.n_per_class // 2,
        image_size=settings.image_size,
        seed=derive_seed(settings.seed, "table2", dataset_name, run_seed),
        pair_seed=run_seed,
    )
    train, test = dataset.split(train_fraction=2 / 3, seed=derive_seed(settings.seed, "split", run_seed))
    dev = train.sample_dev_set(settings.dev_per_class, seed=derive_seed(settings.seed, "dev2", run_seed))
    k = dataset.n_classes
    features_train = model.embed(train.images)
    features_test = model.embed(test.images)
    out: dict[str, float | None] = {}

    if "fsl" in methods:
        fsl = FSLBaseline(model, k, FSLConfig(seed=derive_seed(settings.seed, "fsl", run_seed)))
        fsl.fit(train.images, dev)
        out["fsl"] = 100 * float((fsl.predict(test.images) == test.labels).mean())

    if "snorkel" in methods:
        if train.attributes is None:
            out["snorkel"] = None
        else:
            lfs = attribute_lfs_from_dataset(train)
            votes = apply_labeling_functions(lfs, train.n_examples)
            lm = LabelModel(n_classes=k, seed=derive_seed(settings.seed, "snorkel2", run_seed)).fit(votes)
            out["snorkel"] = _train_and_score(
                features_train,
                lm.probabilistic_labels,
                features_test,
                test.labels,
                derive_seed(settings.seed, "end-snorkel", run_seed),
            )

    if "snuba" in methods:
        primitives = extract_snuba_primitives(model, train.images, n_components=10)
        snuba_result = Snuba(n_classes=k, seed=derive_seed(settings.seed, "snuba2", run_seed)).fit(
            primitives, dev.indices, dev.labels
        )
        out["snuba"] = _train_and_score(
            features_train,
            snuba_result.probabilistic_labels,
            features_test,
            test.labels,
            derive_seed(settings.seed, "end-snuba", run_seed),
        )

    if "goggles" in methods:
        goggles = Goggles(
            GogglesConfig(
                n_classes=k,
                seed=derive_seed(settings.seed, "goggles2", run_seed),
                keep_corpus_state=False,  # one-shot label, no incremental
                engine=settings.engine_config(),
            ),
            model=model,
        )
        goggles_result = goggles.label(train.images, dev)
        out["goggles"] = _train_and_score(
            features_train,
            goggles_result.probabilistic_labels,
            features_test,
            test.labels,
            derive_seed(settings.seed, "end-goggles", run_seed),
        )

    if "upper_bound" in methods:
        out["upper_bound"] = _train_and_score(
            features_train,
            one_hot(train.labels, k),
            features_test,
            test.labels,
            derive_seed(settings.seed, "end-upper", run_seed),
        )

    return out


def run_table2(
    settings: ExperimentSettings,
    datasets: tuple[str, ...] = ("cub", "gtsrb", "surface", "tbxray", "pnxray"),
    methods: tuple[str, ...] = ("fsl", "snorkel", "snuba", "goggles", "upper_bound"),
) -> dict[str, dict[str, float | None]]:
    """Full Table 2: mean over ``settings.n_seeds`` runs per dataset."""
    table: dict[str, dict[str, float | None]] = {}
    for dataset_name in datasets:
        rows = [run_table2_row(dataset_name, settings, s, methods) for s in range(settings.n_seeds)]
        merged: dict[str, float | None] = {}
        for method in methods:
            values = [row[method] for row in rows if row.get(method) is not None]
            merged[method] = float(np.mean(values)) if values else None
        table[dataset_name] = merged
    return table


# ----------------------------------------------------------------------
# Figure 2 & 5: affinity score distributions and matrix structure
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AffinityFunctionStats:
    """Separation statistics of one affinity function (Figure 2/5).

    Attributes:
        auc: AUC of same-class vs different-class pair scores.
        same_mean / diff_mean: class-conditional score means (the block
            contrast visible in Figure 5's heatmap).
    """

    function_index: int
    auc: float
    same_mean: float
    diff_mean: float

    @property
    def separation(self) -> float:
        return self.same_mean - self.diff_mean


def affinity_function_stats(affinity: AffinityMatrix, labels: np.ndarray) -> list[AffinityFunctionStats]:
    """Per-function separation stats over all off-diagonal pairs."""
    n = affinity.n_examples
    same = np.equal.outer(labels, labels)
    off_diag = ~np.eye(n, dtype=bool)
    pair_labels = same[off_diag].astype(np.int64)
    stats: list[AffinityFunctionStats] = []
    for f in range(affinity.n_functions):
        block = affinity.block(f)
        scores = block[off_diag]
        stats.append(
            AffinityFunctionStats(
                function_index=f,
                auc=roc_auc(scores, pair_labels),
                same_mean=float(scores[pair_labels == 1].mean()),
                diff_mean=float(scores[pair_labels == 0].mean()),
            )
        )
    return stats


def run_fig2(settings: ExperimentSettings, dataset_name: str = "cub", run_seed: int = 0) -> dict:
    """Figure 2: affinity-score distribution separation per function.

    The paper shows three functions: one highly discriminative (f1),
    one weak (f2), one useless (f3).  We report the AUC of every
    function plus the best/median/worst trio.
    """
    model = shared_model(settings)
    dataset = make_dataset(
        dataset_name,
        n_per_class=settings.n_per_class,
        image_size=settings.image_size,
        seed=derive_seed(settings.seed, "fig2", run_seed),
        pair_seed=run_seed,
    )
    affinity = build_affinity(model, dataset.images, settings)
    stats = affinity_function_stats(affinity, dataset.labels)
    by_auc = sorted(stats, key=lambda s: s.auc, reverse=True)
    return {
        "all": stats,
        "best": by_auc[0],
        "median": by_auc[len(by_auc) // 2],
        "worst": by_auc[-1],
        "n_discriminative": sum(s.auc > 0.6 for s in stats),
    }


def run_fig5(settings: ExperimentSettings, dataset_name: str = "cub", run_seed: int = 0) -> dict:
    """Figure 5: class-sorted affinity-matrix block structure.

    For the best/median/worst functions (by AUC), return the 2x2 matrix
    of within/cross-class mean affinities whose contrast is what the
    paper's heatmap shows.
    """
    model = shared_model(settings)
    dataset = make_dataset(
        dataset_name,
        n_per_class=settings.n_per_class,
        image_size=settings.image_size,
        seed=derive_seed(settings.seed, "fig5", run_seed),
        pair_seed=run_seed,
    )
    affinity = build_affinity(model, dataset.images, settings)
    stats = affinity_function_stats(affinity, dataset.labels)
    by_auc = sorted(stats, key=lambda s: s.auc, reverse=True)
    picks = {"best": by_auc[0], "median": by_auc[len(by_auc) // 2], "worst": by_auc[-1]}
    labels = dataset.labels
    k = dataset.n_classes
    blocks: dict[str, np.ndarray] = {}
    for name, stat in picks.items():
        block = affinity.block(stat.function_index)
        means = np.empty((k, k))
        for a in range(k):
            for b in range(k):
                sub = block[np.ix_(labels == a, labels == b)]
                if a == b:
                    off = ~np.eye(sub.shape[0], dtype=bool)
                    means[a, b] = float(sub[off].mean())
                else:
                    means[a, b] = float(sub.mean())
        blocks[name] = means
    return {"blocks": blocks, "picks": picks}


# ----------------------------------------------------------------------
# Figure 7: theory curves
# ----------------------------------------------------------------------
def run_fig7(
    etas: tuple[float, ...] = (0.6, 0.7, 0.8, 0.9, 0.95),
    d_values: tuple[int, ...] = tuple(range(1, 26)),
    n_classes: int = 2,
) -> dict[float, np.ndarray]:
    """Figure 7: Theorem-1 lower bound vs dev-set size per class."""
    return {
        eta: np.array([p_mapping_correct_lower_bound(d, n_classes, eta) for d in d_values])
        for eta in etas
    }


# ----------------------------------------------------------------------
# Figure 8: accuracy vs dev-set size
# ----------------------------------------------------------------------
def run_fig8(
    settings: ExperimentSettings,
    dataset_name: str,
    dev_sizes: tuple[int, ...] = (0, 2, 4, 8, 12, 20, 30, 40),
    run_seed: int = 0,
) -> dict[int, float]:
    """Figure 8: labeling accuracy as the dev set grows (total size).

    The hierarchical fit is independent of the dev set, so it runs once
    and only the cluster→class mapping is recomputed per size.  Size 0
    uses the identity mapping (no information), matching the paper's
    near-chance leftmost points.
    """
    model = shared_model(settings)
    dataset = make_dataset(
        dataset_name,
        n_per_class=settings.n_per_class,
        image_size=settings.image_size,
        seed=derive_seed(settings.seed, "fig8", dataset_name, run_seed),
        pair_seed=run_seed,
    )
    k = dataset.n_classes
    affinity = build_affinity(model, dataset.images, settings)
    hierarchical = HierarchicalModel(
        HierarchicalConfig(n_classes=k, seed=derive_seed(settings.seed, "fig8-inf", run_seed))
    ).fit(affinity)
    out: dict[int, float] = {}
    for size in dev_sizes:
        per_class = size // k
        dev = dataset.sample_dev_set(per_class, seed=derive_seed(settings.seed, "fig8-dev", run_seed, size))
        mapping = map_clusters_to_classes(hierarchical.posterior, dev, k)
        posterior = apply_mapping(hierarchical.posterior, mapping)
        out[size] = 100 * labeling_accuracy(posterior, dataset.labels, exclude=dev.indices)
    return out


# ----------------------------------------------------------------------
# Figure 9: accuracy vs number of affinity functions
# ----------------------------------------------------------------------
def run_fig9(
    settings: ExperimentSettings,
    dataset_name: str,
    function_counts: tuple[int, ...] = (5, 10, 20, 30, 40, 50),
    run_seed: int = 0,
) -> dict[int, float]:
    """Figure 9: labeling accuracy as the affinity library grows.

    Base models are fitted once for all 50 functions; each sweep point
    re-runs only the ensemble on a random function subset.
    """
    model = shared_model(settings)
    dataset = make_dataset(
        dataset_name,
        n_per_class=settings.n_per_class,
        image_size=settings.image_size,
        seed=derive_seed(settings.seed, "fig9", dataset_name, run_seed),
        pair_seed=run_seed,
    )
    k = dataset.n_classes
    dev = dataset.sample_dev_set(
        settings.dev_per_class, seed=derive_seed(settings.seed, "fig9-dev", run_seed)
    )
    affinity = build_affinity(model, dataset.images, settings)
    hier = HierarchicalModel(
        HierarchicalConfig(n_classes=k, seed=derive_seed(settings.seed, "fig9-inf", run_seed))
    )
    label_predictions, _ = hier.fit_base_models(affinity)
    alpha = affinity.n_functions
    rng = np.random.default_rng(derive_seed(settings.seed, "fig9-subsets", run_seed))
    out: dict[int, float] = {}
    for count in function_counts:
        chosen = np.sort(rng.choice(alpha, size=min(count, alpha), replace=False))
        columns = np.concatenate([np.arange(f * k, (f + 1) * k) for f in chosen])
        lp_subset = label_predictions[:, columns]
        ensemble = BernoulliMixture(
            n_components=k, seed=derive_seed(settings.seed, "fig9-ens", run_seed, int(count))
        )
        fit = ensemble.fit(one_hot_encode_lp(lp_subset, k))
        mapping = map_clusters_to_classes(fit.responsibilities, dev, k)
        posterior = apply_mapping(fit.responsibilities, mapping)
        out[count] = 100 * labeling_accuracy(posterior, dataset.labels, exclude=dev.indices)
    return out


# ----------------------------------------------------------------------
# Inference-design ablation (§4.1 design choices)
# ----------------------------------------------------------------------
def run_inference_ablation(
    settings: ExperimentSettings,
    dataset_name: str = "cub",
    run_seed: int = 0,
) -> dict[str, float]:
    """Ablate the hierarchical model's design choices on one dataset.

    Variants:
        * ``hierarchical`` — the paper's model (diag GMM + one-hot +
          Bernoulli ensemble).
        * ``soft_ensemble`` — skip one-hot encoding (Bernoulli on soft
          LP is invalid, so this uses a diagonal GMM ensemble), testing
          the "convert LP to one-hot" choice.
        * ``single_gmm`` — the naive flat model of §4: one GMM on the
          concatenated affinity features (PCA-reduced for tractability).
    """
    from repro.core.inference.base_gmm import DiagonalGMM

    model = shared_model(settings)
    dataset = make_dataset(
        dataset_name,
        n_per_class=settings.n_per_class,
        image_size=settings.image_size,
        seed=derive_seed(settings.seed, "ablation", dataset_name, run_seed),
        pair_seed=run_seed,
    )
    k = dataset.n_classes
    dev = dataset.sample_dev_set(settings.dev_per_class, seed=derive_seed(settings.seed, "abl-dev", run_seed))
    affinity = build_affinity(model, dataset.images, settings)
    out: dict[str, float] = {}

    hier = HierarchicalModel(
        HierarchicalConfig(n_classes=k, seed=derive_seed(settings.seed, "abl-h", run_seed))
    )
    result = hier.fit(affinity)
    mapping = map_clusters_to_classes(result.posterior, dev, k)
    out["hierarchical"] = 100 * labeling_accuracy(
        apply_mapping(result.posterior, mapping), dataset.labels, exclude=dev.indices
    )

    soft_ensemble = DiagonalGMM(k, seed=derive_seed(settings.seed, "abl-soft", run_seed))
    soft_fit = soft_ensemble.fit(result.label_predictions)
    mapping = map_clusters_to_classes(soft_fit.responsibilities, dev, k)
    out["soft_ensemble"] = 100 * labeling_accuracy(
        apply_mapping(soft_fit.responsibilities, mapping), dataset.labels, exclude=dev.indices
    )

    reduced = PCA(min(32, affinity.n_examples - 1)).fit_transform(affinity.values)
    flat = DiagonalGMM(k, seed=derive_seed(settings.seed, "abl-flat", run_seed)).fit(reduced)
    mapping = map_clusters_to_classes(flat.responsibilities, dev, k)
    out["single_gmm"] = 100 * labeling_accuracy(
        apply_mapping(flat.responsibilities, mapping), dataset.labels, exclude=dev.indices
    )
    return out
