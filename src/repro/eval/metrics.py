"""Evaluation metrics for labeling and end-model experiments."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_labels, check_probabilities

__all__ = ["accuracy", "labeling_accuracy", "confusion_matrix", "brier_score", "roc_auc", "mask_excluding"]


def mask_excluding(n: int, exclude: np.ndarray | None) -> np.ndarray:
    """Boolean mask over ``n`` items with ``exclude`` indices set False."""
    mask = np.ones(n, dtype=bool)
    if exclude is not None and np.asarray(exclude).size:
        mask[np.asarray(exclude, dtype=np.int64)] = False
    return mask


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of exact matches."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(f"shape mismatch: {predictions.shape} vs {labels.shape}")
    if predictions.size == 0:
        raise ValueError("cannot compute accuracy of zero predictions")
    return float((predictions == labels).mean())


def labeling_accuracy(
    probabilistic_labels: np.ndarray,
    true_labels: np.ndarray,
    exclude: np.ndarray | None = None,
) -> float:
    """Hard-label accuracy of probabilistic labels, excluding dev indices.

    The paper "reports the performance ... on the remaining images"
    (§5.1.1), i.e. development images are excluded from scoring.
    """
    probabilistic_labels = check_probabilities(probabilistic_labels, axis=1)
    true_labels = check_labels(true_labels)
    mask = mask_excluding(true_labels.shape[0], exclude)
    return accuracy(probabilistic_labels.argmax(axis=1)[mask], true_labels[mask])


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray, n_classes: int) -> np.ndarray:
    """``C[i, j]`` = count of true class i predicted as j."""
    predictions = check_labels(predictions, n_classes=n_classes, name="predictions")
    labels = check_labels(labels, n_classes=n_classes, name="labels")
    out = np.zeros((n_classes, n_classes), dtype=np.int64)
    for truth, pred in zip(labels, predictions):
        out[truth, pred] += 1
    return out


def brier_score(probabilistic_labels: np.ndarray, true_labels: np.ndarray) -> float:
    """Mean squared error between the label distribution and the one-hot truth."""
    probabilistic_labels = check_probabilities(probabilistic_labels, axis=1)
    true_labels = check_labels(true_labels, n_classes=probabilistic_labels.shape[1])
    one_hot = np.zeros_like(probabilistic_labels)
    one_hot[np.arange(true_labels.size), true_labels] = 1.0
    return float(((probabilistic_labels - one_hot) ** 2).sum(axis=1).mean())


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Binary AUC via the rank statistic (ties get half credit).

    Used by the Figure-2 analysis: how well one affinity function's
    scores separate same-class pairs (label 1) from different-class
    pairs (label 0).
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels)
    if scores.shape != labels.shape:
        raise ValueError("scores and labels must align")
    pos = scores[labels == 1]
    neg = scores[labels == 0]
    if pos.size == 0 or neg.size == 0:
        raise ValueError("AUC needs both positive and negative examples")
    order = np.argsort(np.concatenate([pos, neg]), kind="mergesort")
    ranks = np.empty(order.size, dtype=np.float64)
    ranks[order] = np.arange(1, order.size + 1)
    # Average ranks over ties.
    combined = np.concatenate([pos, neg])
    sorted_vals = combined[order]
    i = 0
    while i < sorted_vals.size:
        j = i
        while j + 1 < sorted_vals.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            tie_indices = order[i : j + 1]
            ranks[tie_indices] = ranks[tie_indices].mean()
        i = j + 1
    rank_sum_pos = ranks[: pos.size].sum()
    u_statistic = rank_sum_pos - pos.size * (pos.size + 1) / 2.0
    return float(u_statistic / (pos.size * neg.size))
