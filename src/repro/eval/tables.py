"""ASCII rendering of paper-vs-measured tables and curves."""

from __future__ import annotations

import numpy as np

__all__ = ["format_comparison_table", "format_curve", "format_matrix"]


def _cell(value: float | None) -> str:
    return "    -" if value is None else f"{value:5.1f}"


def format_comparison_table(
    measured: dict[str, dict[str, float | None]],
    paper: dict[str, dict[str, float | None]],
    methods: tuple[str, ...],
    title: str,
) -> str:
    """Render dataset-by-method measured values with paper references.

    Each cell shows ``measured (paper)``; the final row averages the
    columns over datasets where both values exist.
    """
    header = ["dataset".ljust(9)] + [m[:14].rjust(16) for m in methods]
    lines = [title, "  ".join(header)]
    sums: dict[str, list[float]] = {m: [] for m in methods}
    paper_sums: dict[str, list[float]] = {m: [] for m in methods}
    for dataset, row in measured.items():
        cells = [dataset.ljust(9)]
        for method in methods:
            value = row.get(method)
            reference = paper.get(dataset, {}).get(method)
            cells.append(f"{_cell(value)} ({_cell(reference).strip()})".rjust(16))
            if value is not None:
                sums[method].append(value)
            if reference is not None:
                paper_sums[method].append(reference)
        lines.append("  ".join(cells))
    average_cells = ["average".ljust(9)]
    for method in methods:
        value = float(np.mean(sums[method])) if sums[method] else None
        reference = float(np.mean(paper_sums[method])) if paper_sums[method] else None
        ref_text = _cell(reference).strip() if reference is not None else "-"
        average_cells.append(f"{_cell(value)} ({ref_text})".rjust(16))
    lines.append("  ".join(average_cells))
    lines.append("cells: measured (paper)")
    return "\n".join(lines)


def format_curve(points: dict, title: str, x_label: str = "x", y_label: str = "y", width: int = 40) -> str:
    """Render an x->y mapping as an aligned list with a unit-scaled bar."""
    lines = [title, f"{x_label:>8}  {y_label}"]
    values = [float(v) for v in points.values()]
    low, high = min(values), max(values)
    span = max(high - low, 1e-9)
    for x, y in points.items():
        bar = "#" * int(round((float(y) - low) / span * width))
        lines.append(f"{x!s:>8}  {float(y):7.2f}  {bar}")
    return "\n".join(lines)


def format_matrix(matrix: np.ndarray, title: str, labels: tuple[str, ...] | None = None) -> str:
    """Render a small matrix with optional row/column labels."""
    matrix = np.asarray(matrix)
    n_rows, n_cols = matrix.shape
    if labels is None:
        labels = tuple(str(i) for i in range(max(n_rows, n_cols)))
    lines = [title, "         " + "  ".join(f"{labels[j]:>8}" for j in range(n_cols))]
    for i in range(n_rows):
        cells = "  ".join(f"{matrix[i, j]:8.3f}" for j in range(n_cols))
        lines.append(f"{labels[i]:>8} {cells}")
    return "\n".join(lines)
