"""Every number the paper's evaluation reports, for paper-vs-measured output.

Sources: Table 1 (labeling accuracy on the training split), Table 2
(end-model accuracy on the held-out test split), and the prose of §5.
``None`` marks the cells the paper leaves empty ("the '-' symbol
represents cases where evaluation was not possible" — Snorkel needs
attribute metadata that only CUB has).
"""

from __future__ import annotations

__all__ = [
    "DATASETS",
    "TABLE1_PAPER",
    "TABLE1_METHODS",
    "TABLE2_PAPER",
    "TABLE2_METHODS",
    "PAPER_CLAIMS",
]

DATASETS: tuple[str, ...] = ("cub", "gtsrb", "surface", "tbxray", "pnxray")

TABLE1_METHODS: tuple[str, ...] = (
    "goggles",
    "snorkel",
    "snuba",
    "hog",
    "logits",
    "kmeans",
    "gmm",
    "spectral",
)

# Table 1: labeling accuracy (%) on the training set.
TABLE1_PAPER: dict[str, dict[str, float | None]] = {
    "cub": {
        "goggles": 97.83,
        "snorkel": 89.17,
        "snuba": 58.83,
        "hog": 62.93,
        "logits": 96.35,
        "kmeans": 98.67,
        "gmm": 97.62,
        "spectral": 72.08,
    },
    "gtsrb": {
        "goggles": 70.51,
        "snorkel": None,
        "snuba": 62.74,
        "hog": 75.48,
        "logits": 64.77,
        "kmeans": 70.74,
        "gmm": 69.64,
        "spectral": 62.40,
    },
    "surface": {
        "goggles": 89.18,
        "snorkel": None,
        "snuba": 57.86,
        "hog": 85.82,
        "logits": 54.08,
        "kmeans": 69.08,
        "gmm": 69.14,
        "spectral": 60.82,
    },
    "tbxray": {
        "goggles": 76.89,
        "snorkel": None,
        "snuba": 59.47,
        "hog": 69.13,
        "logits": 67.16,
        "kmeans": 76.33,
        "gmm": 76.70,
        "spectral": 75.00,
    },
    "pnxray": {
        "goggles": 74.39,
        "snorkel": None,
        "snuba": 55.50,
        "hog": 53.11,
        "logits": 71.18,
        "kmeans": 50.66,
        "gmm": 68.66,
        "spectral": 75.90,
    },
}

TABLE2_METHODS: tuple[str, ...] = ("fsl", "snorkel", "snuba", "goggles", "upper_bound")

# Table 2: end-model accuracy (%) on the held-out test set.
TABLE2_PAPER: dict[str, dict[str, float | None]] = {
    "cub": {"fsl": 84.74, "snorkel": 87.85, "snuba": 56.32, "goggles": 95.30, "upper_bound": 98.44},
    "gtsrb": {"fsl": 90.72, "snorkel": None, "snuba": 70.11, "goggles": 91.54, "upper_bound": 98.94},
    "surface": {"fsl": 76.00, "snorkel": None, "snuba": 51.67, "goggles": 83.33, "upper_bound": 92.00},
    "tbxray": {"fsl": 66.42, "snorkel": None, "snuba": 62.71, "goggles": 70.90, "upper_bound": 82.09},
    "pnxray": {"fsl": 68.28, "snorkel": None, "snuba": 62.19, "goggles": 69.06, "upper_bound": 74.22},
}

# Headline qualitative claims of §5 that the reproduction must preserve.
PAPER_CLAIMS: tuple[str, ...] = (
    "GOGGLES labeling accuracy ranges from ~71% to ~98% across datasets",
    "GOGGLES beats Snuba by ~20+ points on average (labeling, Table 1)",
    "GOGGLES beats the clustering baselines on average (Table 1)",
    "prototype affinities beat HOG and Logits representations on average (Table 1)",
    "end-to-end: upper bound > GOGGLES > FSL > Snuba on average (Table 2)",
    "accuracy rises then saturates with development-set size (Figure 8)",
    "accuracy rises with the number of affinity functions (Figure 9)",
    "P(correct mapping) approaches 1 with dev size, faster for higher eta (Figure 7)",
)
