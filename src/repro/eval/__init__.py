"""Experiment harness, metrics, and the paper's reference numbers."""

from repro.eval.harness import (
    ExperimentSettings,
    run_fig2,
    run_fig5,
    run_fig7,
    run_fig8,
    run_fig9,
    run_inference_ablation,
    run_table1,
    run_table1_row,
    run_table2,
    run_table2_row,
    shared_model,
)
from repro.eval.metrics import (
    accuracy,
    brier_score,
    confusion_matrix,
    labeling_accuracy,
    roc_auc,
)
from repro.eval.paper import (
    DATASETS,
    PAPER_CLAIMS,
    TABLE1_METHODS,
    TABLE1_PAPER,
    TABLE2_METHODS,
    TABLE2_PAPER,
)
from repro.eval.tables import format_comparison_table, format_curve, format_matrix

__all__ = [
    "ExperimentSettings",
    "run_fig2",
    "run_fig5",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_inference_ablation",
    "run_table1",
    "run_table1_row",
    "run_table2",
    "run_table2_row",
    "shared_model",
    "accuracy",
    "brier_score",
    "confusion_matrix",
    "labeling_accuracy",
    "roc_auc",
    "DATASETS",
    "PAPER_CLAIMS",
    "TABLE1_METHODS",
    "TABLE1_PAPER",
    "TABLE2_METHODS",
    "TABLE2_PAPER",
    "format_comparison_table",
    "format_curve",
    "format_matrix",
]
