"""VGG-16 feature extractor (numpy, forward-only).

This reproduces the exact VGG-16 topology from Simonyan & Zisserman
(configuration "D"): five blocks of (2, 2, 3, 3, 3) 3x3 convolutions
with (64, 128, 256, 512, 512) channels, each block ending in a 2x2
max-pool, followed by a three-layer fully connected classifier.  A
``width_multiplier`` scales the channel counts so the full pipeline runs
quickly on CPUs; the architecture and all code paths are unchanged at
any width (DESIGN.md, "Known deviations").

GOGGLES consumes the outputs of the **five max-pooling layers**
(§3, "we thus leverage all 5 max-pooling layers of the network").
:meth:`VGG16.forward_pools` returns them in order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import functional as F
from repro.nn.calibration import calibrate_conv_biases, calibration_batch
from repro.nn.layers import Conv2d, Linear, MaxPool2d, ReLU, Sequential
from repro.nn.weights import conv_orthogonal, first_layer_bank, linear_orthogonal
from repro.utils.rng import derive_seed
from repro.utils.validation import check_images

__all__ = ["VGGConfig", "VGG16", "VGG16_BLOCKS", "VGG16_CHANNELS"]

# Configuration "D" of Simonyan & Zisserman (2014): convs per block and
# full-width channel counts.
VGG16_BLOCKS: tuple[int, ...] = (2, 2, 3, 3, 3)
VGG16_CHANNELS: tuple[int, ...] = (64, 128, 256, 512, 512)


@dataclass(frozen=True)
class VGGConfig:
    """Hyper-parameters of the surrogate-pretrained VGG-16.

    Attributes:
        in_channels: input image channels (3 for RGB).
        width_multiplier: scales all channel counts; 1.0 recovers the
            paper's full-width VGG-16, the default 0.125 gives a fast
            CPU model with identical topology.
        n_logits: size of the final "logits" layer (the paper's VGG has
            1000 ImageNet classes; any fixed generic projection works
            for Snuba primitives and end-model features).
        hidden_features: width of the two hidden FC layers (VGG uses
            4096); scaled versions keep the same 3-layer classifier.
        seed: root seed for the deterministic surrogate weights.
        calibration_sparsity: target post-ReLU sparsity set by the
            activation calibration (the "pretraining" surrogate; see
            ``repro.nn.calibration``).  0 disables calibration.
        n_calibration_images: size of the procedural calibration batch.
        calibration_size: side length of the calibration images.
    """

    in_channels: int = 3
    width_multiplier: float = 0.125
    n_logits: int = 128
    hidden_features: int = 256
    seed: int = 0
    calibration_sparsity: float = 0.65
    n_calibration_images: int = 12
    calibration_size: int = 64

    def block_channels(self) -> tuple[int, ...]:
        channels = tuple(max(4, int(round(c * self.width_multiplier))) for c in VGG16_CHANNELS)
        return channels


class VGG16:
    """Forward-only VGG-16 with deterministic surrogate weights.

    The object is immutable after construction; all methods are pure
    functions of the input batch.
    """

    N_POOL_LAYERS = 5

    def __init__(self, config: VGGConfig | None = None):
        self.config = config or VGGConfig()
        self._build()

    def _build(self) -> None:
        cfg = self.config
        channels = cfg.block_channels()
        seed = cfg.seed
        layers: list = []
        self._pool_indices: list[int] = []
        in_ch = cfg.in_channels
        conv_index = 0
        for block, (n_convs, out_ch) in enumerate(zip(VGG16_BLOCKS, channels)):
            for conv_in_block in range(n_convs):
                if conv_index == 0:
                    weight = first_layer_bank(out_ch, in_ch, size=3, seed=derive_seed(seed, "conv1"))
                else:
                    weight = conv_orthogonal(
                        out_ch, in_ch, 3, seed=derive_seed(seed, "conv", block, conv_in_block)
                    )
                bias = np.zeros(out_ch)
                name = f"conv{block + 1}_{conv_in_block + 1}"
                layers.append(Conv2d(weight, bias, stride=1, padding=1, name=name))
                layers.append(ReLU(name=f"relu{block + 1}_{conv_in_block + 1}"))
                in_ch = out_ch
                conv_index += 1
            layers.append(MaxPool2d(kernel=2, name=f"pool{block + 1}"))
            self._pool_indices.append(len(layers) - 1)
        self.features = Sequential(layers, name="features")
        self._final_channels = in_ch
        if cfg.calibration_sparsity > 0:
            calibration_images = calibration_batch(
                cfg.n_calibration_images,
                cfg.calibration_size,
                cfg.in_channels,
                derive_seed(seed, "calibration"),
            )
            calibrate_conv_biases(list(self.features), calibration_images, cfg.calibration_sparsity)
        # Classifier (fc6/fc7/fc8 in VGG nomenclature).  Input size depends
        # on the image size, so the first FC is materialised lazily.
        self._fc_hidden = cfg.hidden_features
        self._fc1: Linear | None = None
        self._fc2 = Linear(
            linear_orthogonal(cfg.hidden_features, cfg.hidden_features, derive_seed(seed, "fc2")),
            np.zeros(cfg.hidden_features),
            name="fc7",
        )
        self._fc3 = Linear(
            linear_orthogonal(cfg.n_logits, cfg.hidden_features, derive_seed(seed, "fc3")),
            np.zeros(cfg.n_logits),
            name="fc8",
        )

    # ------------------------------------------------------------------
    # Feature extraction
    # ------------------------------------------------------------------
    def forward_pools(self, images: np.ndarray) -> list[np.ndarray]:
        """Run the conv stack, returning the 5 max-pool outputs in order.

        Each element has shape ``(N, C_L, H_L, W_L)``; spatial size
        halves at every pool.  These are the filter maps from which
        GOGGLES extracts prototypes (Algorithm 1, line 2).
        """
        x = check_images(images)
        pools: list[np.ndarray] = []
        for i, layer in enumerate(self.features):
            x = layer(x)
            if i in self._pool_indices:
                pools.append(x)
        return pools

    def pool_features(self, images: np.ndarray, layer: int) -> np.ndarray:
        """Return the filter map of max-pool layer ``layer`` (0-based)."""
        if not 0 <= layer < self.N_POOL_LAYERS:
            raise ValueError(f"layer must be in [0, {self.N_POOL_LAYERS}), got {layer}")
        x = check_images(images)
        for i, module in enumerate(self.features):
            x = module(x)
            if i == self._pool_indices[layer]:
                return x
        raise AssertionError("pool layer index out of range")  # pragma: no cover

    def _ensure_fc1(self, flat_features: int) -> Linear:
        if self._fc1 is None or self._fc1.weight.shape[1] != flat_features:
            self._fc1 = Linear(
                linear_orthogonal(
                    self._fc_hidden, flat_features, derive_seed(self.config.seed, "fc1", flat_features)
                ),
                np.zeros(self._fc_hidden),
                name="fc6",
            )
        return self._fc1

    def embed(self, images: np.ndarray) -> np.ndarray:
        """Frozen feature vector for end models and the FSL baseline.

        Concatenates the global-max-pooled channel activations of the
        three deepest max-pool layers with the flattened pool5 map.
        Global max pooling preserves "does feature c fire anywhere"
        evidence, which the paper's backbone carries in its trained FC
        layers; our surrogate FC layers are random projections, so this
        descriptor is the faithful stand-in for the penultimate
        representation (see DESIGN.md, "Substitutions").
        """
        pools = self.forward_pools(images)
        parts = [F.global_max_pool(pool) for pool in pools[2:]]
        parts.append(F.flatten(pools[-1]))
        return np.concatenate(parts, axis=1)

    def _fc_head(self, images: np.ndarray) -> np.ndarray:
        """ReLU(fc7(ReLU(fc6(pool5)))) — the surrogate FC stack."""
        pool5 = self.forward_pools(images)[-1]
        flat = F.flatten(pool5)
        fc1 = self._ensure_fc1(flat.shape[1])
        hidden = F.relu(fc1(flat))
        return F.relu(self._fc2(hidden))

    def logits(self, images: np.ndarray) -> np.ndarray:
        """Final "logits" layer output (fc8), the representation Snuba's
        primitives are extracted from (§5.1.2)."""
        return self._fc3(self._fc_head(images))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pool_channels(self) -> tuple[int, ...]:
        """Channel count of each max-pool output."""
        return self.config.block_channels()

    def n_parameters(self) -> int:
        total = self.features.n_parameters()
        for fc in (self._fc1, self._fc2, self._fc3):
            if fc is not None:
                total += fc.n_parameters()
        return total

    def describe(self) -> str:
        """Human-readable architecture summary."""
        lines = [f"VGG-16 (width x{self.config.width_multiplier}, seed={self.config.seed})"]
        for layer in self.features:
            if isinstance(layer, Conv2d):
                lines.append(
                    f"  {layer.name}: {layer.in_channels} -> {layer.out_channels}, "
                    f"{layer.kernel_size}x{layer.kernel_size}"
                )
            elif isinstance(layer, MaxPool2d):
                lines.append(f"  {layer.name}: 2x2 max pool")
        lines.append(f"  fc: ... -> {self._fc_hidden} -> {self._fc_hidden} -> {self.config.n_logits}")
        return "\n".join(lines)
