"""Receptive-field arithmetic for the VGG-16 feature maps.

The paper (§3.1, Example 3) notes that every prototype vector
``v^{(h,w)}`` in a filter map "can be backtracked to a rectangular patch
in the input image ... known as the receptive field".  This module
computes those patches analytically from the layer hyper-parameters
(kernel, stride, padding), which is exact for the all-convolutional
VGG stack — no gradient computation required.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LayerGeometry", "ReceptiveField", "vgg16_pool_geometry", "receptive_field_box"]


@dataclass(frozen=True)
class LayerGeometry:
    """Aggregate geometry of a feature map relative to the input image.

    Attributes:
        rf_size: side length (pixels) of the receptive field of one unit.
        stride: input-pixel distance between adjacent units (jump).
        offset: centre of unit (0, 0) in input coordinates (may be
            fractional or negative because of padding).
    """

    rf_size: int
    stride: int
    offset: float

    def compose(self, kernel: int, stride: int, padding: int) -> "LayerGeometry":
        """Geometry after appending a layer with the given hyper-parameters.

        Standard receptive-field recurrences:
        ``rf' = rf + (kernel - 1) * jump``; ``jump' = jump * stride``;
        ``offset' = offset + ((kernel - 1) / 2 - padding) * jump``.
        """
        return LayerGeometry(
            rf_size=self.rf_size + (kernel - 1) * self.stride,
            stride=self.stride * stride,
            offset=self.offset + ((kernel - 1) / 2 - padding) * self.stride,
        )


@dataclass(frozen=True)
class ReceptiveField:
    """A clipped rectangular patch ``[top, bottom) x [left, right)`` in image pixels."""

    top: int
    left: int
    bottom: int
    right: int

    @property
    def height(self) -> int:
        return self.bottom - self.top

    @property
    def width(self) -> int:
        return self.right - self.left


def vgg16_pool_geometry() -> list[LayerGeometry]:
    """Geometry of each of the five VGG-16 max-pool outputs.

    VGG-16 uses 3x3/stride-1/pad-1 convolutions and 2x2/stride-2 pools,
    independent of channel width, so the geometry is fixed: receptive
    fields of (6, 16, 44, 100, 212) pixels with strides (2, 4, 8, 16, 32).
    """
    convs_per_block = (2, 2, 3, 3, 3)
    geometry = LayerGeometry(rf_size=1, stride=1, offset=0.0)
    out: list[LayerGeometry] = []
    for n_convs in convs_per_block:
        for _ in range(n_convs):
            geometry = geometry.compose(kernel=3, stride=1, padding=1)
        geometry = geometry.compose(kernel=2, stride=2, padding=0)
        out.append(geometry)
    return out


def receptive_field_box(layer: int, h: int, w: int, image_height: int, image_width: int) -> ReceptiveField:
    """The input patch seen by unit ``(h, w)`` of max-pool layer ``layer``.

    Coordinates are clipped to the image bounds, mirroring how padding
    limits the visible evidence for border units.
    """
    geometries = vgg16_pool_geometry()
    if not 0 <= layer < len(geometries):
        raise ValueError(f"layer must be in [0, {len(geometries)}), got {layer}")
    if h < 0 or w < 0:
        raise ValueError(f"feature coordinates must be non-negative, got ({h}, {w})")
    geo = geometries[layer]
    centre_y = geo.offset + h * geo.stride
    centre_x = geo.offset + w * geo.stride
    half = geo.rf_size / 2
    top = int(max(0, np.ceil(centre_y - half))) if (centre_y - half) > 0 else 0
    left = int(max(0, np.ceil(centre_x - half))) if (centre_x - half) > 0 else 0
    bottom = int(min(image_height, np.floor(centre_y + half) + 1))
    right = int(min(image_width, np.floor(centre_x + half) + 1))
    if bottom <= top or right <= left:
        raise ValueError(
            f"unit ({h}, {w}) of layer {layer} sees no pixels of a "
            f"{image_height}x{image_width} image"
        )
    return ReceptiveField(top=top, left=left, bottom=bottom, right=right)
