"""Layer objects for the numpy CNN substrate.

Layers are small immutable-ish containers around parameters plus a
``forward`` method.  There is no autograd: GOGGLES only needs forward
passes through a *frozen* backbone; trainable heads live in
``repro.endmodel`` where gradients are derived in closed form.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn import functional as F

__all__ = ["Layer", "Conv2d", "ReLU", "MaxPool2d", "Linear", "Flatten", "Sequential"]


class Layer:
    """Base class: a named, parameterised forward transformation."""

    name: str = "layer"

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def n_parameters(self) -> int:
        """Number of scalar parameters held by this layer."""
        return 0


@dataclass
class Conv2d(Layer):
    """3x3-style convolution layer with explicit weights.

    ``weight`` has shape ``(out_channels, in_channels, k, k)``.
    """

    weight: np.ndarray
    bias: np.ndarray | None = None
    stride: int = 1
    padding: int = 1
    name: str = "conv"

    def __post_init__(self) -> None:
        if self.weight.ndim != 4:
            raise ValueError(f"Conv2d weight must be 4-D, got shape {self.weight.shape}")
        if self.bias is not None and self.bias.shape != (self.weight.shape[0],):
            raise ValueError(
                f"Conv2d bias shape {self.bias.shape} does not match "
                f"out_channels {self.weight.shape[0]}"
            )

    @property
    def out_channels(self) -> int:
        return self.weight.shape[0]

    @property
    def in_channels(self) -> int:
        return self.weight.shape[1]

    @property
    def kernel_size(self) -> int:
        return self.weight.shape[2]

    def forward(self, x: np.ndarray) -> np.ndarray:
        weight, bias = _params_as(x.dtype, self.weight, self.bias)
        return F.conv2d(x, weight, bias, stride=self.stride, padding=self.padding)

    def n_parameters(self) -> int:
        return self.weight.size + (self.bias.size if self.bias is not None else 0)


def _params_as(
    dtype: np.dtype, weight: np.ndarray, bias: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray | None]:
    """Parameters cast to the activation dtype, so the compute precision
    follows the input batch (float64 inputs — the default — see the
    stored parameters unchanged; float32 inputs keep the whole forward
    pass in float32 instead of silently promoting at the first matmul)."""
    if weight.dtype == dtype:
        return weight, bias
    return weight.astype(dtype), None if bias is None else bias.astype(dtype)


@dataclass
class ReLU(Layer):
    name: str = "relu"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.relu(x)


@dataclass
class MaxPool2d(Layer):
    kernel: int = 2
    stride: int | None = None
    name: str = "maxpool"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.maxpool2d(x, kernel=self.kernel, stride=self.stride)


@dataclass
class Linear(Layer):
    """Fully connected layer; ``weight`` has shape ``(out, in)``."""

    weight: np.ndarray
    bias: np.ndarray | None = None
    name: str = "linear"

    def __post_init__(self) -> None:
        if self.weight.ndim != 2:
            raise ValueError(f"Linear weight must be 2-D, got shape {self.weight.shape}")

    def forward(self, x: np.ndarray) -> np.ndarray:
        weight, bias = _params_as(x.dtype, self.weight, self.bias)
        return F.linear(x, weight, bias)

    def n_parameters(self) -> int:
        return self.weight.size + (self.bias.size if self.bias is not None else 0)


@dataclass
class Flatten(Layer):
    name: str = "flatten"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.flatten(x)


@dataclass
class Sequential(Layer):
    """A simple forward-only container of layers."""

    layers: list[Layer] = field(default_factory=list)
    name: str = "sequential"

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def n_parameters(self) -> int:
        return sum(layer.n_parameters() for layer in self.layers)

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)
