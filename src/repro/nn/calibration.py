"""Activation-sparsity calibration — the "pretraining" surrogate.

Trained CNNs produce *sparse, selective* activations: after ReLU, most
units are zero and a channel fires only on its preferred stimulus.
Randomly initialised networks instead produce dense non-negative
activations, so cosine similarity between any two deep feature vectors
saturates near 1 and carries no information (measured ≈ 0.98 ± 0.01
before this fix) — which would break the affinity premise.

We therefore calibrate each convolution's per-channel bias so that its
post-ReLU activations match a target sparsity on a *fixed procedural
calibration batch* (textures, gratings and shapes generated from the
model seed).  The calibration set plays the role of generic natural
image statistics; after construction the network is frozen, exactly
like a pretrained backbone.  See DESIGN.md ("Substitutions").
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import spawn_rng
from repro.vision.draw import fill_disk, fill_polygon, fill_rectangle
from repro.vision.texture import fractal_noise, grating

__all__ = ["calibration_batch", "calibrate_conv_biases"]


def calibration_batch(n_images: int, size: int, channels: int, seed: int) -> np.ndarray:
    """Procedural stand-in for natural-image statistics.

    Cycles through three families: fractal colour noise, oriented
    gratings, and random shape compositions, covering the low/high
    frequency and edge/blob statistics a pretrained net would have seen.
    """
    if n_images < 1:
        raise ValueError(f"n_images must be >= 1, got {n_images}")
    rng = spawn_rng(seed, "calibration-batch")
    images = np.empty((n_images, channels, size, size))
    for i in range(n_images):
        family = i % 3
        if family == 0:
            for c in range(channels):
                images[i, c] = fractal_noise(size, size, rng, octaves=4, base_cells=2)
        elif family == 1:
            field = grating(
                size,
                size,
                wavelength=float(rng.uniform(3, 16)),
                angle=float(rng.uniform(0, np.pi)),
                phase=float(rng.uniform(0, 2 * np.pi)),
            )
            tint = rng.uniform(0.3, 1.0, size=channels)
            images[i] = tint[:, None, None] * field[None]
        else:
            canvas = np.full((channels, size, size), rng.uniform(0.2, 0.8))
            for _ in range(int(rng.integers(2, 6))):
                shape = int(rng.integers(3))
                colour = rng.uniform(0, 1, size=channels)
                if shape == 0:
                    fill_disk(canvas, rng.uniform(0, size), rng.uniform(0, size), rng.uniform(4, 14), colour)
                elif shape == 1:
                    top, left = rng.uniform(0, size, size=2)
                    fill_rectangle(
                        canvas, top, left, top + rng.uniform(5, 20), left + rng.uniform(5, 20), colour
                    )
                else:
                    centre = rng.uniform(8, size - 8, size=2)
                    offsets = rng.uniform(-10, 10, size=(3, 2))
                    fill_polygon(canvas, centre + offsets, colour)
            images[i] = canvas
    return np.clip(images, 0.0, 1.0)


def calibrate_conv_biases(
    layers: list,
    images: np.ndarray,
    sparsity: float,
) -> None:
    """Set conv biases in-place so post-ReLU sparsity ≈ ``sparsity``.

    Walks the feature stack on the calibration batch; at every
    convolution the per-channel bias becomes minus the ``sparsity``
    quantile of that channel's pre-activations, so a fraction
    ``sparsity`` of units go negative (hence zero after ReLU).
    """
    from repro.nn import functional as F
    from repro.nn.layers import Conv2d, MaxPool2d, ReLU

    if not 0.0 < sparsity < 1.0:
        raise ValueError(f"sparsity must be in (0, 1), got {sparsity}")
    x = images
    for layer in layers:
        if isinstance(layer, Conv2d):
            pre = F.conv2d(x, layer.weight, bias=None, stride=layer.stride, padding=layer.padding)
            thresholds = np.quantile(pre, sparsity, axis=(0, 2, 3))
            assert layer.bias is not None, "calibration requires conv layers with bias arrays"
            layer.bias[:] = -thresholds
            x = pre - thresholds[None, :, None, None]
        elif isinstance(layer, ReLU):
            x = F.relu(x)
        elif isinstance(layer, MaxPool2d):
            x = layer(x)
        else:  # pragma: no cover - the VGG stack only holds these three
            x = layer(x)
