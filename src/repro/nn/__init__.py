"""Numpy CNN substrate: VGG-16 feature extractor with surrogate weights.

The paper treats a pretrained VGG-16 as an external, frozen substrate;
this package implements it from scratch (forward passes only) together
with a deterministic surrogate for "pretrained" weights.  See DESIGN.md
for the substitution rationale.
"""

from repro.nn.layers import Conv2d, Flatten, Layer, Linear, MaxPool2d, ReLU, Sequential
from repro.nn.receptive_field import (
    LayerGeometry,
    ReceptiveField,
    receptive_field_box,
    vgg16_pool_geometry,
)
from repro.nn.vgg import VGG16, VGGConfig

__all__ = [
    "Conv2d",
    "Flatten",
    "Layer",
    "Linear",
    "MaxPool2d",
    "ReLU",
    "Sequential",
    "VGG16",
    "VGGConfig",
    "LayerGeometry",
    "ReceptiveField",
    "receptive_field_box",
    "vgg16_pool_geometry",
]
