"""Stateless tensor operations for the numpy CNN substrate.

These implement the forward-pass primitives needed by the VGG-16
feature extractor used for GOGGLES' affinity functions: 2-D convolution
(via im2col + matmul), ReLU, max pooling, linear layers, and softmax.
All functions use NCHW layout and compute in the input's dtype —
float64 on the default path, float32 when the sparse affinity path
feeds half-width batches (the layer objects cast their parameters to
match the activations).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pad2d",
    "im2col",
    "conv2d",
    "relu",
    "maxpool2d",
    "global_max_pool",
    "linear",
    "softmax",
    "log_softmax",
    "flatten",
]


def pad2d(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two trailing (spatial) axes of ``x`` by ``padding``."""
    if padding < 0:
        raise ValueError(f"padding must be >= 0, got {padding}")
    if padding == 0:
        return x
    pad_width = [(0, 0)] * (x.ndim - 2) + [(padding, padding), (padding, padding)]
    return np.pad(x, pad_width, mode="constant")


def _out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"kernel {kernel} with stride {stride} and padding {padding} "
            f"does not fit input of size {size}"
        )
    return out


def im2col(x: np.ndarray, kernel: int, stride: int = 1, padding: int = 0) -> np.ndarray:
    """Rearrange sliding ``kernel``x``kernel`` patches into columns.

    Input ``x`` has shape ``(N, C, H, W)``; the result has shape
    ``(N, H_out * W_out, C * kernel * kernel)`` so a convolution becomes
    a single matrix multiplication against reshaped kernels.
    """
    n, c, h, w = x.shape
    h_out = _out_size(h, kernel, stride, padding)
    w_out = _out_size(w, kernel, stride, padding)
    x = pad2d(x, padding)
    s_n, s_c, s_h, s_w = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, h_out, w_out, kernel, kernel),
        strides=(s_n, s_c, s_h * stride, s_w * stride, s_h, s_w),
        writeable=False,
    )
    # (N, H_out, W_out, C, kh, kw) -> (N, H_out*W_out, C*kh*kw)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n, h_out * w_out, c * kernel * kernel)
    return np.ascontiguousarray(cols)


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """2-D cross-correlation (the deep-learning "convolution").

    ``x``: ``(N, C_in, H, W)``; ``weight``: ``(C_out, C_in, kh, kw)`` with
    ``kh == kw``; ``bias``: ``(C_out,)`` or None.  Returns
    ``(N, C_out, H_out, W_out)``.
    """
    if x.ndim != 4 or weight.ndim != 4:
        raise ValueError(f"conv2d expects 4-D input/weight, got {x.shape} / {weight.shape}")
    c_out, c_in, kh, kw = weight.shape
    if kh != kw:
        raise ValueError(f"only square kernels are supported, got {kh}x{kw}")
    if x.shape[1] != c_in:
        raise ValueError(f"input has {x.shape[1]} channels, weight expects {c_in}")
    n = x.shape[0]
    h_out = _out_size(x.shape[2], kh, stride, padding)
    w_out = _out_size(x.shape[3], kw, stride, padding)
    cols = im2col(x, kh, stride=stride, padding=padding)  # (N, P, C_in*kh*kw)
    kernel_matrix = weight.reshape(c_out, c_in * kh * kw)
    out = cols @ kernel_matrix.T  # (N, P, C_out)
    if bias is not None:
        out = out + bias
    return out.transpose(0, 2, 1).reshape(n, c_out, h_out, w_out)


def relu(x: np.ndarray) -> np.ndarray:
    """Elementwise rectified linear unit."""
    return np.maximum(x, 0.0)


def maxpool2d(x: np.ndarray, kernel: int = 2, stride: int | None = None) -> np.ndarray:
    """Max pooling over non-overlapping (by default) spatial windows."""
    if stride is None:
        stride = kernel
    n, c, h, w = x.shape
    h_out = _out_size(h, kernel, stride, 0)
    w_out = _out_size(w, kernel, stride, 0)
    s_n, s_c, s_h, s_w = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, h_out, w_out, kernel, kernel),
        strides=(s_n, s_c, s_h * stride, s_w * stride, s_h, s_w),
        writeable=False,
    )
    return windows.max(axis=(4, 5))


def global_max_pool(x: np.ndarray) -> np.ndarray:
    """2-D global max pooling: ``(N, C, H, W)`` -> ``(N, C)``.

    This is the channel "activation" used by the paper's top-Z channel
    selection (§3.1): the activation of a channel is the maximum value of
    its ``H×W`` matrix.
    """
    return x.max(axis=(2, 3))


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """Affine map ``x @ weight.T + bias`` with ``weight``: ``(out, in)``."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def flatten(x: np.ndarray) -> np.ndarray:
    """Flatten all axes but the first: ``(N, ...)`` -> ``(N, prod(...))``."""
    return x.reshape(x.shape[0], -1)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
