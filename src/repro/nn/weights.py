"""Deterministic surrogate for "pretrained" VGG-16 weights.

The paper uses a VGG-16 pretrained on ImageNet purely as a *fixed,
generic* multi-scale feature extractor.  In this offline reproduction we
cannot ship ImageNet weights, so we build a deterministic surrogate
that preserves the properties affinity coding relies on (DESIGN.md,
"Substitutions"):

* **conv1 is a Gabor / colour-opponent filter bank.**  First-layer
  filters of trained CNNs famously converge to oriented Gabor-like edge
  detectors plus colour-opponent blobs; we construct exactly those
  analytically, so the earliest max-pool layers respond to edges,
  orientations and colour the way a trained network does.
* **Deeper layers use seeded, orthogonalised He-scaled kernels.**
  Random-but-orthogonal projections preserve similarity structure
  (distances/angles) of their inputs, so prototype similarity at deeper
  layers remains meaningful for texture/shape statistics, which is all
  the affinity premise requires.

All randomness flows from a single integer seed, so two processes build
bit-identical "pretrained" networks.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import spawn_rng

__all__ = ["gabor_kernel", "gabor_bank", "conv_orthogonal", "linear_orthogonal", "first_layer_bank"]


def gabor_kernel(
    size: int,
    theta: float,
    wavelength: float,
    sigma: float | None = None,
    phase: float = 0.0,
) -> np.ndarray:
    """Build a single ``size``x``size`` Gabor kernel, zero-mean, unit-norm.

    ``theta`` is the orientation in radians, ``wavelength`` the period of
    the sinusoidal carrier in pixels.
    """
    if size < 1 or size % 2 == 0:
        raise ValueError(f"Gabor kernel size must be odd and positive, got {size}")
    if sigma is None:
        sigma = 0.5 * wavelength
    half = size // 2
    ys, xs = np.mgrid[-half : half + 1, -half : half + 1].astype(np.float64)
    x_rot = xs * np.cos(theta) + ys * np.sin(theta)
    y_rot = -xs * np.sin(theta) + ys * np.cos(theta)
    envelope = np.exp(-(x_rot**2 + y_rot**2) / (2.0 * sigma**2))
    carrier = np.cos(2.0 * np.pi * x_rot / wavelength + phase)
    kernel = envelope * carrier
    kernel -= kernel.mean()
    norm = np.linalg.norm(kernel)
    if norm > 0:
        kernel /= norm
    return kernel


def gabor_bank(n_filters: int, size: int = 3, seed: int = 0) -> np.ndarray:
    """A deterministic bank of ``n_filters`` Gabor kernels of shape (n, size, size).

    Orientations sweep [0, pi); wavelengths and phases cycle through a
    small fixed grid; any remainder is filled with seeded random
    zero-mean kernels so every requested filter is distinct.
    """
    rng = spawn_rng(seed, "gabor-bank")
    wavelengths = (2.0, 3.0, 5.0)
    phases = (0.0, np.pi / 2)
    kernels: list[np.ndarray] = []
    idx = 0
    while len(kernels) < n_filters:
        n_orient = max(4, n_filters // (len(wavelengths) * len(phases)) + 1)
        theta = np.pi * (idx % n_orient) / n_orient
        wavelength = wavelengths[(idx // n_orient) % len(wavelengths)]
        phase = phases[(idx // (n_orient * len(wavelengths))) % len(phases)]
        if idx < n_orient * len(wavelengths) * len(phases):
            kernels.append(gabor_kernel(size, theta, wavelength, phase=phase))
        else:
            random_kernel = rng.standard_normal((size, size))
            random_kernel -= random_kernel.mean()
            random_kernel /= max(np.linalg.norm(random_kernel), 1e-12)
            kernels.append(random_kernel)
        idx += 1
    return np.stack(kernels[:n_filters])


def _gaussian_blob(size: int, sigma: float) -> np.ndarray:
    """A positive low-pass (DC-responsive) kernel, unit-norm."""
    half = size // 2
    ys, xs = np.mgrid[-half : half + 1, -half : half + 1].astype(np.float64)
    blob = np.exp(-(xs**2 + ys**2) / (2.0 * sigma**2))
    return blob / np.linalg.norm(blob)


def first_layer_bank(
    out_channels: int,
    in_channels: int,
    size: int = 3,
    seed: int = 0,
    blob_every: int = 6,
    blob_gain: float = 0.5,
) -> np.ndarray:
    """Surrogate conv1 weights: Gabor/blob spatial structure x colour.

    Trained VGG conv1 famously contains two filter families: oriented
    Gabor edge detectors and *colour blobs* (low-pass kernels selective
    for a colour but not for structure).  We mirror that: every
    ``blob_every``-th channel is a Gaussian blob scaled by ``blob_gain``
    (responding to uniform colour regions — essential for colour-based
    class evidence, but damped so edge channels still win the top-Z
    prototype ranking), the rest are Gabors.  Colour directions cycle
    through luminance (1,1,1)/sqrt(3), red-green opponent and
    blue-yellow opponent, then seeded random unit directions.  For
    grayscale inputs the colour direction degenerates to a scalar.
    """
    rng = spawn_rng(seed, "first-layer-colour")
    spatial = gabor_bank(out_channels, size=size, seed=seed)
    blob = blob_gain * _gaussian_blob(size, sigma=0.8 * size / 3.0)
    base_directions = [
        np.array([1.0, 1.0, 1.0]) / np.sqrt(3.0),
        np.array([1.0, -1.0, 0.0]) / np.sqrt(2.0),
        np.array([0.5, 0.5, -1.0]) / np.sqrt(1.5),
    ]
    weight = np.empty((out_channels, in_channels, size, size))
    for c in range(out_channels):
        if in_channels == 1:
            colour = np.array([1.0])
        elif c < len(base_directions) * (out_channels // max(len(base_directions), 1)):
            colour = base_directions[c % len(base_directions)]
        else:
            colour = rng.standard_normal(in_channels)
            colour /= max(np.linalg.norm(colour), 1e-12)
        kernel = blob if c % blob_every == blob_every - 1 else spatial[c]
        weight[c] = colour[:in_channels, None, None] * kernel[None, :, :]
    return weight


def _orthogonalise_rows(matrix: np.ndarray) -> np.ndarray:
    """Make rows (approximately) orthonormal via QR on the transpose.

    When there are more rows than columns, full orthogonality is
    impossible; rows are processed in column-sized groups so each group
    is orthonormal.
    """
    rows, cols = matrix.shape
    out = np.empty_like(matrix)
    for start in range(0, rows, cols):
        block = matrix[start : start + cols]
        q, r = np.linalg.qr(block.T)
        sign = np.sign(np.diag(r))
        sign[sign == 0] = 1.0
        out[start : start + cols] = (q * sign).T[: block.shape[0]]
    return out


def conv_orthogonal(
    out_channels: int, in_channels: int, size: int, seed: int, scale: float | None = None
) -> np.ndarray:
    """Seeded orthogonal conv kernel with He-style gain.

    The kernel is drawn Gaussian, orthogonalised across output channels
    (viewed as rows of a ``(C_out, C_in*k*k)`` matrix), then scaled to
    He magnitude ``sqrt(2 / fan_in)`` which keeps activation variance
    roughly constant through ReLU stacks.
    """
    rng = spawn_rng(seed, "conv", out_channels, in_channels, size)
    fan_in = in_channels * size * size
    flat = rng.standard_normal((out_channels, fan_in))
    flat = _orthogonalise_rows(flat)
    if scale is None:
        scale = np.sqrt(2.0 / fan_in)
    # Orthonormal rows have unit norm; rescale so each kernel has the He std.
    flat = flat * (scale * np.sqrt(fan_in))
    return flat.reshape(out_channels, in_channels, size, size)


def linear_orthogonal(
    out_features: int, in_features: int, seed: int, scale: float | None = None
) -> np.ndarray:
    """Seeded orthogonal linear weights with He-style gain."""
    rng = spawn_rng(seed, "linear", out_features, in_features)
    flat = rng.standard_normal((out_features, in_features))
    flat = _orthogonalise_rows(flat)
    if scale is None:
        scale = np.sqrt(2.0 / in_features)
    return flat * (scale * np.sqrt(in_features))
