"""Stage 1 of the affinity engine: chunked feature extraction.

``VGG16.forward_pools`` materialises every intermediate activation of
the conv stack for the whole batch at once, so its working set grows
linearly with N.  The engine instead drives the backbone in fixed-size
chunks: peak memory is bounded by ``batch_size`` images (plus the
retained pool outputs, which are the stage's product), and the results
are bitwise identical because every layer of the backbone is
per-sample independent (conv / ReLU / max-pool, no batch statistics).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.vgg import VGG16
from repro.utils.validation import check_images

__all__ = ["iter_batches", "extract_pool_features"]


def iter_batches(n: int, batch_size: int | None) -> Iterator[slice]:
    """Yield contiguous index slices covering ``range(n)``.

    ``batch_size=None`` (or >= n) yields a single slice — the legacy
    whole-corpus behaviour.

    These boundaries are also the distributed runtime's extraction
    shard unit (:meth:`repro.distributed.ShardPlanner.extraction_shards`
    cuts the corpus at exactly these slices), which is what makes the
    cluster merge bit-identical to a local chunked extraction.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if batch_size is None:
        yield slice(0, n)
        return
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    for start in range(0, n, batch_size):
        yield slice(start, min(start + batch_size, n))


def extract_pool_features(
    model: VGG16,
    images: np.ndarray,
    layers: tuple[int, ...] | None = None,
    batch_size: int | None = None,
) -> dict[int, np.ndarray]:
    """Max-pool filter maps for ``images``, computed ``batch_size`` at a time.

    Args:
        model: the frozen backbone.
        layers: which max-pool layers to keep (default: all five).
            Layers not requested are discarded chunk-by-chunk, so they
            never occupy memory for more than one chunk.
        batch_size: images per forward pass; ``None`` = single pass.

    Returns:
        ``{layer: (N, C_L, H_L, W_L)}`` for each requested layer.
    """
    images = check_images(images)
    if layers is None:
        layers = tuple(range(model.N_POOL_LAYERS))
    if len(layers) == 0:
        raise ValueError("need at least one layer")
    for layer in layers:
        if not 0 <= layer < model.N_POOL_LAYERS:
            raise ValueError(f"layer {layer} out of range [0, {model.N_POOL_LAYERS})")
    chunks: dict[int, list[np.ndarray]] = {layer: [] for layer in layers}
    for batch in iter_batches(images.shape[0], batch_size):
        pools = model.forward_pools(images[batch])
        for layer in layers:
            chunks[layer].append(pools[layer])
    return {
        layer: parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)
        for layer, parts in chunks.items()
    }
