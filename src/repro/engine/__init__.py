"""The staged affinity engine (see ENGINE.md).

Splits the monolithic image→affinity-matrix path into reusable stages:

* :mod:`repro.engine.features` — chunked backbone feature extraction.
* :mod:`repro.engine.tiling` — tiled, de-duplicated, thread-parallel
  affinity construction.
* :mod:`repro.engine.cache` — content-addressed on-disk artifact cache.
* :mod:`repro.engine.source` — interchangeable affinity backends
  (VGG prototypes, HOG, raw-feature cosine).
* :mod:`repro.engine.engine` — the orchestrator, including the
  incremental corpus-extension path.
* :mod:`repro.engine.inference` — the staged inference engine
  (process/thread-parallel base fits, warm-started EM, cached
  parameters).
"""

from repro.engine.cache import ArtifactCache, CacheStats, MemmapBlockStore, hash_arrays, hash_params
from repro.engine.engine import AffinityEngine, EngineConfig
from repro.engine.features import extract_pool_features, iter_batches
from repro.engine.inference import (
    EXECUTORS,
    InferenceEngine,
    InferenceState,
    warm_start_responsibilities,
)
from repro.engine.source import (
    AffinitySource,
    CorpusState,
    EngineRuntime,
    FeatureCosineSource,
    IncrementalAffinitySource,
    PrototypeAffinitySource,
    hog_source,
    logits_source,
)
from repro.engine.tiling import (
    LayerPrototypes,
    assemble_blocks,
    best_similarities,
    sparsify_affinity,
    tile_bounds,
    tile_executor,
    tiled_affinity_matrix,
    tiled_layer_affinity_blocks,
    topk_block,
    unique_unit_prototypes,
    unit_location_vectors,
)

__all__ = [
    "AffinityEngine",
    "EngineConfig",
    "EXECUTORS",
    "InferenceEngine",
    "InferenceState",
    "warm_start_responsibilities",
    "ArtifactCache",
    "CacheStats",
    "MemmapBlockStore",
    "hash_arrays",
    "hash_params",
    "extract_pool_features",
    "iter_batches",
    "AffinitySource",
    "IncrementalAffinitySource",
    "CorpusState",
    "EngineRuntime",
    "FeatureCosineSource",
    "PrototypeAffinitySource",
    "hog_source",
    "logits_source",
    "LayerPrototypes",
    "assemble_blocks",
    "best_similarities",
    "sparsify_affinity",
    "tile_bounds",
    "tile_executor",
    "tiled_affinity_matrix",
    "tiled_layer_affinity_blocks",
    "topk_block",
    "unique_unit_prototypes",
    "unit_location_vectors",
]
