"""Stage 3 of the affinity engine: content-addressed artifact caching.

Affinity matrices are the expensive product of step 1 and are pure
functions of (images, backbone config, extraction knobs).  The cache
keys every artifact by a SHA-256 over exactly those inputs, so

* re-running an experiment with identical inputs is a disk load;
* changing *any* input (one pixel, ``top_z``, the VGG seed) changes the
  key and misses — no invalidation logic, no stale reads.

Artifacts are ``.npz`` files.  Affinity matrices reuse the
:meth:`repro.core.affinity.AffinityMatrix.save` format, so a cached
entry is also directly loadable by user code; auxiliary artifacts
(pool features, prototype tables, incremental corpus state) are plain
array bundles.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
import weakref
import zipfile
from dataclasses import dataclass, field

import numpy as np

from repro.core.affinity import AffinityMatrix, SparseAffinityMatrix, densify_topk_rows
from repro.obs import default_registry

# A cache read must never be able to crash a run: any unreadable or
# internally inconsistent artifact (truncated download, disk-full
# write from a foreign tool, schema drift) is treated as a miss and
# evicted so the entry is rebuilt.
_CORRUPT_ERRORS = (zipfile.BadZipFile, OSError, KeyError, ValueError, EOFError)

__all__ = ["CacheStats", "ArtifactCache", "MemmapBlockStore", "hash_arrays", "hash_params"]


def hash_arrays(*arrays: np.ndarray) -> str:
    """Stable content hash of arrays (dtype + shape + C-order bytes)."""
    digest = hashlib.sha256()
    for array in arrays:
        array = np.ascontiguousarray(array)
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def hash_params(params: dict[str, object]) -> str:
    """Stable hash of a flat parameter mapping (sorted key=value reprs)."""
    material = ";".join(f"{key}={params[key]!r}" for key in sorted(params))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters, one pair per artifact kind, plus evictions."""

    hits: dict[str, int] = field(default_factory=dict)
    misses: dict[str, int] = field(default_factory=dict)
    evictions: int = 0

    def record(self, kind: str, hit: bool) -> None:
        bucket = self.hits if hit else self.misses
        bucket[kind] = bucket.get(kind, 0) + 1

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())


class ArtifactCache:
    """A content-addressed on-disk store for engine artifacts.

    Entries live under ``cache_dir`` as ``{kind}-{key[:24]}.npz``; the
    key is supplied by the caller via :meth:`key` so that every byte of
    input provenance (data hash + parameter hash) is part of the
    address.

    ``max_bytes`` sets a size budget for the directory: whenever a
    write pushes the total ``.npz`` footprint above the budget, the
    least-recently-used entries (by mtime; reads refresh it) are
    evicted oldest-first until the directory fits again.  The entry
    just written is never evicted, even if it alone exceeds the budget.

    Concurrency contract: the cache directory may be shared by many
    threads *and processes* (the distributed runtime mounts one cache
    under the coordinator, its broker handler threads, and every worker
    process).  Writes are publish-by-rename: each writer streams into
    its own unique ``*.tmp`` scratch file (invisible to entry listing,
    eviction, and ``total_bytes``) and atomically ``os.replace``-s it
    into place, so a reader — or the eviction scan racing a concurrent
    shard write — can only ever observe a complete entry or a miss,
    never a half-written one.  In-process counters and the eviction
    walk are additionally serialised by a lock.
    """

    def __init__(self, cache_dir: str, max_bytes: int | None = None):
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.cache_dir = str(cache_dir)
        self.max_bytes = max_bytes
        os.makedirs(self.cache_dir, exist_ok=True)
        self.stats = CacheStats()
        # The directory may be shared across tenants (content addressing
        # prevents collisions); the metric label attributes traffic to
        # whichever tenant this *instance* serves.  Mutable: the tenant
        # registry stamps it right after the owning engine is built.
        self.tenant = "default"
        # Process-wide mirrors of the per-instance stats: get-or-create
        # is idempotent, so every cache in the process feeds the same
        # Prometheus families (totals across instances).
        registry = default_registry()
        self._m_hits = registry.counter(
            "goggles_cache_hits_total", "Artifact cache hits, by artifact kind and tenant.",
            labelnames=("kind", "tenant"),
        )
        self._m_misses = registry.counter(
            "goggles_cache_misses_total", "Artifact cache misses, by artifact kind and tenant.",
            labelnames=("kind", "tenant"),
        )
        self._m_evictions = registry.counter(
            "goggles_cache_evictions_total", "Artifact cache entries evicted (LRU budget or deferred).",
            labelnames=("tenant",),
        )
        self._m_pins = registry.counter(
            "goggles_cache_pins_total", "Memmap pin acquisitions (live readers registered).",
            labelnames=("tenant",),
        )
        self._m_unpins = registry.counter(
            "goggles_cache_unpins_total", "Memmap pin releases.",
            labelnames=("tenant",),
        )
        self._lock = threading.RLock()
        # Memmap refcounts: a path with a positive pin count has live
        # readers whose pages are backed by the file — eviction of a
        # pinned path is *deferred* (recorded, re-attempted at unpin)
        # rather than deleting the file out from under the mapping.
        self._pins: dict[str, int] = {}
        self._deferred: set[str] = set()

    def _record(self, kind: str, hit: bool) -> None:
        with self._lock:
            self.stats.record(kind, hit=hit)
        (self._m_hits if hit else self._m_misses).inc(kind=kind, tenant=self.tenant)

    def key(self, data_hash: str, params: dict[str, object]) -> str:
        """Combine a data hash and a parameter mapping into one address."""
        return hashlib.sha256(f"{data_hash}|{hash_params(params)}".encode()).hexdigest()

    def path(self, kind: str, key: str) -> str:
        return os.path.join(self.cache_dir, f"{kind}-{key[:24]}.npz")

    def has(self, kind: str, key: str) -> bool:
        return os.path.exists(self.path(kind, key))

    # ------------------------------------------------------------------
    # Generic array bundles
    # ------------------------------------------------------------------
    def load_arrays(self, kind: str, key: str) -> dict[str, np.ndarray] | None:
        path = self.path(kind, key)
        if not os.path.exists(path):
            self._record(kind, hit=False)
            return None
        try:
            with np.load(path) as data:
                arrays = {name: data[name] for name in data.files}
        except _CORRUPT_ERRORS:
            self._evict_corrupt(path)
            self._record(kind, hit=False)
            return None
        self._record(kind, hit=True)
        self._touch(path)
        return arrays

    def _scratch(self, kind: str) -> tuple[int, str]:
        """A unique scratch file for one writer.

        Unique per call (``mkstemp``), so concurrent writers of the
        *same* key — two workers racing on a deduplicated shard — never
        interleave bytes in a shared temp file; and suffixed ``.tmp``,
        not ``.npz``, so in-progress writes are invisible to
        :meth:`_entries` and can never be evicted mid-write or counted
        against the budget.
        """
        return tempfile.mkstemp(prefix=f"{kind}-", suffix=".tmp", dir=self.cache_dir)

    def save_arrays(self, kind: str, key: str, arrays: dict[str, np.ndarray]) -> str:
        path = self.path(kind, key)
        fd, tmp = self._scratch(kind)
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(handle, **arrays)
            os.replace(tmp, path)  # atomic: readers never see partial files
        except BaseException:
            self._evict_corrupt(tmp)
            raise
        self._enforce_budget(keep=path)
        return path

    # ------------------------------------------------------------------
    # Affinity matrices (AffinityMatrix.save/load format)
    # ------------------------------------------------------------------
    def load_affinity(self, key: str) -> AffinityMatrix | None:
        path = self.path("affinity", key)
        if not os.path.exists(path):
            self._record("affinity", hit=False)
            return None
        try:
            matrix = AffinityMatrix.load(path)
        except _CORRUPT_ERRORS:
            self._evict_corrupt(path)
            self._record("affinity", hit=False)
            return None
        self._record("affinity", hit=True)
        self._touch(path)
        return matrix

    def save_affinity(self, key: str, matrix: AffinityMatrix) -> str:
        path = self.path("affinity", key)
        # Write through an open handle: a bare ``.tmp`` name would have
        # numpy append ``.npz`` — and a ``.tmp.npz`` scratch file is a
        # half-written entry that the eviction scan could list, evict
        # mid-write (breaking the rename), or count against the budget.
        fd, tmp = self._scratch("affinity")
        try:
            with os.fdopen(fd, "wb") as handle:
                matrix.save(handle)
            os.replace(tmp, path)
        except BaseException:
            self._evict_corrupt(tmp)
            raise
        self._enforce_budget(keep=path)
        return path

    # ------------------------------------------------------------------
    # Sparse affinity matrices (CSR tiles, SparseAffinityMatrix format)
    # ------------------------------------------------------------------
    def load_affinity_csr(self, key: str) -> SparseAffinityMatrix | None:
        path = self.path("affinity-csr", key)
        if not os.path.exists(path):
            self._record("affinity-csr", hit=False)
            return None
        try:
            sparse = SparseAffinityMatrix.load(path)
        except _CORRUPT_ERRORS:
            self._evict_corrupt(path)
            self._record("affinity-csr", hit=False)
            return None
        self._record("affinity-csr", hit=True)
        self._touch(path)
        return sparse

    def save_affinity_csr(self, key: str, sparse: SparseAffinityMatrix) -> str:
        path = self.path("affinity-csr", key)
        fd, tmp = self._scratch("affinity-csr")
        try:
            with os.fdopen(fd, "wb") as handle:
                sparse.save(handle)
            os.replace(tmp, path)
        except BaseException:
            self._evict_corrupt(tmp)
            raise
        self._enforce_budget(keep=path)
        return path

    # ------------------------------------------------------------------
    # Memmap pinning (refcounted deferral of eviction for live readers)
    # ------------------------------------------------------------------
    def pin(self, path: str) -> None:
        """Register a live reader of ``path``; eviction is deferred."""
        with self._lock:
            self._pins[path] = self._pins.get(path, 0) + 1
        self._m_pins.inc(tenant=self.tenant)

    def unpin(self, path: str) -> None:
        """Drop one reader; the last unpin applies any deferred eviction."""
        self._m_unpins.inc(tenant=self.tenant)
        with self._lock:
            count = self._pins.get(path, 0) - 1
            if count > 0:
                self._pins[path] = count
                return
            self._pins.pop(path, None)
            if path in self._deferred:
                self._deferred.discard(path)
                self._evict_corrupt(path)
                self.stats.evictions += 1
                self._m_evictions.inc(tenant=self.tenant)

    def pinned(self, path: str) -> bool:
        with self._lock:
            return self._pins.get(path, 0) > 0

    def evict(self, kind: str, key: str) -> None:
        """Drop one entry (used for unreadable or schema-drifted files)."""
        self._evict_corrupt(self.path(kind, key))

    def _evict_corrupt(self, path: str) -> None:
        try:
            os.remove(path)
        except OSError:  # pragma: no cover - racing eviction is fine
            pass

    # ------------------------------------------------------------------
    # Size budget (LRU eviction)
    # ------------------------------------------------------------------
    def _touch(self, path: str) -> None:
        """Refresh mtime on a hit so LRU eviction spares hot entries."""
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - read-only cache dirs are fine
            pass

    def total_bytes(self) -> int:
        """Current artifact footprint (``.npz`` + ``.npy``) of the cache."""
        return sum(size for _, size, _ in self._entries())

    def _entries(self) -> list[tuple[float, int, str]]:
        """(mtime, size, path) of every artifact, oldest first.

        ``.npz`` bundles and the raw ``.npy`` memmap blocks both count:
        materialised dense blocks are by far the largest artifacts, so
        a budget that ignored them would be fiction.
        """
        entries: list[tuple[float, int, str]] = []
        for name in os.listdir(self.cache_dir):
            if not name.endswith((".npz", ".npy")):
                continue
            path = os.path.join(self.cache_dir, name)
            try:
                stat = os.stat(path)
            except OSError:  # pragma: no cover - racing eviction is fine
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()
        return entries

    def _enforce_budget(self, keep: str) -> None:
        """Evict least-recently-used entries until the budget holds.

        ``keep`` — the path just written — is exempt: evicting the
        artifact the caller is about to rely on would turn every
        over-budget write into a guaranteed miss.
        """
        if self.max_bytes is None:
            return
        with self._lock:
            entries = self._entries()
            total = sum(size for _, size, _ in entries)
            for _, size, path in entries:
                if total <= self.max_bytes:
                    break
                if path == keep:
                    continue
                if self._pins.get(path, 0) > 0:
                    # A live memmap reader holds this file open; deleting
                    # it now would yank pages out from under the mapping.
                    # Count it as freed (the reader owns the bytes now)
                    # and actually remove it at the final unpin.
                    self._deferred.add(path)
                    total -= size
                    continue
                try:
                    os.remove(path)
                except OSError:  # pragma: no cover - racing eviction is fine
                    continue
                total -= size
                self.stats.evictions += 1
                self._m_evictions.inc(tenant=self.tenant)

    def clear(self) -> int:
        """Delete every cached artifact; returns the number removed.

        Also sweeps ``.tmp`` scratch files orphaned by crashed writers
        (they are never listed as entries, but they do occupy disk).
        Tolerates entries vanishing between the listing and the remove
        — a concurrent eviction or clear() got there first.
        """
        removed = 0
        with self._lock:
            for name in os.listdir(self.cache_dir):
                path = os.path.join(self.cache_dir, name)
                if name.endswith((".npz", ".npy")):
                    if self._pins.get(path, 0) > 0:
                        self._deferred.add(path)
                        continue
                    try:
                        os.remove(path)
                    except OSError:
                        continue  # racing eviction/clear already took it
                    removed += 1
                elif name.endswith(".tmp"):
                    self._evict_corrupt(path)
        return removed


class MemmapBlockStore:
    """Out-of-core densified blocks for a :class:`SparseAffinityMatrix`.

    ``SparseAffinityMatrix.block(f)`` normally densifies into a fresh
    in-RAM array — an N×N allocation per call.  Attaching a block store
    (``sparse.with_store(MemmapBlockStore(...))``) changes that: each
    block is materialised *once* to an ``.npy`` file (written row-tiled,
    so peak RAM stays at one row tile, never a full block) and every
    subsequent access returns a read-only ``np.memmap`` whose pages the
    OS fetches — and drops — on demand.  N can exceed RAM.

    Lifecycle: files are published by the cache's rename discipline
    (mkstemp ``.tmp`` scratch → atomic ``os.replace``), live under the
    artifact cache as kind ``affinity-block`` when one is supplied (a
    throwaway temp directory otherwise), and are pinned for as long as
    any returned memmap is alive — the cache defers eviction of pinned
    blocks instead of deleting pages out from under a live reader
    (`weakref.finalize` drops the pin when the mapping is collected).
    """

    _ROW_TILE = 1024

    def __init__(
        self,
        cache: ArtifactCache | None = None,
        base_key: str = "",
        directory: str | None = None,
    ):
        self.cache = cache
        self.base_key = base_key
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        if cache is not None:
            self.directory = cache.cache_dir
        elif directory is not None:
            os.makedirs(directory, exist_ok=True)
            self.directory = directory
        else:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="affinity-blocks-")
            self.directory = self._tmpdir.name

    def _path(self, sparse: SparseAffinityMatrix, f: int) -> str:
        base = self.base_key or sparse.content_hash()
        # One un-hyphenated trailing token: ``cache-info`` derives the
        # kind by splitting on the last hyphen, so this files under
        # "affinity-block" alongside the ``.npz`` kinds.
        return os.path.join(self.directory, f"affinity-block-{base[:16]}{f:03d}.npy")

    def block(self, sparse: SparseAffinityMatrix, f: int) -> np.ndarray:
        """A read-only memmap of block ``f``, materialising on first use."""
        path = self._path(sparse, f)
        for attempt in (0, 1):
            if not os.path.exists(path):
                self._materialise(sparse, f, path)
            try:
                mm = np.load(path, mmap_mode="r")
                if mm.shape != (sparse.n_examples, sparse.n_examples) or mm.dtype != sparse.dtype:
                    raise ValueError(f"stale memmap block at {path!r}")
            except _CORRUPT_ERRORS:
                # Corrupt or vanished between the existence check and the
                # open (eviction race, foreign truncation): rebuild once.
                try:
                    os.remove(path)
                except OSError:
                    pass
                if attempt:
                    raise
                continue
            if self.cache is not None:
                self.cache.pin(path)
                weakref.finalize(mm, self.cache.unpin, path)
            return mm
        raise RuntimeError(f"unreachable: memmap block retry fell through for {path!r}")

    def _materialise(self, sparse: SparseAffinityMatrix, f: int, path: str) -> None:
        n = sparse.n_examples
        fd, tmp = tempfile.mkstemp(prefix="affinity-block-", suffix=".tmp", dir=self.directory)
        os.close(fd)
        try:
            mm = np.lib.format.open_memmap(tmp, mode="w+", dtype=sparse.dtype, shape=(n, n))
            data, indices = sparse.data[f], sparse.indices[f]
            fill = sparse.fill[f]
            for r0 in range(0, n, self._ROW_TILE):
                r1 = min(n, r0 + self._ROW_TILE)
                densify_topk_rows(data[r0:r1], indices[r0:r1], fill[r0:r1], n, out=mm[r0:r1])
            mm.flush()
            del mm
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        if self.cache is not None:
            self.cache._enforce_budget(keep=path)
