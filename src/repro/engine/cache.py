"""Stage 3 of the affinity engine: content-addressed artifact caching.

Affinity matrices are the expensive product of step 1 and are pure
functions of (images, backbone config, extraction knobs).  The cache
keys every artifact by a SHA-256 over exactly those inputs, so

* re-running an experiment with identical inputs is a disk load;
* changing *any* input (one pixel, ``top_z``, the VGG seed) changes the
  key and misses — no invalidation logic, no stale reads.

Artifacts are ``.npz`` files.  Affinity matrices reuse the
:meth:`repro.core.affinity.AffinityMatrix.save` format, so a cached
entry is also directly loadable by user code; auxiliary artifacts
(pool features, prototype tables, incremental corpus state) are plain
array bundles.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
import zipfile
from dataclasses import dataclass, field

import numpy as np

from repro.core.affinity import AffinityMatrix

# A cache read must never be able to crash a run: any unreadable or
# internally inconsistent artifact (truncated download, disk-full
# write from a foreign tool, schema drift) is treated as a miss and
# evicted so the entry is rebuilt.
_CORRUPT_ERRORS = (zipfile.BadZipFile, OSError, KeyError, ValueError, EOFError)

__all__ = ["CacheStats", "ArtifactCache", "hash_arrays", "hash_params"]


def hash_arrays(*arrays: np.ndarray) -> str:
    """Stable content hash of arrays (dtype + shape + C-order bytes)."""
    digest = hashlib.sha256()
    for array in arrays:
        array = np.ascontiguousarray(array)
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def hash_params(params: dict[str, object]) -> str:
    """Stable hash of a flat parameter mapping (sorted key=value reprs)."""
    material = ";".join(f"{key}={params[key]!r}" for key in sorted(params))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters, one pair per artifact kind, plus evictions."""

    hits: dict[str, int] = field(default_factory=dict)
    misses: dict[str, int] = field(default_factory=dict)
    evictions: int = 0

    def record(self, kind: str, hit: bool) -> None:
        bucket = self.hits if hit else self.misses
        bucket[kind] = bucket.get(kind, 0) + 1

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())


class ArtifactCache:
    """A content-addressed on-disk store for engine artifacts.

    Entries live under ``cache_dir`` as ``{kind}-{key[:24]}.npz``; the
    key is supplied by the caller via :meth:`key` so that every byte of
    input provenance (data hash + parameter hash) is part of the
    address.

    ``max_bytes`` sets a size budget for the directory: whenever a
    write pushes the total ``.npz`` footprint above the budget, the
    least-recently-used entries (by mtime; reads refresh it) are
    evicted oldest-first until the directory fits again.  The entry
    just written is never evicted, even if it alone exceeds the budget.

    Concurrency contract: the cache directory may be shared by many
    threads *and processes* (the distributed runtime mounts one cache
    under the coordinator, its broker handler threads, and every worker
    process).  Writes are publish-by-rename: each writer streams into
    its own unique ``*.tmp`` scratch file (invisible to entry listing,
    eviction, and ``total_bytes``) and atomically ``os.replace``-s it
    into place, so a reader — or the eviction scan racing a concurrent
    shard write — can only ever observe a complete entry or a miss,
    never a half-written one.  In-process counters and the eviction
    walk are additionally serialised by a lock.
    """

    def __init__(self, cache_dir: str, max_bytes: int | None = None):
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.cache_dir = str(cache_dir)
        self.max_bytes = max_bytes
        os.makedirs(self.cache_dir, exist_ok=True)
        self.stats = CacheStats()
        self._lock = threading.RLock()

    def _record(self, kind: str, hit: bool) -> None:
        with self._lock:
            self.stats.record(kind, hit=hit)

    def key(self, data_hash: str, params: dict[str, object]) -> str:
        """Combine a data hash and a parameter mapping into one address."""
        return hashlib.sha256(f"{data_hash}|{hash_params(params)}".encode()).hexdigest()

    def path(self, kind: str, key: str) -> str:
        return os.path.join(self.cache_dir, f"{kind}-{key[:24]}.npz")

    def has(self, kind: str, key: str) -> bool:
        return os.path.exists(self.path(kind, key))

    # ------------------------------------------------------------------
    # Generic array bundles
    # ------------------------------------------------------------------
    def load_arrays(self, kind: str, key: str) -> dict[str, np.ndarray] | None:
        path = self.path(kind, key)
        if not os.path.exists(path):
            self._record(kind, hit=False)
            return None
        try:
            with np.load(path) as data:
                arrays = {name: data[name] for name in data.files}
        except _CORRUPT_ERRORS:
            self._evict_corrupt(path)
            self._record(kind, hit=False)
            return None
        self._record(kind, hit=True)
        self._touch(path)
        return arrays

    def _scratch(self, kind: str) -> tuple[int, str]:
        """A unique scratch file for one writer.

        Unique per call (``mkstemp``), so concurrent writers of the
        *same* key — two workers racing on a deduplicated shard — never
        interleave bytes in a shared temp file; and suffixed ``.tmp``,
        not ``.npz``, so in-progress writes are invisible to
        :meth:`_entries` and can never be evicted mid-write or counted
        against the budget.
        """
        return tempfile.mkstemp(prefix=f"{kind}-", suffix=".tmp", dir=self.cache_dir)

    def save_arrays(self, kind: str, key: str, arrays: dict[str, np.ndarray]) -> str:
        path = self.path(kind, key)
        fd, tmp = self._scratch(kind)
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(handle, **arrays)
            os.replace(tmp, path)  # atomic: readers never see partial files
        except BaseException:
            self._evict_corrupt(tmp)
            raise
        self._enforce_budget(keep=path)
        return path

    # ------------------------------------------------------------------
    # Affinity matrices (AffinityMatrix.save/load format)
    # ------------------------------------------------------------------
    def load_affinity(self, key: str) -> AffinityMatrix | None:
        path = self.path("affinity", key)
        if not os.path.exists(path):
            self._record("affinity", hit=False)
            return None
        try:
            matrix = AffinityMatrix.load(path)
        except _CORRUPT_ERRORS:
            self._evict_corrupt(path)
            self._record("affinity", hit=False)
            return None
        self._record("affinity", hit=True)
        self._touch(path)
        return matrix

    def save_affinity(self, key: str, matrix: AffinityMatrix) -> str:
        path = self.path("affinity", key)
        # Write through an open handle: a bare ``.tmp`` name would have
        # numpy append ``.npz`` — and a ``.tmp.npz`` scratch file is a
        # half-written entry that the eviction scan could list, evict
        # mid-write (breaking the rename), or count against the budget.
        fd, tmp = self._scratch("affinity")
        try:
            with os.fdopen(fd, "wb") as handle:
                matrix.save(handle)
            os.replace(tmp, path)
        except BaseException:
            self._evict_corrupt(tmp)
            raise
        self._enforce_budget(keep=path)
        return path

    def evict(self, kind: str, key: str) -> None:
        """Drop one entry (used for unreadable or schema-drifted files)."""
        self._evict_corrupt(self.path(kind, key))

    def _evict_corrupt(self, path: str) -> None:
        try:
            os.remove(path)
        except OSError:  # pragma: no cover - racing eviction is fine
            pass

    # ------------------------------------------------------------------
    # Size budget (LRU eviction)
    # ------------------------------------------------------------------
    def _touch(self, path: str) -> None:
        """Refresh mtime on a hit so LRU eviction spares hot entries."""
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - read-only cache dirs are fine
            pass

    def total_bytes(self) -> int:
        """Current ``.npz`` footprint of the cache directory."""
        return sum(size for _, size, _ in self._entries())

    def _entries(self) -> list[tuple[float, int, str]]:
        """(mtime, size, path) of every artifact, oldest first."""
        entries: list[tuple[float, int, str]] = []
        for name in os.listdir(self.cache_dir):
            if not name.endswith(".npz"):
                continue
            path = os.path.join(self.cache_dir, name)
            try:
                stat = os.stat(path)
            except OSError:  # pragma: no cover - racing eviction is fine
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()
        return entries

    def _enforce_budget(self, keep: str) -> None:
        """Evict least-recently-used entries until the budget holds.

        ``keep`` — the path just written — is exempt: evicting the
        artifact the caller is about to rely on would turn every
        over-budget write into a guaranteed miss.
        """
        if self.max_bytes is None:
            return
        with self._lock:
            entries = self._entries()
            total = sum(size for _, size, _ in entries)
            for _, size, path in entries:
                if total <= self.max_bytes:
                    break
                if path == keep:
                    continue
                try:
                    os.remove(path)
                except OSError:  # pragma: no cover - racing eviction is fine
                    continue
                total -= size
                self.stats.evictions += 1

    def clear(self) -> int:
        """Delete every cached artifact; returns the number removed.

        Also sweeps ``.tmp`` scratch files orphaned by crashed writers
        (they are never listed as entries, but they do occupy disk).
        Tolerates entries vanishing between the listing and the remove
        — a concurrent eviction or clear() got there first.
        """
        removed = 0
        with self._lock:
            for name in os.listdir(self.cache_dir):
                path = os.path.join(self.cache_dir, name)
                if name.endswith(".npz"):
                    try:
                        os.remove(path)
                    except OSError:
                        continue  # racing eviction/clear already took it
                    removed += 1
                elif name.endswith(".tmp"):
                    self._evict_corrupt(path)
        return removed
