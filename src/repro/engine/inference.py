"""The staged inference engine: parallel base fits, warm starts, caching.

Mirrors the affinity engine on step 2 of the pipeline (the hierarchical
generative model of paper §4.1)::

    affinity ──(1) per-function base GMM fits──> label predictions LP
             ──(2) one-hot + Bernoulli ensemble──> posterior
             ──(3) artifact cache──> fitted parameters + posterior on disk
    extended affinity ──(4) warm start──> EM resumes from the previous fit

Stage 1 is embarrassingly parallel — "we can parallelize all of the
base models using different slices of the affinity matrix" (§5.3).
``executor="thread"`` fans the fits over a thread pool (the EM inner
loops are BLAS-bound and release the GIL); ``executor="process"`` side-
steps the GIL entirely with a ``ProcessPoolExecutor``, handing workers
the affinity matrix through POSIX shared memory so the O(α·N²) values
are never pickled; ``executor="distributed"`` leases one base-fit shard
per affinity function to coordinator/worker cluster processes that may
live on other machines (``repro.distributed``).  Every mode consumes
the same ``derive_seed`` streams, so posteriors are **bit-identical**
regardless of executor.

Stage 4 is the incremental-inference path: instead of refitting from
scratch, the base GMMs resume from the previous run's posterior (old
rows keep their responsibilities; new rows are initialised by
affinity-weighted propagation of the old posterior) and the ensemble
resumes from its previous parameters — its dimension α·K does not
change when the corpus grows.  Warm-started EM converges in a fraction
of the cold iterations while landing in the same basin; agreement with
a cold refit is checked in the test suite and benchmarks.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.core.affinity import AffinityMatrix, SparseAffinityMatrix, densify_topk_rows
from repro.core.inference.base_gmm import GMMFitResult, GMMParams
from repro.core.inference.bernoulli import (
    BernoulliFitResult,
    BernoulliParams,
    one_hot_encode_lp,
)
from repro.core.inference.hierarchical import (
    HierarchicalConfig,
    HierarchicalResult,
    complete_hierarchy,
    fit_all_base_functions,
    fit_base_function,
    warn_if_reinitialized,
)
from repro.engine.cache import ArtifactCache, hash_arrays
from repro.obs import span

__all__ = ["EXECUTORS", "InferenceState", "InferenceEngine", "warm_start_responsibilities"]

EXECUTORS = ("serial", "thread", "process", "distributed")


@dataclass(frozen=True)
class InferenceState:
    """Everything a fit leaves behind for warm-starting the next one.

    Attributes:
        label_predictions: ``(N, α·K)`` concatenated soft base-model
            posteriors of the previous fit (the per-function
            responsibilities, which survive corpus growth — unlike the
            GMM means, whose dimension is N).
        ensemble: fitted Bernoulli-mixture parameters (dimension α·K,
            unchanged by corpus growth).
        n_examples: corpus size N of the previous fit.
        n_classes: K.
    """

    label_predictions: np.ndarray
    ensemble: BernoulliParams
    n_examples: int
    n_classes: int

    @property
    def n_functions(self) -> int:
        return int(self.label_predictions.shape[1] // self.n_classes)

    def compatible_with(self, affinity: AffinityMatrix, n_classes: int) -> bool:
        """Whether this state can warm-start a fit on ``affinity``."""
        return (
            self.n_classes == n_classes
            and self.n_functions == affinity.n_functions
            and self.n_examples <= affinity.n_examples
            and self.ensemble.probs.shape == (n_classes, affinity.n_functions * n_classes)
        )


def warm_start_responsibilities(state: InferenceState, affinity: AffinityMatrix) -> list[np.ndarray]:
    """Per-function initial responsibilities for a (possibly grown) corpus.

    Rows present in the previous fit reuse their posterior verbatim.
    New rows are initialised by affinity-weighted propagation: the new
    instance's affinities to the old corpus (shifted from [-1, 1] to
    [0, 1]) average the old responsibilities — instances similar to a
    cluster start in that cluster.  This is the "new rows initialized
    from posterior responsibilities" seed that EM then refines.
    """
    n_prev, k = state.n_examples, state.n_classes
    n = affinity.n_examples
    inits: list[np.ndarray] = []
    for f in range(affinity.n_functions):
        old = state.label_predictions[:, f * k : (f + 1) * k]
        if n == n_prev:
            inits.append(old)
            continue
        weights = (affinity.block(f)[n_prev:, :n_prev] + 1.0) / 2.0  # (M, N_prev), >= 0
        new = weights @ old
        norm = new.sum(axis=1, keepdims=True)
        new = np.where(norm > 1e-12, new / np.maximum(norm, 1e-12), 1.0 / k)
        inits.append(np.concatenate([old, new], axis=0))
    return inits


def _fit_block_from_shm(
    shm_name: str,
    shape: tuple[int, int],
    dtype: str,
    function_index: int,
    config: HierarchicalConfig,
    init: GMMParams | np.ndarray | None,
) -> GMMFitResult:
    """Process-pool worker: attach the shared affinity values, fit one block.

    Module-level (picklable) by construction; the worker copies its
    N×N block out of shared memory so the fit never holds the segment
    alive past this call.
    """
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        values = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
        n = shape[0]
        block = np.array(values[:, function_index * n : (function_index + 1) * n], copy=True)
    finally:
        shm.close()
    return fit_base_function(block, config, function_index, init=init)


def _fit_block_from_csr(
    data: np.ndarray,
    indices: np.ndarray,
    fill: np.ndarray,
    n_examples: int,
    function_index: int,
    config: HierarchicalConfig,
    init: GMMParams | np.ndarray | None,
) -> GMMFitResult:
    """Process-pool worker for the sparse path: densify one CSR block, fit.

    Sparse blocks travel as their O(N·k) CSR arrays instead of a shared
    O(α·N²) dense segment — pickling N·k floats per function is already
    sublinear in the dense footprint, which is the point of the sparse
    path; densification happens worker-side with the shared scatter
    kernel, so the fitted block is bitwise the one serial mode sees.
    """
    block = densify_topk_rows(data, indices, fill, n_examples)
    return fit_base_function(block, config, function_index, init=init)


class InferenceEngine:
    """Fits the hierarchical model with staged, cache-aware execution.

    Parameters:
        config: hierarchical-model hyper-parameters (the engine derives
            the exact same seed streams as
            :class:`~repro.core.inference.hierarchical.HierarchicalModel`,
            so results match the monolithic path bit-for-bit).
        executor: ``"serial"``, ``"thread"`` (GIL-releasing EM inner
            loops fan out over a thread pool), ``"process"``
            (ProcessPoolExecutor + shared-memory affinity blocks) or
            ``"distributed"`` (base-fit shards leased to
            coordinator/worker cluster processes, possibly on other
            machines).  Value-neutral: identical posteriors in every
            mode.
        n_jobs: worker count for the thread/process executors (and the
            local worker count a self-created distributed session
            defaults to).
        cache: optional artifact cache; fitted parameters and the
            posterior are persisted next to the corpus state, so a
            fresh process can restore the warm-start state from disk.
        coordinator: distributed session to run base-fit shards on
            (shared with the affinity engine when driven by
            ``Goggles``).  When ``None`` and ``executor="distributed"``
            a session is created lazily from ``broker``/``n_workers``.
        broker / n_workers: the distributed knobs a self-created
            session uses — broker address to bind and local workers to
            spawn (see :meth:`repro.distributed.Coordinator.for_engine`).
    """

    def __init__(
        self,
        config: HierarchicalConfig | None = None,
        *,
        executor: str = "thread",
        n_jobs: int = 1,
        cache: ArtifactCache | None = None,
        coordinator: "object | None" = None,
        broker: str | None = None,
        n_workers: int = 0,
    ):
        self.config = config or HierarchicalConfig()
        if self.config.n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {self.config.n_classes}")
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        if n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        if n_workers < 0:
            raise ValueError(f"n_workers must be >= 0, got {n_workers}")
        self.executor = executor
        self.n_jobs = n_jobs
        self.cache = cache
        self.broker = broker
        self.n_workers = n_workers
        # Duck-typed warm-pool unwrap: a WorkerPool exposes the shared
        # persistent Coordinator through as_coordinator().
        unwrap = getattr(coordinator, "as_coordinator", None)
        self._coordinator = unwrap() if callable(unwrap) else coordinator
        self._owns_coordinator = False
        self._state: InferenceState | None = None

    # ------------------------------------------------------------------
    # Distributed session plumbing
    # ------------------------------------------------------------------
    def _get_coordinator(self):
        """The distributed session (lazily self-created when not injected)."""
        if self._coordinator is None:
            from repro.distributed import Coordinator

            self._coordinator = Coordinator.for_engine(
                broker=self.broker,
                n_workers=self.n_workers,
                n_jobs=self.n_jobs,
                cache=self.cache,
            )
            self._owns_coordinator = True
        return self._coordinator

    def close(self) -> None:
        """Shut down a self-created distributed session (no-op otherwise)."""
        if self._owns_coordinator and self._coordinator is not None:
            self._coordinator.close()
            self._coordinator = None
            self._owns_coordinator = False

    # ------------------------------------------------------------------
    # State & keys
    # ------------------------------------------------------------------
    @property
    def state(self) -> InferenceState | None:
        """The warm-start state of the last fit (or cache restore), if any."""
        return self._state

    def _params(self, warm: InferenceState | None) -> dict[str, object]:
        # Every value-affecting input: the full hyper-parameter set and,
        # for warm starts, the content of the initialisation (a warm fit
        # may settle in a slightly different optimum than a cold one, so
        # the two must never share a key).  The executor is deliberately
        # excluded: it cannot change values.
        params: dict[str, object] = {"stage": "inference", **asdict(self.config)}
        if warm is not None:
            params["warm"] = hash_arrays(warm.label_predictions, warm.ensemble.weights, warm.ensemble.probs)
        return params

    def _key(
        self, affinity: AffinityMatrix | SparseAffinityMatrix, warm: InferenceState | None
    ) -> str | None:
        if self.cache is None:
            return None
        # Duck-typed content address: a SparseAffinityMatrix hashes its
        # CSR arrays (cheap, O(α·N·k)); a dense matrix hashes values.
        content = getattr(affinity, "content_hash", None)
        data_hash = content() if callable(content) else hash_arrays(affinity.values)
        return self.cache.key(data_hash, self._params(warm))

    # ------------------------------------------------------------------
    # Stage 1: base-model fits (serial | thread | process)
    # ------------------------------------------------------------------
    def _fit_base_models(
        self, affinity: AffinityMatrix | SparseAffinityMatrix, inits: list[np.ndarray] | None
    ) -> tuple[np.ndarray, tuple[GMMFitResult, ...]]:
        """Stage 1 with executor dispatch; returns (LP, per-function fits).

        Serial/thread delegate to the shared
        :func:`~repro.core.inference.hierarchical.fit_all_base_functions`;
        only the process and distributed branches live here.  Every
        branch consumes the affinity through ``block(f)`` only, so a
        sparse matrix flows through serial/thread/distributed unchanged;
        the process branch ships CSR arrays instead of a dense
        shared-memory segment when the matrix is sparse.
        """
        if self.executor == "distributed":
            results = self._get_coordinator().fit_base_models(affinity, self.config, inits)
            warn_if_reinitialized(results)
            label_predictions = np.concatenate([r.responsibilities for r in results], axis=1)
            return label_predictions, results
        if self.executor == "process" and self.n_jobs > 1 and affinity.n_functions > 1:
            if isinstance(affinity, SparseAffinityMatrix):
                results = self._fit_base_models_process_sparse(affinity, inits)
            else:
                results = self._fit_base_models_process(affinity, inits)
            warn_if_reinitialized(results)
            label_predictions = np.concatenate([r.responsibilities for r in results], axis=1)
            return label_predictions, results
        n_jobs = 1 if self.executor == "serial" else self.n_jobs
        return fit_all_base_functions(affinity, self.config, n_jobs=n_jobs, initializers=inits)

    def _fit_base_models_process(
        self, affinity: AffinityMatrix, inits: list[np.ndarray] | None
    ) -> tuple[GMMFitResult, ...]:
        """Fan the base fits out over processes, affinity via shared memory.

        Only the (small) warm-start responsibilities and fit results
        cross the process boundary by pickling; the O(α·N²) affinity
        values are written once into a POSIX shared-memory segment that
        every worker maps read-only.
        """
        values = np.ascontiguousarray(affinity.values)
        alpha = affinity.n_functions
        shm = shared_memory.SharedMemory(create=True, size=values.nbytes)
        try:
            staging = np.ndarray(values.shape, dtype=values.dtype, buffer=shm.buf)
            staging[:] = values
            with ProcessPoolExecutor(max_workers=min(self.n_jobs, alpha)) as pool:
                futures = [
                    pool.submit(
                        _fit_block_from_shm,
                        shm.name,
                        values.shape,
                        str(values.dtype),
                        f,
                        self.config,
                        inits[f] if inits is not None else None,
                    )
                    for f in range(alpha)
                ]
                return tuple(future.result() for future in futures)
        finally:
            shm.close()
            shm.unlink()

    def _fit_base_models_process_sparse(
        self, affinity: SparseAffinityMatrix, inits: list[np.ndarray] | None
    ) -> tuple[GMMFitResult, ...]:
        """Process fan-out over sparse blocks: per-function CSR pickling.

        No shared-memory staging — each submission carries only that
        function's (N, k) CSR arrays, sublinear in the dense footprint.
        """
        n = affinity.n_examples
        with ProcessPoolExecutor(max_workers=min(self.n_jobs, affinity.n_functions)) as pool:
            futures = [
                pool.submit(
                    _fit_block_from_csr,
                    *affinity.csr_block(f),
                    n,
                    f,
                    self.config,
                    inits[f] if inits is not None else None,
                )
                for f in range(affinity.n_functions)
            ]
            return tuple(future.result() for future in futures)

    # ------------------------------------------------------------------
    # Full fit
    # ------------------------------------------------------------------
    def fit(
        self,
        affinity: AffinityMatrix | SparseAffinityMatrix,
        warm_start: InferenceState | None = None,
    ) -> HierarchicalResult:
        """Run the staged hierarchy: base fits → one-hot → ensemble.

        ``warm_start`` resumes EM from a previous fit's state (silently
        ignored when incompatible — different K, α, or a shrunk corpus).
        Cache-aware: an identical (affinity, config, warm-start) triple
        is a disk load that also restores the warm-start state.
        """
        with span("inference.fit"):
            return self._fit(affinity, warm_start)

    def _fit(
        self,
        affinity: AffinityMatrix | SparseAffinityMatrix,
        warm_start: InferenceState | None,
    ) -> HierarchicalResult:
        cfg = self.config
        if warm_start is not None and not warm_start.compatible_with(affinity, cfg.n_classes):
            warm_start = None
        key = self._key(affinity, warm_start)
        if key is not None:
            cached = self._load_cached(key, affinity)
            if cached is not None:
                return cached

        inits = warm_start_responsibilities(warm_start, affinity) if warm_start else None
        label_predictions, base_results = self._fit_base_models(affinity, inits)
        result = complete_hierarchy(
            label_predictions,
            base_results,
            cfg,
            ensemble_init=warm_start.ensemble if warm_start else None,
        )
        assert result.ensemble_result.params is not None
        self._state = InferenceState(
            label_predictions=label_predictions,
            ensemble=result.ensemble_result.params,
            n_examples=affinity.n_examples,
            n_classes=cfg.n_classes,
        )
        if key is not None:
            self._save_cached(key, result)
        return result

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    _SCHEMA = (
        "posterior",
        "label_predictions",
        "ens_weights",
        "ens_probs",
        "base_ll",
        "base_iters",
        "base_converged",
        "base_reinit",
        "base_degenerate",
        "ens_ll",
        "ens_iters",
        "ens_converged",
        "n_classes",
    )

    def _save_cached(self, key: str, result: HierarchicalResult) -> None:
        assert self.cache is not None
        base = result.base_results
        arrays = {
            "posterior": result.posterior,
            "label_predictions": result.label_predictions,
            "ens_weights": result.ensemble_result.params.weights,
            "ens_probs": result.ensemble_result.params.probs,
            "base_ll": np.array([r.log_likelihood for r in base]),
            "base_iters": np.array([r.n_iterations for r in base], dtype=np.int64),
            "base_converged": np.array([r.converged for r in base], dtype=bool),
            "base_reinit": np.array([r.reinitialized for r in base], dtype=bool),
            "base_degenerate": np.array([r.degenerate for r in base], dtype=bool),
            "ens_ll": np.float64(result.ensemble_result.log_likelihood),
            "ens_iters": np.int64(result.ensemble_result.n_iterations),
            "ens_converged": np.bool_(result.ensemble_result.converged),
            "n_classes": np.int64(self.config.n_classes),
        }
        self.cache.save_arrays("inference", key, arrays)

    def _load_cached(self, key: str, affinity: AffinityMatrix) -> HierarchicalResult | None:
        assert self.cache is not None
        stored = self.cache.load_arrays("inference", key)
        if stored is None:
            return None
        if any(name not in stored for name in self._SCHEMA):
            # Readable zip, wrong schema (drift or a foreign file in a
            # shared cache dir): evict and refit rather than crash.
            self.cache.evict("inference", key)
            return None
        k = int(stored["n_classes"])
        label_predictions = stored["label_predictions"]
        if k != self.config.n_classes or label_predictions.shape != (
            affinity.n_examples,
            affinity.n_functions * k,
        ):
            self.cache.evict("inference", key)
            return None
        base_results = tuple(
            GMMFitResult(
                responsibilities=label_predictions[:, f * k : (f + 1) * k],
                log_likelihood=float(stored["base_ll"][f]),
                n_iterations=int(stored["base_iters"][f]),
                converged=bool(stored["base_converged"][f]),
                degenerate=bool(stored["base_degenerate"][f]),
                reinitialized=bool(stored["base_reinit"][f]),
            )
            for f in range(affinity.n_functions)
        )
        # A cached replay keeps its diagnostics: collapsed base fits
        # warn exactly as the original fit did.
        warn_if_reinitialized(base_results)
        ensemble_params = BernoulliParams(weights=stored["ens_weights"], probs=stored["ens_probs"])
        ensemble_result = BernoulliFitResult(
            responsibilities=stored["posterior"],
            log_likelihood=float(stored["ens_ll"]),
            n_iterations=int(stored["ens_iters"]),
            converged=bool(stored["ens_converged"]),
            params=ensemble_params,
        )
        self._state = InferenceState(
            label_predictions=label_predictions,
            ensemble=ensemble_params,
            n_examples=affinity.n_examples,
            n_classes=k,
        )
        return HierarchicalResult(
            posterior=stored["posterior"],
            label_predictions=label_predictions,
            one_hot=one_hot_encode_lp(label_predictions, k),
            base_results=base_results,
            ensemble_result=ensemble_result,
        )
