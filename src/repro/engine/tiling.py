"""Stage 2 of the affinity engine: tiled affinity construction.

The legacy :func:`repro.core.affinity._layer_affinity_blocks` walks the
corpus image-by-image in Python, scoring *all* ``N·Z`` padded prototype
rows against each image.  Two observations make a faster, exactly
equivalent kernel possible:

1. **Prototype de-duplication.**  ``PrototypeSet.padded_vectors`` pads
   to Z rows by *cycling* the unique prototypes, so rank ``r >= u_j``
   of image j is a bitwise copy of rank ``r % u_j``.  Scoring only the
   unique rows and replicating the results afterwards removes 30–60 %
   of the similarity work (deeper layers have as few as 4 candidate
   locations) without changing a single output bit.

2. **Tiling.**  The similarity computation decomposes into independent
   (row-tile of images × column-tile of prototype rows) blocks.  Tiles
   keep the ``(U_tile, P)`` similarity scratch inside the CPU cache and
   are embarrassingly parallel, so they fan out over a thread pool
   (the matmul/max inner ops are BLAS/numpy-bound and release the GIL).

The kernel optionally computes in float32 (``dtype=np.float32``):
outputs are cast back to float64 and agree with the float64 path to
~1e-6, well inside ``np.allclose`` tolerance, at roughly half the
memory traffic — the right trade for throughput-oriented deployments.
"""

from __future__ import annotations

from concurrent.futures import Executor, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.affinity import (
    AffinityFunctionId,
    AffinityMatrix,
    SparseAffinityMatrix,
    _EPS,
)

__all__ = [
    "tile_executor",
    "tile_bounds",
    "LayerPrototypes",
    "unit_location_vectors",
    "unique_unit_prototypes",
    "best_similarities",
    "assemble_blocks",
    "tiled_layer_affinity_blocks",
    "tiled_affinity_matrix",
    "topk_block",
    "sparsify_affinity",
]


@contextmanager
def tile_executor(n_jobs: int) -> Iterator[Executor | None]:
    """The thread pool for tile fan-out: a pool for ``n_jobs > 1``,
    ``None`` (serial execution) otherwise."""
    if n_jobs > 1:
        with ThreadPoolExecutor(max_workers=n_jobs) as pool:
            yield pool
    else:
        yield None


@dataclass(frozen=True)
class LayerPrototypes:
    """Unique unit prototypes of one layer for a whole corpus.

    Attributes:
        vectors: ``(U, C)`` L2-normalised unique prototype vectors, the
            per-image unique sets concatenated in corpus order.
        rank_rows: ``(N, Z)`` row index into ``vectors`` answering "which
            unique row realises rank z of image j" (the padding cycle).
    """

    vectors: np.ndarray
    rank_rows: np.ndarray

    @property
    def n_rows(self) -> int:
        return int(self.vectors.shape[0])

    @property
    def n_images(self) -> int:
        return int(self.rank_rows.shape[0])

    @property
    def top_z(self) -> int:
        return int(self.rank_rows.shape[1])

    def shifted(self, row_offset: int) -> "LayerPrototypes":
        """The same prototypes addressed inside a larger stacked table."""
        return LayerPrototypes(vectors=self.vectors, rank_rows=self.rank_rows + row_offset)


def unit_location_vectors(filter_maps: np.ndarray) -> np.ndarray:
    """L2-normalised location vectors of a layer: ``(N, C, H, W)`` -> ``(N, C, P)``."""
    n, c, h, w = filter_maps.shape
    vectors = filter_maps.reshape(n, c, h * w)
    norms = np.maximum(np.linalg.norm(vectors, axis=1, keepdims=True), _EPS)
    return vectors / norms


def unique_unit_prototypes(filter_maps: np.ndarray, z: int) -> LayerPrototypes:
    """Unique unit prototypes of every image plus the rank→row map.

    Matches :func:`repro.core.prototypes.select_top_z` exactly — same
    channel ranking (activation descending, channel ascending on ties),
    same argmax locations, same first-seen de-duplication — but ranks
    channels and finds argmax locations for the whole batch in one
    vectorised pass.  Normalising a vector and its padded copies yields
    identical rows, so the cycle map ``rank_rows[j, r] = offset_j +
    r % u_j`` reproduces exactly the ``padded_vectors`` layout.
    """
    if z < 1:
        raise ValueError(f"z must be >= 1, got {z}")
    n, c, h, w = filter_maps.shape
    flat = filter_maps.reshape(n, c, h * w)
    # Stable ranking per image: activation descending, channel ascending
    # on ties (argsort of the negated maxima with a stable kind).
    channel_activation = flat.max(axis=2)
    ranked = np.argsort(-channel_activation, axis=1, kind="stable")[:, : min(z, c)]
    locations = flat.argmax(axis=2)  # (N, C) flat argmax per channel
    vectors: list[np.ndarray] = []
    rank_rows = np.empty((n, z), dtype=np.int64)
    offset = 0
    for j in range(n):
        seen: set[int] = set()
        keep: list[int] = []
        image_locations = locations[j]
        for channel in ranked[j]:
            location = image_locations[channel]
            if location not in seen:
                seen.add(location)
                keep.append(location)
        unique = flat[j, :, keep]  # (U, C): the full channel vector per location
        norms = np.maximum(np.linalg.norm(unique, axis=1, keepdims=True), _EPS)
        vectors.append(unique / norms)
        rank_rows[j] = offset + np.arange(z) % len(keep)
        offset += len(keep)
    return LayerPrototypes(vectors=np.concatenate(vectors, axis=0), rank_rows=rank_rows)


def tile_bounds(n: int, tile: int | None) -> list[tuple[int, int]]:
    """The ``[start, end)`` bounds of one tiling axis.

    Public because the distributed shard planner must cut the (images ×
    prototype-rows) grid at *exactly* the serial tile boundaries — each
    shard then runs the same-shaped BLAS calls as the serial kernel, so
    the merged matrix is bit-identical to a single-machine build.
    """
    if tile is None or tile >= n:
        return [(0, n)]
    if tile < 1:
        raise ValueError(f"tile size must be >= 1, got {tile}")
    return [(start, min(start + tile, n)) for start in range(0, n, tile)]


def best_similarities(
    prototypes: np.ndarray,
    unit_vectors: np.ndarray,
    *,
    row_tile: int | None = 32,
    col_tile: int | None = None,
    executor: Executor | None = None,
    dtype: np.dtype | type = np.float64,
    out_dtype: np.dtype | type | None = None,
) -> np.ndarray:
    """``B[r, i] = max_p <prototypes[r], unit_vectors[i, :, p]>`` (Eq. 2).

    The (image-tile × prototype-tile) grid is fanned out over
    ``executor`` when given; each task scores one block with per-image
    matmuls (the cache-optimal blocking for the small channel counts of
    a width-scaled VGG).

    ``out_dtype`` controls the dtype of the returned table; ``None``
    keeps the historical float64 output (bit-compatible with every
    dense consumer, even when computing in float32).  The sparse path
    passes ``out_dtype=np.float32`` so similarity values stay float32
    end-to-end instead of being cast back.
    """
    dtype = np.dtype(dtype)
    protos = prototypes.astype(dtype, copy=False)
    vectors = unit_vectors.astype(dtype, copy=False)
    n_rows, n_images = protos.shape[0], vectors.shape[0]
    out = np.empty((n_rows, n_images), dtype=np.float64 if out_dtype is None else np.dtype(out_dtype))

    def score_block(bounds: tuple[tuple[int, int], tuple[int, int]]) -> None:
        (i0, i1), (j0, j1) = bounds
        block = protos[j0:j1]
        for i in range(i0, i1):
            out[j0:j1, i] = (block @ vectors[i]).max(axis=1)

    tasks = [
        (rows, cols)
        for rows in tile_bounds(n_images, row_tile)
        for cols in tile_bounds(n_rows, col_tile)
    ]
    if executor is not None and len(tasks) > 1:
        list(executor.map(score_block, tasks))
    else:
        for task in tasks:
            score_block(task)
    return out


def assemble_blocks(best: np.ndarray, rank_rows: np.ndarray) -> np.ndarray:
    """Expand a unique-row similarity table into the ``(Z, N_i, N_j)`` blocks.

    ``out[z, i, j] = best[rank_rows[j, z], i]`` — pure replication, the
    inverse of the de-duplication step.
    """
    return best[rank_rows.T].transpose(0, 2, 1)


def tiled_layer_affinity_blocks(
    filter_maps: np.ndarray,
    z: int,
    *,
    row_tile: int | None = 32,
    col_tile: int | None = None,
    executor: Executor | None = None,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """Drop-in tiled replacement for the legacy per-image layer kernel."""
    vectors = unit_location_vectors(filter_maps)
    prototypes = unique_unit_prototypes(filter_maps, z)
    best = best_similarities(
        prototypes.vectors,
        vectors,
        row_tile=row_tile,
        col_tile=col_tile,
        executor=executor,
        dtype=dtype,
    )
    return assemble_blocks(best, prototypes.rank_rows)


def tiled_affinity_matrix(
    pool_features: dict[int, np.ndarray],
    top_z: int,
    layers: tuple[int, ...],
    *,
    row_tile: int | None = 32,
    col_tile: int | None = None,
    n_jobs: int = 1,
    dtype: np.dtype | type = np.float64,
) -> AffinityMatrix:
    """Affinity matrix from precomputed pool features, tile-parallel.

    Produces the paper's exact column layout (α = len(layers)·top_z
    blocks of N columns each, layer-major then rank).
    """
    if not layers:
        raise ValueError("need at least one layer")
    if top_z < 1:
        raise ValueError(f"top_z must be >= 1, got {top_z}")
    blocks: list[np.ndarray] = []
    ids: list[AffinityFunctionId] = []
    with tile_executor(n_jobs) as pool:
        for layer in layers:
            layer_blocks = tiled_layer_affinity_blocks(
                pool_features[layer],
                top_z,
                row_tile=row_tile,
                col_tile=col_tile,
                executor=pool,
                dtype=dtype,
            )
            for rank in range(top_z):
                blocks.append(layer_blocks[rank])
                ids.append(AffinityFunctionId(layer=layer, z=rank))
    return AffinityMatrix(values=np.concatenate(blocks, axis=1), function_ids=tuple(ids))


# ----------------------------------------------------------------------
# Blocked top-k sparsification (the exact kernel of the sparse path)
# ----------------------------------------------------------------------
def topk_block(
    block: np.ndarray, k: int, *, row_tile: int | None = 32
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact per-row top-k of one affinity block, row-tile blocked.

    Returns ``(data, indices, fill)``: the ``min(k, C)`` largest values
    of every row (column-ascending, CSR discipline), their column ids,
    and the per-row mean of the dropped entries.  Deterministic under
    ties — the stable sort keeps the lowest column index — so sparse
    matrices are content-addressable like everything else the engine
    produces.  ``row_tile`` bounds the argsort scratch to one tile of
    rows (the same tiling axis the similarity kernel uses); results are
    identical at any tile size.  ``data``/``fill`` keep the block's
    dtype, so a float32 block stays float32.
    """
    block = np.asarray(block)
    if block.ndim != 2:
        raise ValueError(f"block must be 2-D, got shape {block.shape}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n_rows, n_cols = block.shape
    kept = min(k, n_cols)
    data = np.empty((n_rows, kept), dtype=block.dtype)
    indices = np.empty((n_rows, kept), dtype=np.int64)
    fill = np.zeros(n_rows, dtype=block.dtype)
    for r0, r1 in tile_bounds(n_rows, row_tile):
        tile = block[r0:r1]
        # Stable argsort of the negated tile: value descending, column
        # ascending on ties — then re-sorted ascending for CSR layout.
        order = np.argsort(-tile, axis=1, kind="stable")[:, :kept]
        order.sort(axis=1)
        kept_values = np.take_along_axis(tile, order, axis=1)
        data[r0:r1] = kept_values
        indices[r0:r1] = order
        if kept < n_cols:
            # Mean of the dropped tail (float64 accumulation, stored in
            # the block dtype): densified rows keep their overall mass.
            dropped = tile.sum(axis=1, dtype=np.float64) - kept_values.sum(axis=1, dtype=np.float64)
            fill[r0:r1] = (dropped / (n_cols - kept)).astype(block.dtype)
    return data, indices, fill


def sparsify_affinity(
    matrix: AffinityMatrix,
    top_k: int,
    *,
    dtype: np.dtype | type | None = None,
    row_tile: int | None = 32,
) -> SparseAffinityMatrix:
    """Top-k sparsification of a dense affinity matrix, block by block.

    Convenience wrapper over :func:`topk_block` for sources that only
    produce a full dense matrix; the staged engine's sparse build path
    instead sparsifies blocks as they stream out of the similarity
    stage, never holding the dense matrix (see
    ``AffinityEngine._build_sparse``).  ``dtype`` converts the stored
    values (float32 on the default sparse path); selection happens on
    the converted block so the kept entries are exactly the ones a
    float32-end-to-end build would keep.
    """
    target = np.dtype(dtype) if dtype is not None else matrix.values.dtype
    n = matrix.n_examples
    kept = min(top_k, n)
    alpha = matrix.n_functions
    data = np.empty((alpha, n, kept), dtype=target)
    indices = np.empty((alpha, n, kept), dtype=np.int64)
    fill = np.empty((alpha, n), dtype=target)
    for f in range(alpha):
        block = matrix.block(f).astype(target, copy=False)
        data[f], indices[f], fill[f] = topk_block(block, top_k, row_tile=row_tile)
    return SparseAffinityMatrix(data=data, indices=indices, fill=fill, function_ids=matrix.function_ids)
