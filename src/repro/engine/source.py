"""Interchangeable affinity backends (the ``AffinitySource`` protocol).

The paper's core signal is VGG prototype affinity, but §5.1.5 ablates
the representation (HOG descriptors, VGG logits) through the *same*
class-inference module.  The engine therefore talks to an abstract
source:

* :class:`PrototypeAffinitySource` — the paper's §3 pipeline (chunked
  VGG pool extraction → tiled prototype affinity), incremental-capable.
* :class:`FeatureCosineSource` — any flat feature extractor compared
  with pair-wise cosine (α = 1), incremental-capable because the state
  is just the feature table.
* :func:`hog_source` / :func:`logits_source` — the two ablation
  backends of §5.1.5 as ready-made sources.

A source produces bit-identical matrices regardless of ``batch_size``
/ tile sizes / ``n_jobs``; only ``dtype`` (precision) may change
values, which is why the engine folds precision — and nothing else
about the runtime — into cache keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.core.affinity import (
    AffinityFunctionId,
    AffinityMatrix,
    affinity_from_features,
    cosine_similarity,
)
from repro.engine.features import extract_pool_features, iter_batches
from repro.engine.tiling import (
    LayerPrototypes,
    assemble_blocks,
    best_similarities,
    tile_executor,
    unique_unit_prototypes,
    unit_location_vectors,
)
from repro.nn.vgg import VGG16
from repro.utils.validation import check_images

__all__ = [
    "EngineRuntime",
    "CorpusState",
    "AffinitySource",
    "IncrementalAffinitySource",
    "PrototypeAffinitySource",
    "FeatureCosineSource",
    "hog_source",
    "logits_source",
]


@dataclass(frozen=True)
class EngineRuntime:
    """Execution knobs handed from the engine to a source.

    None of these change output values except ``dtype``.
    ``coordinator`` (a :class:`repro.distributed.Coordinator`, when the
    engine runs with ``executor="distributed"``) reroutes the feature
    extraction and similarity stages to the shard cluster; it is
    value-neutral because extraction shards are cut at the serial
    chunked-batch boundaries, similarity shards at the serial tile
    boundaries, and both merge back bit-identically.
    """

    batch_size: int | None = 32
    row_tile: int | None = 32
    col_tile: int | None = None
    n_jobs: int = 1
    dtype: type = np.float64
    coordinator: object | None = None
    # Storage dtype of the similarity *output* (None = historical
    # float64, whatever the compute dtype).  The sparse path sets this
    # to float32 so blocks are stored at half width end-to-end; compute
    # precision is still governed by ``dtype``.
    out_dtype: type | None = None

    @property
    def local_jobs(self) -> int:
        """Thread-pool width for local tile fan-out: 1 (no pool) when a
        coordinator handles the similarity stage instead."""
        return 1 if self.coordinator is not None else self.n_jobs

    def pool_features(
        self, model: VGG16, images: np.ndarray, layers: tuple[int, ...]
    ) -> dict[int, np.ndarray]:
        """Stage-1 extraction under this runtime: chunked local forward
        passes, or ``"extraction"`` shards leased to the distributed
        cluster (workers rebuild the deterministic backbone from
        ``model.config``, so only image chunks travel).

        Under ``dtype=float32`` the batch is cast up front so the whole
        backbone forward runs at half width (``check_images`` preserves
        float32 and the layers follow the activation dtype).  Shard
        payloads carry the cast batch, so distributed extraction runs
        the same float32 forward as a local one."""
        if np.dtype(self.dtype) == np.float32:
            images = images.astype(np.float32, copy=False)
        if self.coordinator is not None:
            return self.coordinator.extract_pool_features(
                model.config, images, layers=layers, batch_size=self.batch_size
            )
        return extract_pool_features(model, images, layers=layers, batch_size=self.batch_size)

    def similarities(self, prototypes: np.ndarray, vectors: np.ndarray, pool) -> np.ndarray:
        """``best_similarities`` under this runtime: local tiles fanned
        over ``pool``, or shard tasks leased to the distributed cluster."""
        if self.coordinator is not None:
            best = self.coordinator.best_similarities(
                prototypes,
                vectors,
                row_tile=self.row_tile,
                col_tile=self.col_tile,
                dtype=self.dtype,
            )
            if self.out_dtype is not None:
                best = best.astype(self.out_dtype, copy=False)
            return best
        return best_similarities(
            prototypes,
            vectors,
            row_tile=self.row_tile,
            col_tile=self.col_tile,
            executor=pool,
            dtype=self.dtype,
            out_dtype=self.out_dtype,
        )


@dataclass(frozen=True)
class CorpusState:
    """Everything a source needs to extend a built corpus incrementally.

    Attributes:
        affinity: the corpus affinity matrix built so far.
        n_images: corpus size N.
        arrays: backend-specific reusable artifacts (npz-serialisable
            flat ``{name: array}`` mapping so the engine can persist
            state in the artifact cache).
    """

    affinity: AffinityMatrix
    n_images: int
    arrays: dict[str, np.ndarray]


class AffinitySource(Protocol):
    """An interchangeable affinity-matrix backend."""

    name: str

    def signature(self) -> dict[str, object]:
        """Value-affecting parameters, folded into cache keys."""
        ...

    def build(self, images: np.ndarray, runtime: EngineRuntime) -> AffinityMatrix:
        """Build the full affinity matrix for a corpus."""
        ...


@runtime_checkable
class IncrementalAffinitySource(Protocol):
    """A source that can also extend an existing corpus row/column-wise."""

    name: str

    def signature(self) -> dict[str, object]: ...

    def build(self, images: np.ndarray, runtime: EngineRuntime) -> AffinityMatrix: ...

    def build_state(self, images: np.ndarray, runtime: EngineRuntime) -> CorpusState: ...

    def extend_state(
        self, state: CorpusState, new_images: np.ndarray, runtime: EngineRuntime
    ) -> CorpusState: ...


# ----------------------------------------------------------------------
# VGG prototype affinity (the paper's §3 pipeline)
# ----------------------------------------------------------------------
class PrototypeAffinitySource:
    """Staged VGG prototype affinity: extract → prototype → tile.

    The incremental state keeps, per layer, the corpus' unit location
    vectors and unique unit prototypes, so adding M images costs only
    the new rows (new images × all prototypes) and the new column
    blocks (all images × new prototypes) — the N×N old-old quadrant of
    every block is copied from the previous matrix.
    """

    def __init__(self, model: VGG16, top_z: int = 10, layers: tuple[int, ...] | None = None):
        self.model = model
        self.top_z = int(top_z)
        self.layers = tuple(layers) if layers is not None else tuple(range(model.N_POOL_LAYERS))
        if self.top_z < 1:
            raise ValueError(f"top_z must be >= 1, got {top_z}")
        if not self.layers:
            raise ValueError("need at least one layer")
        self.name = "vgg-prototypes"

    def signature(self) -> dict[str, object]:
        return {
            "source": self.name,
            "vgg": repr(self.model.config),
            "top_z": self.top_z,
            "layers": self.layers,
        }

    def build(self, images: np.ndarray, runtime: EngineRuntime) -> AffinityMatrix:
        # Same work as build_state (the state arrays are intermediates
        # of the tiled computation either way); the state is simply not
        # retained by the caller.
        return self.build_state(images, runtime).affinity

    # -- incremental ----------------------------------------------------
    def _layer_state(
        self, images: np.ndarray, runtime: EngineRuntime
    ) -> dict[int, tuple[np.ndarray, LayerPrototypes]]:
        pools = runtime.pool_features(self.model, images, self.layers)
        return {
            layer: (unit_location_vectors(pools[layer]), unique_unit_prototypes(pools[layer], self.top_z))
            for layer in self.layers
        }

    def build_state(self, images: np.ndarray, runtime: EngineRuntime) -> CorpusState:
        images = check_images(images)
        per_layer = self._layer_state(images, runtime)
        blocks: list[np.ndarray] = []
        arrays: dict[str, np.ndarray] = {}
        with tile_executor(runtime.local_jobs) as pool:
            for layer in self.layers:
                vectors, prototypes = per_layer[layer]
                best = runtime.similarities(prototypes.vectors, vectors, pool)
                blocks.extend(assemble_blocks(best, prototypes.rank_rows))
                arrays[f"uv_{layer}"] = vectors
                arrays[f"proto_{layer}"] = prototypes.vectors
                arrays[f"rank_{layer}"] = prototypes.rank_rows
        ids = tuple(
            AffinityFunctionId(layer=layer, z=rank)
            for layer in self.layers
            for rank in range(self.top_z)
        )
        matrix = AffinityMatrix(values=np.concatenate(blocks, axis=1), function_ids=ids)
        return CorpusState(affinity=matrix, n_images=images.shape[0], arrays=arrays)

    def iter_function_blocks(self, images: np.ndarray, runtime: EngineRuntime):
        """Stream ``(function_id, dense N×N block)`` pairs, one layer at
        a time, in the same function order :meth:`build` concatenates.

        The sparse build path consumes this instead of :meth:`build`:
        only one layer's Z blocks are dense at any moment, so peak
        memory is O(Z·N²) instead of the full matrix's O(α·N²) — which
        is the point of building sparse in the first place.  Each
        block's values are bit-identical to the corresponding
        ``build()`` block under the same runtime.
        """
        images = check_images(images)
        pools = runtime.pool_features(self.model, images, self.layers)
        with tile_executor(runtime.local_jobs) as pool:
            for layer in self.layers:
                filter_maps = pools.pop(layer)  # free each layer as it is consumed
                vectors = unit_location_vectors(filter_maps)
                prototypes = unique_unit_prototypes(filter_maps, self.top_z)
                del filter_maps
                best = runtime.similarities(prototypes.vectors, vectors, pool)
                layer_blocks = assemble_blocks(best, prototypes.rank_rows)
                del best, vectors
                for rank in range(self.top_z):
                    yield AffinityFunctionId(layer=layer, z=rank), layer_blocks[rank]

    def _check_state_alpha(self, state: CorpusState) -> None:
        expected_alpha = len(self.layers) * self.top_z
        if state.affinity.n_functions != expected_alpha:
            raise ValueError(
                f"corpus state has {state.affinity.n_functions} affinity functions, "
                f"source produces {expected_alpha}"
            )

    def extend_rows(
        self, state: CorpusState, new_images: np.ndarray, runtime: EngineRuntime
    ) -> list[np.ndarray]:
        """Affinity rows of ``new_images`` against the *frozen* corpus only.

        Returns one ``(M, N)`` block per affinity function, in function
        order — exactly the ``[n:, :n]`` quadrant :meth:`extend_state`
        would produce, bit-identically, but computing *only* it: no new
        prototypes are extracted from the arrivals, no (old images ×
        new prototypes) columns, no (N+M)² assembly.  This is the
        online serving loop's hot path (``OnlineSession.absorb``),
        where the corpus is deliberately not extended.
        """
        new_images = check_images(new_images)
        self._check_state_alpha(state)
        pools = runtime.pool_features(self.model, new_images, self.layers)
        rows: list[np.ndarray] = []
        with tile_executor(runtime.local_jobs) as pool:
            for layer in self.layers:
                old_protos = LayerPrototypes(
                    vectors=state.arrays[f"proto_{layer}"],
                    rank_rows=state.arrays[f"rank_{layer}"],
                )
                new_vectors = unit_location_vectors(pools[layer])
                best_old_new = runtime.similarities(old_protos.vectors, new_vectors, pool)
                rows.extend(assemble_blocks(best_old_new, old_protos.rank_rows))
        return rows

    def extend_state(self, state: CorpusState, new_images: np.ndarray, runtime: EngineRuntime) -> CorpusState:
        new_images = check_images(new_images)
        n, m = state.n_images, new_images.shape[0]
        self._check_state_alpha(state)
        per_layer_new = self._layer_state(new_images, runtime)
        blocks: list[np.ndarray] = []
        arrays: dict[str, np.ndarray] = {}
        with tile_executor(runtime.local_jobs) as pool:
            for layer_pos, layer in enumerate(self.layers):
                old_vectors = state.arrays[f"uv_{layer}"]
                old_protos = LayerPrototypes(
                    vectors=state.arrays[f"proto_{layer}"],
                    rank_rows=state.arrays[f"rank_{layer}"],
                )
                new_vectors, new_protos = per_layer_new[layer]
                all_vectors = np.concatenate([old_vectors, new_vectors], axis=0)
                # Old prototypes × new images: the new rows of old column blocks.
                best_old_new = runtime.similarities(old_protos.vectors, new_vectors, pool)
                rows_old_cols = assemble_blocks(best_old_new, old_protos.rank_rows)  # (Z, M, N)
                # New prototypes × all images: the entirely new column blocks.
                best_new_all = runtime.similarities(new_protos.vectors, all_vectors, pool)
                new_cols = assemble_blocks(best_new_all, new_protos.rank_rows)  # (Z, N+M, M)
                for rank in range(self.top_z):
                    old_block = state.affinity.block(layer_pos * self.top_z + rank)
                    block = np.empty((n + m, n + m))
                    block[:n, :n] = old_block
                    block[n:, :n] = rows_old_cols[rank]
                    block[:, n:] = new_cols[rank]
                    blocks.append(block)
                arrays[f"uv_{layer}"] = all_vectors
                arrays[f"proto_{layer}"] = np.concatenate([old_protos.vectors, new_protos.vectors], axis=0)
                arrays[f"rank_{layer}"] = np.concatenate(
                    [old_protos.rank_rows, new_protos.shifted(old_protos.n_rows).rank_rows], axis=0
                )
        matrix = AffinityMatrix(
            values=np.concatenate(blocks, axis=1), function_ids=state.affinity.function_ids
        )
        return CorpusState(affinity=matrix, n_images=n + m, arrays=arrays)


# ----------------------------------------------------------------------
# Flat-feature cosine sources (§5.1.5 ablations and custom backends)
# ----------------------------------------------------------------------
class FeatureCosineSource:
    """α=1 affinity from any flat feature extractor via pairwise cosine.

    ``extractor(images) -> (n, D)`` is applied in ``batch_size`` chunks;
    the incremental state is the feature table itself, so extension
    only runs the extractor on the new images (the cosine grid is cheap
    relative to feature extraction and is recomputed exactly).
    """

    def __init__(
        self,
        extractor: Callable[[np.ndarray], np.ndarray],
        name: str,
        params: dict[str, object] | None = None,
    ):
        self.extractor = extractor
        self.name = name
        self.params = dict(params or {})

    def signature(self) -> dict[str, object]:
        return {"source": self.name, **self.params}

    def _features(self, images: np.ndarray, runtime: EngineRuntime) -> np.ndarray:
        images = check_images(images)
        parts = [self.extractor(images[batch]) for batch in iter_batches(images.shape[0], runtime.batch_size)]
        features = parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)
        return np.asarray(features, dtype=np.float64)

    def build(self, images: np.ndarray, runtime: EngineRuntime) -> AffinityMatrix:
        return self.build_state(images, runtime).affinity

    def build_state(self, images: np.ndarray, runtime: EngineRuntime) -> CorpusState:
        features = self._features(images, runtime)
        return CorpusState(
            affinity=affinity_from_features(features),
            n_images=features.shape[0],
            arrays={"features": features},
        )

    def iter_function_blocks(self, images: np.ndarray, runtime: EngineRuntime):
        """Stream the single cosine block (α = 1 for this source)."""
        features = self._features(images, runtime)
        sims = cosine_similarity(features, features)
        if runtime.out_dtype is not None:
            sims = sims.astype(runtime.out_dtype, copy=False)
        yield AffinityFunctionId(layer=-1, z=0), sims

    def extend_rows(
        self, state: CorpusState, new_images: np.ndarray, runtime: EngineRuntime
    ) -> list[np.ndarray]:
        """Cosine rows of the new images against the frozen corpus only."""
        new_features = self._features(new_images, runtime)
        return [cosine_similarity(new_features, state.arrays["features"])]

    def extend_state(self, state: CorpusState, new_images: np.ndarray, runtime: EngineRuntime) -> CorpusState:
        features = np.concatenate([state.arrays["features"], self._features(new_images, runtime)], axis=0)
        return CorpusState(
            affinity=affinity_from_features(features),
            n_images=features.shape[0],
            arrays={"features": features},
        )


def hog_source(config: object | None = None) -> FeatureCosineSource:
    """The HOG-descriptor ablation backend (§5.1.5)."""
    from repro.vision.hog import HOGConfig, hog_batch

    hog_config = config if config is not None else HOGConfig()
    return FeatureCosineSource(
        lambda images: hog_batch(images, hog_config), "hog", {"config": repr(hog_config)}
    )


def logits_source(model: VGG16) -> FeatureCosineSource:
    """The VGG-logits ablation backend (§5.1.5)."""
    return FeatureCosineSource(model.logits, "vgg-logits", {"vgg": repr(model.config)})
