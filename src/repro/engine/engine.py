"""The staged affinity engine: orchestration, caching, incremental runs.

Stage graph (each stage's product is cacheable and reusable)::

    images ──(1) chunked extraction──> pool features
           ──(2) prototypes + tiled similarity──> affinity matrix
           ──(3) artifact cache──> {affinity, corpus state} on disk
    new images ──(4) incremental──> extended matrix (new rows/cols only)

The engine owns the runtime knobs (``batch_size``, tile sizes,
``n_jobs``, precision, ``cache_dir``) and delegates the math to an
:class:`~repro.engine.source.AffinitySource`.  Cache keys cover every
value-affecting input — the image bytes, the source signature, and the
compute precision — so a key hit is always safe to reuse and any other
change is an automatic miss.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.core.affinity import AffinityMatrix, SparseAffinityMatrix
from repro.engine.cache import ArtifactCache, MemmapBlockStore, hash_arrays
from repro.engine.inference import EXECUTORS
from repro.engine.source import (
    AffinitySource,
    CorpusState,
    EngineRuntime,
    IncrementalAffinitySource,
)
from repro.engine.tiling import sparsify_affinity, topk_block
from repro.obs import span
from repro.utils.validation import check_images

__all__ = ["EngineConfig", "AffinityEngine"]

_PRECISIONS = {"float64": np.float64, "float32": np.float32}


@dataclass(frozen=True)
class EngineConfig:
    """Runtime configuration of the affinity engine.

    Attributes:
        batch_size: images per backbone forward pass (memory bound);
            ``None`` runs the whole corpus in one pass.
        row_tile / col_tile: similarity tile sizes over (images ×
            prototype rows); ``None`` disables that tiling axis.
        n_jobs: worker count for tile fan-out (and, downstream,
            base-model fitting).  Values are identical at any width.
        executor: worker model for the similarity stage and the
            downstream base-model fits — ``"serial"``, ``"thread"``
            (GIL-releasing EM loops on a thread pool), ``"process"``
            (ProcessPoolExecutor over shared-memory affinity blocks;
            scales EM past the GIL on many-core boxes) or
            ``"distributed"`` (feature extraction, similarity tiles,
            and base fits shipped as shard tasks leased to
            coordinator/worker cluster processes, possibly on other
            machines).  Value-neutral, like ``n_jobs``.
        precision: ``"float64"`` (bit-compatible with the legacy path)
            or ``"float32"`` (≈2× faster similarity stage, equal to
            within ~1e-6 — inside ``np.allclose`` tolerance).
        cache_dir: artifact cache directory; ``None`` disables caching.
        cache_max_bytes: size budget for the artifact cache; writes
            that push the directory above it evict least-recently-used
            entries.  ``None`` means unbounded.
        broker: ``host:port`` the distributed coordinator binds (port 0
            = ephemeral); ``None`` with ``executor="distributed"``
            means a localhost cluster of ``n_workers or n_jobs``
            auto-spawned workers.
        n_workers: local worker processes the distributed session
            spawns; 0 (with a ``broker``) means workers join externally
            via ``goggles-repro worker``.
        affinity_mode: ``"dense"`` (the bit-identity path, default) or
            ``"sparse"`` — keep only the ``top_k`` largest affinities
            per row per function block (exact blocked top-k; accuracy
            contract "≥ 99% posterior agreement and exact labels vs
            dense", enforced by ``bench_sparse_affinity``).
        top_k: kept entries per row on the sparse path; ``None`` means
            ``ceil(N / 4)``.  Sparse mode only.
        memmap: densify sparse blocks into memory-mapped ``.npy``
            files instead of fresh in-RAM arrays, so N can exceed RAM.
            Sparse mode only.
    """

    batch_size: int | None = 32
    row_tile: int | None = 32
    col_tile: int | None = None
    n_jobs: int = 1
    executor: str = "thread"
    precision: str = "float64"
    cache_dir: str | None = None
    cache_max_bytes: int | None = None
    broker: str | None = None
    n_workers: int = 0
    affinity_mode: str = "dense"
    top_k: int | None = None
    memmap: bool = False

    def __post_init__(self) -> None:
        if self.precision not in _PRECISIONS:
            raise ValueError(f"precision must be one of {sorted(_PRECISIONS)}, got {self.precision!r}")
        if self.executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {self.executor!r}")
        if self.n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {self.n_jobs}")
        if self.n_workers < 0:
            raise ValueError(f"n_workers must be >= 0, got {self.n_workers}")
        if self.affinity_mode not in ("dense", "sparse"):
            raise ValueError(f"affinity_mode must be 'dense' or 'sparse', got {self.affinity_mode!r}")
        if self.top_k is not None and self.top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {self.top_k}")
        if self.affinity_mode != "sparse" and (self.top_k is not None or self.memmap):
            raise ValueError("top_k and memmap require affinity_mode='sparse'")

    @property
    def dtype(self) -> type:
        return _PRECISIONS[self.precision]

    def runtime(self) -> EngineRuntime:
        return EngineRuntime(
            batch_size=self.batch_size,
            row_tile=self.row_tile,
            col_tile=self.col_tile,
            n_jobs=self.n_jobs,
            dtype=self.dtype,
        )


def _unwrap_coordinator(candidate: object) -> object:
    """Coordinator-or-WorkerPool -> the Coordinator inside.

    Duck-typed on ``as_coordinator()`` (the warm-pool unwrap protocol,
    see :mod:`repro.distributed.pool`) so this module never imports the
    distributed runtime just to accept one.
    """
    unwrap = getattr(candidate, "as_coordinator", None)
    return unwrap() if callable(unwrap) else candidate


class AffinityEngine:
    """Builds, caches, and incrementally extends affinity matrices."""

    def __init__(
        self,
        source: AffinitySource,
        config: EngineConfig | None = None,
        coordinator: "object | None" = None,
    ):
        self.source = source
        self.config = config or EngineConfig()
        self.cache = (
            ArtifactCache(self.config.cache_dir, max_bytes=self.config.cache_max_bytes)
            if self.config.cache_dir
            else None
        )
        self._coordinator = _unwrap_coordinator(coordinator)
        self._owns_coordinator = False
        self._state: CorpusState | None = None
        self._state_key: str | None = None

    # ------------------------------------------------------------------
    # Distributed session plumbing
    # ------------------------------------------------------------------
    def use_coordinator(self, coordinator: object) -> None:
        """Inject a shared distributed session (the caller owns it).

        Accepts a bare ``Coordinator`` or anything exposing
        ``as_coordinator()`` — notably a warm
        :class:`repro.distributed.WorkerPool`.
        """
        self._coordinator = _unwrap_coordinator(coordinator)
        self._owns_coordinator = False

    def coordinator(self):
        """The distributed session (lazily self-created when not injected)."""
        if self._coordinator is None:
            from repro.distributed import Coordinator

            self._coordinator = Coordinator.for_engine(
                broker=self.config.broker,
                n_workers=self.config.n_workers,
                n_jobs=self.config.n_jobs,
                cache=self.cache,
            )
            self._owns_coordinator = True
        return self._coordinator

    def close(self) -> None:
        """Shut down a self-created distributed session (no-op otherwise)."""
        if self._owns_coordinator and self._coordinator is not None:
            self._coordinator.close()
            self._coordinator = None
            self._owns_coordinator = False

    def _runtime(self) -> EngineRuntime:
        runtime = self.config.runtime()
        if self.config.executor == "distributed":
            runtime = dataclasses.replace(runtime, coordinator=self.coordinator())
        return runtime

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def _params(self) -> dict[str, object]:
        params = {**self.source.signature(), "precision": self.config.precision}
        if self.config.affinity_mode == "sparse":
            # The *configured* top_k addresses the artifact (None =
            # "ceil(N/4)" as a policy, resolved per corpus; the image
            # hash already covers N, so the resolved k is covered too).
            params["affinity_mode"] = "sparse"
            params["top_k"] = self.config.top_k
        return params

    def _corpus_key(self, data_hash: str) -> str:
        assert self.cache is not None
        return self.cache.key(data_hash, self._params())

    @property
    def supports_incremental(self) -> bool:
        return isinstance(self.source, IncrementalAffinitySource)

    @property
    def state(self) -> CorpusState | None:
        """The in-memory corpus state of the last build/extend, if any."""
        return self._state

    @property
    def state_key(self) -> str | None:
        """Cache key of the current corpus state (``None`` when uncached)."""
        return self._state_key

    def restore_state(self, state: CorpusState | None, key: str | None) -> None:
        """Reinstall a previously captured ``(state, state_key)`` pair.

        The rollback half of an extend-then-infer transaction: a caller
        that snapshots ``(engine.state, engine.state_key)`` before
        :meth:`extend` can undo the extension if downstream work fails,
        so a failed batch never leaves its images in the corpus.
        """
        if state is None:
            self._forget()
        else:
            self._remember(state, key)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(
        self, images: np.ndarray, keep_state: bool | None = None
    ) -> AffinityMatrix | SparseAffinityMatrix:
        """Affinity matrix for ``images``; cache-aware.

        ``keep_state`` (default: whenever the source supports it)
        additionally retains/caches the corpus state that
        :meth:`extend` needs.  With ``affinity_mode="sparse"`` the
        result is a :class:`SparseAffinityMatrix` (same ``block(f)``
        accessor) and corpus state is not kept — the sparse path is
        build-only.
        """
        with span("engine.build"):
            return self._build(images, keep_state)

    def _build(
        self, images: np.ndarray, keep_state: bool | None
    ) -> AffinityMatrix | SparseAffinityMatrix:
        images = check_images(images)
        if self.config.affinity_mode == "sparse":
            if keep_state:
                raise ValueError(
                    "affinity_mode='sparse' cannot keep corpus state: the sparse "
                    "path is build-only (incremental extension stays dense)"
                )
            return self._build_sparse(images)
        if keep_state is None:
            keep_state = self.supports_incremental
        if keep_state and not self.supports_incremental:
            raise ValueError(f"source {self.source.name!r} does not support incremental state")
        key = None
        if self.cache is not None:
            key = self._corpus_key(hash_arrays(images))
            cached = self._load_cached(key, need_state=keep_state)
            if cached is not None:
                return cached
        runtime = self._runtime()
        if keep_state:
            state = self.source.build_state(images, runtime)
            self._remember(state, key)
            matrix = state.affinity
        else:
            self._forget()
            matrix = self.source.build(images, runtime)
        if self.cache is not None and key is not None:
            self.cache.save_affinity(key, matrix)
            if keep_state and self._state is not None:
                self._save_state(key, self._state)
        return matrix

    def _build_sparse(self, images: np.ndarray) -> SparseAffinityMatrix:
        """The sparse build path: stream blocks, top-k each, never hold
        the dense matrix (peak memory is one layer's blocks)."""
        key = None
        if self.cache is not None:
            key = self._corpus_key(hash_arrays(images))
            cached = self.cache.load_affinity_csr(key)
            if cached is not None:
                self._forget()
                return self._attach_store(cached, key)
        self._forget()
        cfg = self.config
        runtime = dataclasses.replace(self._runtime(), out_dtype=cfg.dtype)
        n = int(images.shape[0])
        k = min(cfg.top_k if cfg.top_k is not None else max(1, -(-n // 4)), n)
        iterate = getattr(self.source, "iter_function_blocks", None)
        if iterate is not None:
            data_parts: list[np.ndarray] = []
            index_parts: list[np.ndarray] = []
            fill_parts: list[np.ndarray] = []
            ids: list[object] = []
            for fid, block in iterate(images, runtime):
                data, indices, fill = topk_block(block, k, row_tile=cfg.row_tile)
                data_parts.append(data)
                index_parts.append(indices)
                fill_parts.append(fill)
                ids.append(fid)
            sparse = SparseAffinityMatrix(
                data=np.stack(data_parts),
                indices=np.stack(index_parts),
                fill=np.stack(fill_parts),
                function_ids=tuple(ids),
            )
        else:
            # Sources without a streaming hook: build dense, sparsify.
            dense = self.source.build(images, runtime)
            sparse = sparsify_affinity(dense, k, dtype=cfg.dtype, row_tile=cfg.row_tile)
        if self.cache is not None and key is not None:
            self.cache.save_affinity_csr(key, sparse)
        return self._attach_store(sparse, key)

    def _attach_store(self, sparse: SparseAffinityMatrix, key: str | None) -> SparseAffinityMatrix:
        """Attach the out-of-core block store when ``memmap`` is on."""
        if not self.config.memmap:
            return sparse
        base_key = key if key is not None else sparse.content_hash()
        store = MemmapBlockStore(cache=self.cache, base_key=base_key)
        return sparse.with_store(store)

    def extend(self, new_images: np.ndarray) -> AffinityMatrix:
        """Extend the last built corpus with ``new_images``.

        Only the new rows and new column blocks are computed; the old
        N×N quadrant of every affinity block is reused.  Requires a
        prior :meth:`build` (with state) in this engine, or a cache
        hit that restored the state.
        """
        with span("engine.extend"):
            return self._extend(new_images)

    def _extend(self, new_images: np.ndarray) -> AffinityMatrix:
        new_images = check_images(new_images)
        if self.config.affinity_mode != "dense":
            raise RuntimeError(
                "extend() requires affinity_mode='dense': the sparse path is "
                "build-only (serving and online labeling stay on the dense path)"
            )
        if not self.supports_incremental:
            raise ValueError(f"source {self.source.name!r} does not support incremental state")
        if self._state is None:
            raise RuntimeError(
                "no corpus state: call build() on the original corpus first "
                "(with cache_dir set and the corpus cached, that build is a "
                "cheap disk load that restores the state)"
            )
        key = None
        if self.cache is not None and self._state_key is not None:
            # Chain the key: extended corpus = previous corpus ⊕ new bytes.
            key = self.cache.key(hash_arrays(new_images), {"previous": self._state_key})
            cached = self._load_cached(key, need_state=True)
            if cached is not None:
                return cached  # _load_cached installed the extended state
        state = self.source.extend_state(self._state, new_images, self._runtime())
        if key is not None:
            self.cache.save_affinity(key, state.affinity)
            self._save_state(key, state)
        self._remember(state, key)
        return state.affinity

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _load_cached(self, key: str, need_state: bool) -> AffinityMatrix | None:
        assert self.cache is not None
        matrix = self.cache.load_affinity(key)
        if matrix is None:
            return None
        if not need_state:
            self._forget()
            return matrix
        stored = self.cache.load_arrays("state", key)
        if stored is None:
            return None  # affinity alone is not enough; rebuild with state
        if "n_images" not in stored:
            # Readable zip, wrong schema (drift or a foreign file in a
            # shared cache dir): evict and rebuild rather than crash.
            self.cache.evict("state", key)
            return None
        n_images = int(stored.pop("n_images"))
        self._remember(CorpusState(affinity=matrix, n_images=n_images, arrays=stored), key)
        return matrix

    def _save_state(self, key: str, state: CorpusState) -> None:
        assert self.cache is not None
        arrays = dict(state.arrays)
        arrays["n_images"] = np.int64(state.n_images)
        self.cache.save_arrays("state", key, arrays)

    def _remember(self, state: CorpusState, key: str | None) -> None:
        self._state = state
        self._state_key = key

    def _forget(self) -> None:
        self._state = None
        self._state_key = None
