"""Deterministic random-number helpers.

Every stochastic component in this repository takes an explicit seed or
``numpy.random.Generator``.  These helpers derive independent child
streams from a root seed so that, e.g., dataset generation, weight
initialisation, and EM initialisation never share a stream (adding a
draw in one place must not perturb the others).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "spawn_rng"]


def derive_seed(root_seed: int, *scope: object) -> int:
    """Derive a stable 63-bit child seed from ``root_seed`` and a scope path.

    The scope is an arbitrary sequence of hashable, ``str``-able objects
    (for example ``derive_seed(7, "dataset", "cub", 3)``).  The same
    inputs always produce the same output, across processes and
    platforms, because the mix is SHA-256 based rather than relying on
    Python's randomised ``hash``.
    """
    material = ":".join([str(int(root_seed))] + [str(part) for part in scope])
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF


def spawn_rng(seed: int | np.random.Generator | None, *scope: object) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed`` scoped by ``scope``.

    ``seed`` may be an ``int`` (derived via :func:`derive_seed`), an
    existing ``Generator`` (returned as-is when no scope is given,
    otherwise a child is spawned), or ``None`` (non-deterministic).
    """
    if isinstance(seed, np.random.Generator):
        if not scope:
            return seed
        child_seed = derive_seed(int(seed.integers(0, 2**31)), *scope)
        return np.random.default_rng(child_seed)
    if seed is None:
        return np.random.default_rng()
    return np.random.default_rng(derive_seed(int(seed), *scope))
