"""Shared utilities: seeding, validation, and small numeric helpers."""

from repro.utils.rng import spawn_rng, derive_seed
from repro.utils.validation import (
    check_array,
    check_images,
    check_labels,
    check_probabilities,
)

__all__ = [
    "spawn_rng",
    "derive_seed",
    "check_array",
    "check_images",
    "check_labels",
    "check_probabilities",
]
