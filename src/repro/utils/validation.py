"""Input validation helpers shared across the library.

All public entry points validate their inputs eagerly and raise
``ValueError``/``TypeError`` with actionable messages, so that failures
surface at the API boundary rather than deep inside EM iterations.
"""

from __future__ import annotations

import numpy as np

__all__ = ["check_array", "check_images", "check_labels", "check_probabilities"]


def check_array(
    x: np.ndarray,
    *,
    name: str = "array",
    ndim: int | None = None,
    dtype: type | None = None,
    allow_empty: bool = False,
) -> np.ndarray:
    """Validate that ``x`` is a finite ndarray with the expected rank.

    Returns the array converted to ``dtype`` (if given) so callers can
    use the checked result directly.
    """
    if not isinstance(x, np.ndarray):
        raise TypeError(f"{name} must be a numpy.ndarray, got {type(x).__name__}")
    if ndim is not None and x.ndim != ndim:
        raise ValueError(f"{name} must have ndim={ndim}, got shape {x.shape}")
    if not allow_empty and x.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if np.issubdtype(x.dtype, np.floating) and not np.isfinite(x).all():
        raise ValueError(f"{name} contains NaN or infinity")
    if dtype is not None and x.dtype != dtype:
        x = x.astype(dtype)
    return x


def check_images(images: np.ndarray, *, name: str = "images") -> np.ndarray:
    """Validate a batch of images shaped ``(N, C, H, W)`` with C in {1, 3}.

    Every dtype is canonicalised to float64 except float32, which is
    preserved: the sparse affinity path casts batches to float32 before
    extraction so the whole backbone forward runs at half width (the
    layers follow the activation dtype), locally and on distributed
    extraction workers alike.
    """
    images = check_array(images, name=name, ndim=4)
    n, c, h, w = images.shape
    if c not in (1, 3):
        raise ValueError(f"{name} must have 1 or 3 channels, got {c}")
    if h < 8 or w < 8:
        raise ValueError(f"{name} must be at least 8x8 pixels, got {h}x{w}")
    if images.dtype == np.float32:
        return images
    return images.astype(np.float64, copy=False)


def check_labels(labels: np.ndarray, *, n_classes: int | None = None, name: str = "labels") -> np.ndarray:
    """Validate an integer label vector; optionally bound by ``n_classes``."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {labels.shape}")
    if labels.size and not np.issubdtype(labels.dtype, np.integer):
        if not np.all(labels == labels.astype(np.int64)):
            raise ValueError(f"{name} must be integers")
    labels = labels.astype(np.int64)
    if labels.size and labels.min() < 0:
        raise ValueError(f"{name} must be non-negative")
    if n_classes is not None and labels.size and labels.max() >= n_classes:
        raise ValueError(f"{name} contains label {labels.max()} >= n_classes={n_classes}")
    return labels


def check_probabilities(
    p: np.ndarray, *, axis: int = -1, name: str = "probabilities", atol: float = 1e-6
) -> np.ndarray:
    """Validate that ``p`` is a valid probability array summing to 1 on ``axis``."""
    p = check_array(np.asarray(p, dtype=np.float64), name=name)
    if p.min() < -atol or p.max() > 1 + atol:
        raise ValueError(f"{name} must lie in [0, 1]")
    sums = p.sum(axis=axis)
    if not np.allclose(sums, 1.0, atol=max(atol, 1e-5)):
        raise ValueError(f"{name} must sum to 1 along axis {axis}; sums range [{sums.min()}, {sums.max()}]")
    return p
