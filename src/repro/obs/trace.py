"""Lightweight spans and request-scoped trace ids.

A production labeling request crosses four layers — HTTP handler →
:class:`~repro.serving.service.LabelingService` worker →
:class:`~repro.online.OnlineSession` / ``label_incremental`` →
:class:`~repro.engine.inference.InferenceEngine` — on *two different
threads* (the handler enqueues, the single service worker executes).
This module makes that journey observable without a tracing backend:

* a **trace id** rides a :class:`contextvars.ContextVar`; the HTTP
  layer mints one per submission (or honours the client's
  ``X-Trace-Id``), the service worker re-installs it around each
  coalesced batch, and every span recorded inside tags itself with it;
* :func:`span` is a context manager timing one named operation; each
  finished span feeds the shared ``goggles_span_seconds`` histogram
  (labels ``span``/``outcome``) and a bounded in-memory ring buffer
  (:func:`recent_spans`) that the CLI and tests can read back.

Overhead per span: two ``perf_counter`` calls, one histogram observe,
one deque append — paid per *stage* (absorb, refit, inference), never
per row.
"""

from __future__ import annotations

import contextvars
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry, default_registry

__all__ = [
    "SpanRecord",
    "current_trace_id",
    "new_trace_id",
    "recent_spans",
    "record_span",
    "span",
    "span_mark",
    "spans_since",
    "trace_context",
]

_TRACE_ID: contextvars.ContextVar[str | None] = contextvars.ContextVar("goggles_trace_id", default=None)

#: Finished spans kept for inspection; bounded so a long-lived service
#: never accumulates them (the histogram holds the full distribution).
_RING_CAPACITY = 512
_ring: deque["SpanRecord"] = deque(maxlen=_RING_CAPACITY)
_ring_lock = threading.Lock()
#: Spans ever recorded in this process (never decremented — the ring
#: forgets, the counter does not, so shippers can detect missed spans).
_ring_total = 0


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: what ran, under which trace, for how long.

    ``started_at`` is wall-clock (``time.time()``) so spans recorded in
    different processes order into one timeline; ``worker`` is filled
    by the telemetry merger when a span arrives from a remote worker
    (``None`` for spans recorded in this process).
    """

    name: str
    trace_id: str | None
    seconds: float
    outcome: str  # "ok" or "error"
    started_at: float = 0.0
    worker: str | None = None


def new_trace_id() -> str:
    """A fresh 16-hex request id (no coordination, negligible collision)."""
    return uuid.uuid4().hex[:16]


def current_trace_id() -> str | None:
    """The trace id of the current context, if one is installed."""
    return _TRACE_ID.get()


@contextmanager
def trace_context(trace_id: str | None):
    """Install ``trace_id`` for the duration of the block.

    The service worker uses this to carry a submission's id from the
    HTTP thread that minted it onto the worker thread that executes it.
    """
    token = _TRACE_ID.set(trace_id)
    try:
        yield trace_id
    finally:
        _TRACE_ID.reset(token)


@contextmanager
def span(name: str, registry: MetricsRegistry | None = None):
    """Time one named operation; record outcome, duration, trace id.

    Records into ``goggles_span_seconds{span,outcome}`` on ``registry``
    (default: the process registry) and the in-memory ring buffer.  The
    exception, if any, propagates — a span never swallows failures, it
    only labels them ``outcome="error"``.
    """
    registry = registry or default_registry()
    histogram = registry.histogram(
        "goggles_span_seconds",
        "Wall time of traced spans by name and outcome.",
        labelnames=("span", "outcome"),
    )
    start = time.perf_counter()
    started_at = time.time()
    outcome = "ok"
    try:
        yield
    except BaseException:
        outcome = "error"
        raise
    finally:
        seconds = time.perf_counter() - start
        histogram.observe(seconds, span=name, outcome=outcome)
        record_span(
            SpanRecord(
                name=name,
                trace_id=_TRACE_ID.get(),
                seconds=seconds,
                outcome=outcome,
                started_at=started_at,
            )
        )


def record_span(record: SpanRecord) -> None:
    """Append an already-finished span to the ring buffer.

    The telemetry merger uses this to re-record spans shipped from
    worker processes into the coordinator's ring, so
    :func:`recent_spans` (and the trace CLI / HTTP endpoint reading it)
    sees one cross-process timeline.
    """
    global _ring_total
    with _ring_lock:
        _ring.append(record)
        _ring_total += 1


def span_mark() -> int:
    """An opaque high-water mark for :func:`spans_since`."""
    with _ring_lock:
        return _ring_total


def spans_since(mark: int) -> tuple[list[SpanRecord], int]:
    """Spans recorded after ``mark``, oldest first, plus the new mark.

    If more spans were recorded than the ring holds, the overflow is
    lost (the ring is bounded by design) — the caller still advances
    past it.  This is the worker shipper's read path: each telemetry
    frame carries exactly the spans since the previous frame.
    """
    with _ring_lock:
        new = _ring_total - mark
        if new <= 0:
            return [], _ring_total
        records = list(_ring)[-min(new, len(_ring)):]
        return records, _ring_total


def recent_spans(name: str | None = None, trace_id: str | None = None) -> list[SpanRecord]:
    """Finished spans still in the ring buffer, oldest first.

    Optionally filtered by span name and/or trace id — ``trace_id``
    filtering is how a test (or an operator in a REPL) follows one
    request across the thread hop.
    """
    with _ring_lock:
        records = list(_ring)
    if name is not None:
        records = [r for r in records if r.name == name]
    if trace_id is not None:
        records = [r for r in records if r.trace_id == trace_id]
    return records


def clear_spans() -> None:
    """Empty the ring buffer (test isolation helper)."""
    with _ring_lock:
        _ring.clear()
