"""Observability spine: metrics registry, Prometheus rendering, spans.

See ENGINE.md, "Observability" for the metric-name catalogue and the
trace-id propagation path.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    filter_exposition,
)
from repro.obs.trace import (
    SpanRecord,
    clear_spans,
    current_trace_id,
    new_trace_id,
    recent_spans,
    span,
    trace_context,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "clear_spans",
    "current_trace_id",
    "default_registry",
    "filter_exposition",
    "new_trace_id",
    "recent_spans",
    "span",
    "trace_context",
]
