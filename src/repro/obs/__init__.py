"""Observability spine: metrics registry, Prometheus rendering, spans,
and the cluster telemetry shipping/merge plane.

See ENGINE.md, "Observability" for the metric-name catalogue and the
trace-id propagation path.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RegistrySnapshot,
    capture_registry,
    default_registry,
    delta_snapshot,
    filter_exposition,
)
from repro.obs.ship import (
    TelemetryMerger,
    TelemetryShipper,
    span_from_payload,
    span_to_payload,
)
from repro.obs.trace import (
    SpanRecord,
    clear_spans,
    current_trace_id,
    new_trace_id,
    recent_spans,
    record_span,
    span,
    span_mark,
    spans_since,
    trace_context,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RegistrySnapshot",
    "SpanRecord",
    "TelemetryMerger",
    "TelemetryShipper",
    "capture_registry",
    "clear_spans",
    "current_trace_id",
    "default_registry",
    "delta_snapshot",
    "filter_exposition",
    "new_trace_id",
    "recent_spans",
    "record_span",
    "span",
    "span_from_payload",
    "span_mark",
    "span_to_payload",
    "spans_since",
    "trace_context",
]
