"""A dependency-free metrics registry: counters, gauges, histograms.

GOGGLES grew counters organically — ``CacheStats`` dicts, bespoke
``Broker.n_streamed`` attributes, ``OnlineSession.stats()`` snapshots —
each readable only by code that holds the owning object.  This module
gives every layer one export path: a process-wide
:class:`MetricsRegistry` of named metrics that renders as `Prometheus
text exposition format`_ (scraped by ``GET /metrics`` on the HTTP
front-end, dumped by ``goggles-repro metrics``).

Design constraints, in order:

* **stdlib only** — the registry must import anywhere (workers,
  benchmarks, the CLI) without adding a dependency;
* **thread-safe** — the HTTP front-end handles requests on many
  threads and the broker's handler threads count streams concurrently;
  every update takes one per-metric lock around a dict upsert;
* **near-zero overhead when unused** — a metric that nothing
  increments costs one dict entry; instrumented hot paths pay one lock
  + float add per *event* (per request, per batch, per shard — never
  per row);
* **get-or-create semantics** — two components may declare the same
  metric name (two services in one test process); they share the
  instrument, like ``prometheus_client``.

.. _Prometheus text exposition format:
   https://prometheus.io/docs/instrumenting/exposition_formats/
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RegistrySnapshot",
    "DEFAULT_LATENCY_BUCKETS",
    "capture_registry",
    "default_registry",
    "delta_snapshot",
    "filter_exposition",
]

#: Fixed latency buckets (seconds) shared by every ``*_seconds``
#: histogram, so serving dashboards can aggregate across metric
#: families without bucket realignment.  Upper bounds are cumulative
#: (Prometheus ``le`` semantics); +Inf is implicit.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r"\"")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared machinery: label validation and the per-metric lock."""

    type_name = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on metric {name!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: dict[str, object]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _render_labels(self, key: tuple[str, ...], extra: str = "") -> str:
        pairs = [f'{name}="{_escape_label_value(value)}"' for name, value in zip(self.labelnames, key)]
        if extra:
            pairs.append(extra)
        return "{" + ",".join(pairs) + "}" if pairs else ""

    def _header(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.type_name}")
        return lines


class Counter(_Metric):
    """A monotonically increasing sum, optionally split by labels."""

    type_name = "counter"

    def __init__(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()):
        super().__init__(name, help, labelnames)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc by {amount})")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        """Sum over every label combination (the /healthz roll-up)."""
        with self._lock:
            return sum(self._values.values()) if self._values else 0.0

    def series(self) -> dict[tuple[str, ...], float]:
        """Every labeled series as ``{label-values: value}`` (a copy)."""
        with self._lock:
            return dict(self._values)

    def collect(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        lines = self._header()
        if not items and not self.labelnames:
            items = [((), 0.0)]
        for key, value in items:
            lines.append(f"{self.name}{self._render_labels(key)} {_format_value(value)}")
        return lines


class Gauge(_Metric):
    """A value that can go up and down — or be read lazily at scrape
    time from a callback (:meth:`set_function`), which keeps hot paths
    free of bookkeeping for quantities something already tracks
    (queue depth, buffer fill)."""

    type_name = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()):
        super().__init__(name, help, labelnames)
        self._values: dict[tuple[str, ...], float] = {}
        self._functions: dict[tuple[str, ...], object] = {}

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._functions.pop(key, None)
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def set_function(self, fn, **labels: object) -> None:
        """Read this series from ``fn()`` at every scrape (last caller
        wins — a restarted service re-binds its own gauges)."""
        key = self._key(labels)
        with self._lock:
            self._values.pop(key, None)
            self._functions[key] = fn

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            fn = self._functions.get(key)
            if fn is None:
                return self._values.get(key, 0.0)
        try:
            return float(fn())
        except Exception:  # noqa: BLE001 - mirror collect(): dead callbacks read as NaN
            return math.nan

    def series(self) -> dict[tuple[str, ...], float]:
        """Every labeled series, with callbacks evaluated (NaN on error)."""
        with self._lock:
            items = dict(self._values)
            functions = dict(self._functions)
        for key, fn in functions.items():
            try:
                items[key] = float(fn())
            except Exception:  # noqa: BLE001 - dead callbacks read as NaN
                items[key] = math.nan
        return items

    def collect(self) -> list[str]:
        with self._lock:
            items = dict(self._values)
            functions = dict(self._functions)
        for key, fn in functions.items():
            try:
                items[key] = float(fn())
            except Exception:  # noqa: BLE001 - a dead callback must not kill a scrape
                items[key] = math.nan
        lines = self._header()
        if not items and not self.labelnames:
            items = {(): 0.0}
        for key, value in sorted(items.items()):
            lines.append(f"{self.name}{self._render_labels(key)} {_format_value(value)}")
        return lines


class Histogram(_Metric):
    """Observations bucketed under fixed upper bounds (Prometheus
    cumulative ``le`` semantics), plus running sum and count."""

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name!r} has duplicate bucket bounds")
        self.buckets = bounds
        # Per label-set: [per-bucket counts..., +Inf count], sum.
        self._counts: dict[tuple[str, ...], list[int]] = {}
        self._sums: dict[tuple[str, ...], float] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts[key] = [0] * (len(self.buckets) + 1)
            counts[index] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value

    def count(self, **labels: object) -> int:
        key = self._key(labels)
        with self._lock:
            return sum(self._counts.get(key, ()))

    def sum(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return self._sums.get(key, 0.0)

    def raw_series(self) -> dict[tuple[str, ...], tuple[list[int], float]]:
        """Every labeled series as ``(per-bucket raw counts incl. +Inf, sum)``.

        Raw (non-cumulative) counts are the mergeable representation the
        telemetry delta codec ships — two raw vectors add elementwise.
        """
        with self._lock:
            return {
                key: (list(counts), self._sums.get(key, 0.0))
                for key, counts in self._counts.items()
            }

    def add_raw(self, counts: list[int], sum_delta: float, **labels: object) -> None:
        """Merge a raw per-bucket count vector (telemetry merge path).

        ``counts`` must match this histogram's bucket layout (per-bucket
        raw counts plus the trailing +Inf slot).
        """
        key = self._key(labels)
        if len(counts) != len(self.buckets) + 1:
            raise ValueError(
                f"histogram {self.name!r} has {len(self.buckets) + 1} count slots, "
                f"got {len(counts)}"
            )
        with self._lock:
            existing = self._counts.get(key)
            if existing is None:
                existing = self._counts[key] = [0] * (len(self.buckets) + 1)
            for index, count in enumerate(counts):
                existing[index] += int(count)
            self._sums[key] = self._sums.get(key, 0.0) + float(sum_delta)

    def quantile(self, q: float, **labels: object) -> float | None:
        """Upper bound of the bucket containing quantile ``q`` (0..1).

        Histogram quantiles are bucket-resolution estimates: the answer
        is the smallest upper bound whose cumulative count reaches
        ``q * total`` (``math.inf`` when the quantile lands past the
        last finite bucket).  Returns ``None`` for an empty series.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        key = self._key(labels)
        with self._lock:
            raw = self._counts.get(key)
            if raw is None:
                return None
            raw = list(raw)
        total = sum(raw)
        if total == 0:
            return None
        rank = q * total
        running = 0
        for bound, count in zip((*self.buckets, math.inf), raw):
            running += count
            if running >= rank and running > 0:
                return bound
        return math.inf  # pragma: no cover - loop always returns

    def bucket_counts(self, **labels: object) -> dict[float, int]:
        """Cumulative count per upper bound (``math.inf`` included)."""
        key = self._key(labels)
        with self._lock:
            raw = list(self._counts.get(key, [0] * (len(self.buckets) + 1)))
        cumulative: dict[float, int] = {}
        running = 0
        for bound, count in zip((*self.buckets, math.inf), raw):
            running += count
            cumulative[bound] = running
        return cumulative

    def collect(self) -> list[str]:
        with self._lock:
            counts = {key: list(values) for key, values in self._counts.items()}
            sums = dict(self._sums)
        lines = self._header()
        items = sorted(counts.items())
        if not items and not self.labelnames:
            items = [((), [0] * (len(self.buckets) + 1))]
            sums[()] = 0.0
        for key, raw in items:
            running = 0
            for bound, count in zip(self.buckets, raw):
                running += count
                extra = f'le="{_format_value(bound)}"'
                lines.append(f"{self.name}_bucket{self._render_labels(key, extra)} {running}")
            running += raw[-1]
            inf_label = 'le="+Inf"'
            lines.append(f"{self.name}_bucket{self._render_labels(key, inf_label)} {running}")
            lines.append(f"{self.name}_sum{self._render_labels(key)} {_format_value(sums.get(key, 0.0))}")
            lines.append(f"{self.name}_count{self._render_labels(key)} {running}")
        return lines


class MetricsRegistry:
    """Named metrics with get-or-create registration and one renderer.

    One process-wide instance (:func:`default_registry`) backs
    production serving; tests that assert exact totals construct their
    own and pass it into the component under test.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, labelnames: tuple[str, ...], **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.type_name}, "
                        f"requested {cls.type_name}"
                    )
                if tuple(labelnames) != existing.labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, requested {tuple(labelnames)}"
                    )
                return existing
            metric = cls(name, help, tuple(labelnames), **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def render(self) -> str:
        """The full registry in Prometheus text exposition format."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.collect())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict[str, dict[str, float]]:
        """JSON-friendly ``{metric: {rendered labels: value}}`` dump.

        Histograms contribute their ``_sum`` and ``_count`` series;
        bucket lines are omitted (read :meth:`render` for those).
        """
        out: dict[str, dict[str, float]] = {}
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        for metric in metrics:
            series: dict[str, float] = {}
            for line in metric.collect():
                if line.startswith("#") or "_bucket{" in line or line.startswith(f"{metric.name}_bucket "):
                    continue
                name_part, value_part = line.rsplit(" ", 1)
                try:
                    series[name_part] = float(value_part)
                except ValueError:  # pragma: no cover - NaN/Inf renderings
                    series[name_part] = math.nan
            out[metric.name] = series
        return out


def filter_exposition(text: str, **labels: object) -> str:
    """Filter Prometheus text exposition down to matching label pairs.

    Keeps only sample lines whose label set carries *every* given
    ``name="value"`` pair exactly (``filter_exposition(text,
    tenant="alpha")`` is the ``/metrics?tenant=`` and ``goggles-repro
    metrics --tenant`` server/CLI filter).  ``# HELP``/``# TYPE``
    headers survive for families with at least one surviving sample;
    unlabeled samples and non-matching series are dropped.
    """
    needles = [f',{name}="{_escape_label_value(str(value))}"' for name, value in labels.items()]
    kept: list[str] = []
    header: list[str] = []
    header_name = ""
    flushed_name = ""
    for line in text.splitlines():
        if line.startswith("# "):
            parts = line.split(" ", 3)  # "# HELP <name> ..." / "# TYPE <name> <type>"
            name = parts[2] if len(parts) > 2 else ""
            if name != header_name:
                header, header_name = [], name
            header.append(line)
            continue
        brace = line.find("{")
        if brace < 0:
            continue  # an unlabeled sample cannot carry the pair
        # Normalising "{" to "," lets one needle form match the first
        # label pair too, and the closing quote in each needle prevents
        # prefix collisions (tenant="a" vs tenant="ab").
        hay = "," + line[brace + 1 : line.rfind("}")]
        if all(needle in hay for needle in needles):
            if header_name != flushed_name:
                kept.extend(header)
                flushed_name = header_name
            kept.append(line)
    return "\n".join(kept) + ("\n" if kept else "")


# --------------------------------------------------------------------------
# Registry snapshots: the delta codec distributed workers ship over the wire
# --------------------------------------------------------------------------

#: Snapshot payload schema version (bumped on incompatible change).
SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class RegistrySnapshot:
    """A mergeable delta of one source's metrics since its last ship.

    * counters carry per-series **deltas** (always ≥ 0);
    * gauges carry **last-write** values (merge = overwrite);
    * histograms carry raw per-bucket count deltas (incl. the +Inf
      slot) plus a sum delta — raw vectors add elementwise, so merging
      is associative and order-independent across sources.

    ``seq`` increments once per shipped snapshot, so a receiver that
    tracks the last-applied sequence number per ``source`` can drop
    duplicates (at-least-once transports re-deliver; applying a delta
    twice would double-count).

    Family entries are plain JSON-able dicts::

        counters[name]   = {"help": str, "labelnames": [..],
                            "series": [[ [label values...], delta ], ...]}
        gauges[name]     = same shape, value = last write
        histograms[name] = {..., "buckets": [...],
                            "series": [[ [...], {"counts": [...], "sum": s} ], ...]}
    """

    source: str
    seq: int
    counters: dict[str, dict] = field(default_factory=dict)
    gauges: dict[str, dict] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)

    def is_empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)

    def to_payload(self) -> dict:
        """A JSON-able dict (inverse of :meth:`from_payload`)."""
        return {
            "version": SNAPSHOT_VERSION,
            "source": self.source,
            "seq": self.seq,
            "counters": self.counters,
            "gauges": self.gauges,
            "histograms": self.histograms,
        }

    @classmethod
    def from_payload(cls, payload: object) -> "RegistrySnapshot":
        """Validate and rebuild; raises ``ValueError`` on defects."""
        if not isinstance(payload, dict):
            raise ValueError(f"snapshot payload must be a dict, got {type(payload).__name__}")
        version = payload.get("version")
        if version != SNAPSHOT_VERSION:
            raise ValueError(f"unsupported snapshot version {version!r}")
        source = payload.get("source")
        seq = payload.get("seq")
        if not isinstance(source, str) or not source:
            raise ValueError(f"snapshot source must be a non-empty string, got {source!r}")
        if not isinstance(seq, int) or seq < 1:
            raise ValueError(f"snapshot seq must be a positive int, got {seq!r}")
        families: dict[str, dict[str, dict]] = {}
        for section in ("counters", "gauges", "histograms"):
            entries = payload.get(section, {})
            if not isinstance(entries, dict):
                raise ValueError(f"snapshot section {section!r} must be a dict")
            for name, entry in entries.items():
                if not _NAME_RE.match(str(name)):
                    raise ValueError(f"invalid metric name {name!r} in snapshot")
                if not isinstance(entry, dict) or not isinstance(entry.get("series"), list):
                    raise ValueError(f"malformed snapshot entry for {name!r}")
                labelnames = entry.get("labelnames", [])
                if not isinstance(labelnames, list) or any(
                    not _LABEL_RE.match(str(label)) for label in labelnames
                ):
                    raise ValueError(f"invalid labelnames {labelnames!r} for {name!r}")
                for item in entry["series"]:
                    if (
                        not isinstance(item, (list, tuple))
                        or len(item) != 2
                        or not isinstance(item[0], (list, tuple))
                        or len(item[0]) != len(labelnames)
                    ):
                        raise ValueError(f"malformed series entry for {name!r}: {item!r}")
                if section == "histograms" and not isinstance(entry.get("buckets"), list):
                    raise ValueError(f"histogram entry {name!r} is missing buckets")
            families[section] = {str(name): dict(entry) for name, entry in entries.items()}
        return cls(
            source=source,
            seq=seq,
            counters=families["counters"],
            gauges=families["gauges"],
            histograms=families["histograms"],
        )


def capture_registry(registry: MetricsRegistry, include=None) -> dict:
    """Cumulative raw state of ``registry``, for later delta-ing.

    ``include(name, labelnames) -> bool`` filters which families are
    captured (the worker shipper keeps only worker-labeled families).
    The result is the *baseline* argument of :func:`delta_snapshot`.
    """
    state: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
    for name in registry.names():
        metric = registry.get(name)
        if metric is None:  # pragma: no cover - racing unregister does not exist
            continue
        if include is not None and not include(metric.name, metric.labelnames):
            continue
        meta = {"help": metric.help, "labelnames": list(metric.labelnames)}
        if isinstance(metric, Counter):
            state["counters"][name] = {**meta, "series": metric.series()}
        elif isinstance(metric, Gauge):
            state["gauges"][name] = {**meta, "series": metric.series()}
        elif isinstance(metric, Histogram):
            state["histograms"][name] = {
                **meta,
                "buckets": list(metric.buckets),
                "series": metric.raw_series(),
            }
    return state


def delta_snapshot(current: dict, baseline: dict, *, source: str, seq: int) -> RegistrySnapshot:
    """The :class:`RegistrySnapshot` that advances ``baseline`` to ``current``.

    Both arguments come from :func:`capture_registry`.  Unchanged series
    are omitted; families with no changed series are omitted entirely,
    so an idle worker ships nothing.
    """
    counters: dict[str, dict] = {}
    for name, entry in current["counters"].items():
        base = baseline["counters"].get(name, {}).get("series", {})
        series = []
        for key, value in sorted(entry["series"].items()):
            delta = value - base.get(key, 0.0)
            if delta != 0.0:
                series.append([list(key), delta])
        if series:
            counters[name] = {"help": entry["help"], "labelnames": entry["labelnames"], "series": series}
    gauges: dict[str, dict] = {}
    for name, entry in current["gauges"].items():
        base = baseline["gauges"].get(name, {}).get("series", {})
        series = []
        for key, value in sorted(entry["series"].items()):
            previous = base.get(key)
            if previous is None or (value != previous and not (value != value and previous != previous)):
                series.append([list(key), value])
        if series:
            gauges[name] = {"help": entry["help"], "labelnames": entry["labelnames"], "series": series}
    histograms: dict[str, dict] = {}
    for name, entry in current["histograms"].items():
        base = baseline["histograms"].get(name, {}).get("series", {})
        series = []
        for key, (counts, total) in sorted(entry["series"].items()):
            base_counts, base_sum = base.get(key, ([0] * len(counts), 0.0))
            delta_counts = [c - b for c, b in zip(counts, base_counts)]
            if any(delta_counts):
                series.append([list(key), {"counts": delta_counts, "sum": total - base_sum}])
        if series:
            histograms[name] = {
                "help": entry["help"],
                "labelnames": entry["labelnames"],
                "buckets": entry["buckets"],
                "series": series,
            }
    return RegistrySnapshot(source=source, seq=seq, counters=counters, gauges=gauges, histograms=histograms)


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry every layer instruments by default."""
    return _DEFAULT
