"""Cluster telemetry shipping: worker-side collection, broker-side merge.

Spawned distributed workers increment metrics in their own process'
:func:`~repro.obs.metrics.default_registry` — a registry no ``GET
/metrics`` scrape ever reaches.  This module closes that gap without a
push gateway or extra round-trips:

* :class:`TelemetryShipper` runs in the worker.  Each time the worker
  is about to report results it collects a
  :class:`~repro.obs.metrics.RegistrySnapshot` **delta** (what changed
  since the previous ship) plus the worker-side span records finished
  since the last frame, and the blob piggybacks on the very wire
  message that carries the results (``report_many`` / ``result-end`` /
  ``bye``).  Telemetry is therefore *atomic with the completions it
  covers*: if the message is lost, both the reports and their counters
  are lost together, the shards are re-leased elsewhere, and the books
  still balance.
* :class:`TelemetryMerger` runs next to the broker.  It folds each
  snapshot into the coordinator's scrape registry — families already
  carrying a ``worker`` label merge as-is (each worker owns its own
  series), families without one get ``worker=<source>`` appended — and
  re-records shipped spans into the local ring so
  :func:`~repro.obs.trace.recent_spans` sees one cross-process
  timeline.  Per-source sequence numbers make the merge idempotent
  under at-least-once delivery.

The shipper defaults to shipping only families whose label set includes
``worker`` (the ``goggles_worker_*`` instruments): cache and span
*histogram* families stay process-local, both to bound frame size and
because merging an unlabeled family from many sources into one shared
series would be ambiguous without the label append.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RegistrySnapshot,
    capture_registry,
    default_registry,
    delta_snapshot,
)
from repro.obs.trace import SpanRecord, record_span, span_mark, spans_since

__all__ = [
    "TelemetryMerger",
    "TelemetryShipper",
    "span_from_payload",
    "span_to_payload",
]

#: Spans per telemetry frame (newest win; a worker that finished more
#: spans than this between flushes ships the most recent ones).
DEFAULT_MAX_SPANS_PER_FRAME = 128


def span_to_payload(record: SpanRecord) -> dict:
    return {
        "name": record.name,
        "trace_id": record.trace_id,
        "seconds": record.seconds,
        "outcome": record.outcome,
        "started_at": record.started_at,
    }


def span_from_payload(payload: object, worker: str | None = None) -> SpanRecord:
    """Rebuild a shipped span; raises ``ValueError`` on defects."""
    if not isinstance(payload, dict):
        raise ValueError(f"span payload must be a dict, got {type(payload).__name__}")
    name = payload.get("name")
    outcome = payload.get("outcome")
    trace_id = payload.get("trace_id")
    if not isinstance(name, str) or not name:
        raise ValueError(f"span payload has invalid name {name!r}")
    if outcome not in ("ok", "error"):
        raise ValueError(f"span payload has invalid outcome {outcome!r}")
    if trace_id is not None and not isinstance(trace_id, str):
        raise ValueError(f"span payload has invalid trace_id {trace_id!r}")
    try:
        seconds = float(payload.get("seconds", 0.0))
        started_at = float(payload.get("started_at", 0.0))
    except (TypeError, ValueError) as exc:
        raise ValueError(f"span payload has non-numeric timing: {exc}") from None
    return SpanRecord(
        name=name,
        trace_id=trace_id,
        seconds=seconds,
        outcome=outcome,
        started_at=started_at,
        worker=worker,
    )


def _default_family_filter(name: str, labelnames: tuple[str, ...]) -> bool:
    return "worker" in labelnames


class TelemetryShipper:
    """Worker-side collector of registry deltas and fresh spans.

    ``collect()`` returns the next JSON-able telemetry payload (or
    ``None`` when nothing changed — idle workers ship nothing).  Each
    successful collect advances the baseline and the sequence number;
    the caller attaches the payload to an outgoing wire message.
    """

    def __init__(
        self,
        source: str,
        registry: MetricsRegistry | None = None,
        *,
        family_filter=_default_family_filter,
        ship_spans: bool = True,
        max_spans: int = DEFAULT_MAX_SPANS_PER_FRAME,
    ):
        if not source:
            raise ValueError("telemetry source must be a non-empty string")
        self.source = source
        self._registry = registry if registry is not None else default_registry()
        self._filter = family_filter
        self._ship_spans = bool(ship_spans)
        self._max_spans = int(max_spans)
        self._lock = threading.Lock()
        self._seq = 0
        self._baseline = capture_registry(self._registry, self._filter)
        self._span_mark = span_mark()

    @property
    def seq(self) -> int:
        with self._lock:
            return self._seq

    def collect(self) -> dict | None:
        """The next telemetry payload, or ``None`` if nothing changed."""
        with self._lock:
            current = capture_registry(self._registry, self._filter)
            snapshot = delta_snapshot(
                current, self._baseline, source=self.source, seq=self._seq + 1
            )
            spans: list[SpanRecord] = []
            if self._ship_spans:
                spans, new_mark = spans_since(self._span_mark)
            if snapshot.is_empty() and not spans:
                return None
            self._seq += 1
            self._baseline = current
            if self._ship_spans:
                self._span_mark = new_mark
            return {
                "snapshot": snapshot.to_payload(),
                "spans": [span_to_payload(s) for s in spans[-self._max_spans:]],
            }


class TelemetryMerger:
    """Broker/coordinator-side fold of shipped telemetry payloads.

    Thread-safe (each broker handler thread merges its own worker's
    frames).  Merge bookkeeping is itself observable::

        goggles_telemetry_frames_merged_total            frames applied
        goggles_telemetry_frames_skipped_total           stale/duplicate seq
        goggles_telemetry_merge_conflicts_total{metric}  family skipped
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else default_registry()
        self._lock = threading.Lock()
        self._last_seq: dict[str, int] = {}
        self.m_merged = self.registry.counter(
            "goggles_telemetry_frames_merged_total",
            "Worker telemetry frames merged into the scrape registry.",
        )
        self.m_skipped = self.registry.counter(
            "goggles_telemetry_frames_skipped_total",
            "Worker telemetry frames dropped as duplicate or stale (seq replay).",
        )
        self.m_conflicts = self.registry.counter(
            "goggles_telemetry_merge_conflicts_total",
            "Telemetry families skipped because they clash with a local registration.",
            labelnames=("metric",),
        )

    def last_seq(self, source: str) -> int:
        with self._lock:
            return self._last_seq.get(source, 0)

    def merge(self, payload: object) -> bool:
        """Apply one telemetry payload; returns True if it was applied.

        Raises ``ValueError`` for malformed payloads (the broker turns
        that into a counted protocol error); duplicate sequence numbers
        return ``False`` without touching the registry.
        """
        if not isinstance(payload, dict):
            raise ValueError(f"telemetry payload must be a dict, got {type(payload).__name__}")
        snapshot = RegistrySnapshot.from_payload(payload.get("snapshot"))
        spans_raw = payload.get("spans", [])
        if not isinstance(spans_raw, list):
            raise ValueError("telemetry spans must be a list")
        spans = [span_from_payload(item, worker=snapshot.source) for item in spans_raw]
        with self._lock:
            if snapshot.seq <= self._last_seq.get(snapshot.source, 0):
                self.m_skipped.inc()
                return False
            self._last_seq[snapshot.source] = snapshot.seq
        self._apply(snapshot)
        for record in spans:
            record_span(record)
        self.m_merged.inc()
        return True

    # -- internals --------------------------------------------------------

    def _resolve(self, entry: dict, source: str) -> tuple[tuple[str, ...], bool]:
        """(effective labelnames, whether to append the source value)."""
        labelnames = tuple(str(label) for label in entry["labelnames"])
        if "worker" in labelnames:
            return labelnames, False
        return (*labelnames, "worker"), True

    def _apply(self, snapshot: RegistrySnapshot) -> None:
        source = snapshot.source
        for name, entry in snapshot.counters.items():
            labelnames, append = self._resolve(entry, source)
            try:
                counter = self.registry.counter(name, entry.get("help", ""), labelnames)
                for key, delta in entry["series"]:
                    values = [*map(str, key), source] if append else list(map(str, key))
                    counter.inc(float(delta), **dict(zip(labelnames, values)))
            except (TypeError, ValueError):
                self.m_conflicts.inc(metric=name)
        for name, entry in snapshot.gauges.items():
            labelnames, append = self._resolve(entry, source)
            try:
                gauge = self.registry.gauge(name, entry.get("help", ""), labelnames)
                for key, value in entry["series"]:
                    values = [*map(str, key), source] if append else list(map(str, key))
                    gauge.set(float(value), **dict(zip(labelnames, values)))
            except (TypeError, ValueError):
                self.m_conflicts.inc(metric=name)
        for name, entry in snapshot.histograms.items():
            labelnames, append = self._resolve(entry, source)
            try:
                histogram = self.registry.histogram(
                    name,
                    entry.get("help", ""),
                    labelnames,
                    buckets=tuple(float(b) for b in entry["buckets"]),
                )
                if list(histogram.buckets) != [float(b) for b in entry["buckets"]]:
                    raise ValueError("bucket layout mismatch")
                for key, sample in entry["series"]:
                    values = [*map(str, key), source] if append else list(map(str, key))
                    histogram.add_raw(
                        [int(c) for c in sample["counts"]],
                        float(sample.get("sum", 0.0)),
                        **dict(zip(labelnames, values)),
                    )
            except (KeyError, TypeError, ValueError):
                self.m_conflicts.inc(metric=name)
