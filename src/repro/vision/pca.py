"""Principal component analysis (SVD-based).

Snuba's auto-extracted primitives are "the logits output [projected]
onto a feature space of the top-10 principal components" (§5.1.2); this
module provides that projection.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_array

__all__ = ["PCA"]


class PCA:
    """Fit/transform PCA keeping the top ``n_components`` directions.

    Components are rows of ``components_`` (like scikit-learn), signs
    are fixed so the largest-magnitude loading of each component is
    positive, making results deterministic across LAPACK builds.
    """

    def __init__(self, n_components: int):
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        self.n_components = n_components
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "PCA":
        x = check_array(np.asarray(x, dtype=np.float64), name="x", ndim=2)
        n, d = x.shape
        k = min(self.n_components, min(n, d))
        self.mean_ = x.mean(axis=0)
        centred = x - self.mean_
        _, singular_values, vt = np.linalg.svd(centred, full_matrices=False)
        components = vt[:k]
        # Deterministic sign convention.
        for i in range(k):
            j = np.argmax(np.abs(components[i]))
            if components[i, j] < 0:
                components[i] = -components[i]
        self.components_ = components
        variance = (singular_values**2) / max(n - 1, 1)
        self.explained_variance_ = variance[:k]
        total = variance.sum()
        self.explained_variance_ratio_ = variance[:k] / total if total > 0 else np.zeros(k)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.components_ is None or self.mean_ is None:
            raise RuntimeError("PCA must be fitted before transform")
        x = check_array(np.asarray(x, dtype=np.float64), name="x", ndim=2)
        return (x - self.mean_) @ self.components_.T

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        if self.components_ is None or self.mean_ is None:
            raise RuntimeError("PCA must be fitted before inverse_transform")
        z = check_array(np.asarray(z, dtype=np.float64), name="z", ndim=2)
        return z @ self.components_ + self.mean_
