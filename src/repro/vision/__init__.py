"""Classical computer-vision substrate: image ops, HOG, PCA, rendering."""

from repro.vision.hog import HOGConfig, hog_batch, hog_descriptor
from repro.vision.image import (
    clip01,
    gaussian_blur,
    normalize_batch,
    resize_bilinear,
    to_grayscale,
)
from repro.vision.pca import PCA

__all__ = [
    "HOGConfig",
    "hog_batch",
    "hog_descriptor",
    "clip01",
    "gaussian_blur",
    "normalize_batch",
    "resize_bilinear",
    "to_grayscale",
    "PCA",
]
