"""Basic image operations (NCHW float arrays in [0, 1])."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_images

__all__ = ["to_grayscale", "resize_bilinear", "normalize_batch", "clip01", "gaussian_blur"]

# ITU-R BT.601 luma coefficients.
_LUMA = np.array([0.299, 0.587, 0.114])


def clip01(images: np.ndarray) -> np.ndarray:
    """Clip pixel values into [0, 1]."""
    return np.clip(images, 0.0, 1.0)


def to_grayscale(images: np.ndarray) -> np.ndarray:
    """Convert ``(N, 3, H, W)`` RGB images to ``(N, 1, H, W)`` luma."""
    images = check_images(images)
    if images.shape[1] == 1:
        return images
    gray = np.tensordot(_LUMA, images, axes=([0], [1]))
    return gray[:, None, :, :]


def resize_bilinear(images: np.ndarray, height: int, width: int) -> np.ndarray:
    """Bilinear resize of an ``(N, C, H, W)`` batch to ``(N, C, height, width)``.

    Uses the half-pixel-centres convention (matches common image
    libraries) and is separable, so it is exact for axis-aligned
    resampling of linear ramps.
    """
    images = check_images(images)
    n, c, h, w = images.shape
    if height < 1 or width < 1:
        raise ValueError(f"target size must be positive, got {height}x{width}")
    if (h, w) == (height, width):
        return images.copy()

    def _axis_coords(src: int, dst: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        positions = (np.arange(dst) + 0.5) * (src / dst) - 0.5
        positions = np.clip(positions, 0, src - 1)
        low = np.floor(positions).astype(np.int64)
        high = np.minimum(low + 1, src - 1)
        frac = positions - low
        return low, high, frac

    y0, y1, fy = _axis_coords(h, height)
    x0, x1, fx = _axis_coords(w, width)
    rows_low = images[:, :, y0, :]
    rows_high = images[:, :, y1, :]
    rows = rows_low * (1 - fy)[None, None, :, None] + rows_high * fy[None, None, :, None]
    cols_low = rows[:, :, :, x0]
    cols_high = rows[:, :, :, x1]
    return cols_low * (1 - fx)[None, None, None, :] + cols_high * fx[None, None, None, :]


def normalize_batch(
    images: np.ndarray, mean: np.ndarray | None = None, std: np.ndarray | None = None
) -> np.ndarray:
    """Per-channel standardisation ``(x - mean) / std``.

    With no statistics given, uses the batch's own per-channel moments
    (the surrogate network has no ImageNet statistics to reuse).
    """
    images = check_images(images)
    if mean is None:
        mean = images.mean(axis=(0, 2, 3))
    if std is None:
        std = images.std(axis=(0, 2, 3))
    std = np.where(np.asarray(std) < 1e-8, 1.0, std)
    return (images - np.asarray(mean)[None, :, None, None]) / np.asarray(std)[None, :, None, None]


def gaussian_blur(images: np.ndarray, sigma: float) -> np.ndarray:
    """Separable Gaussian blur with reflective borders."""
    images = check_images(images)
    if sigma <= 0:
        return images.copy()
    radius = max(1, int(np.ceil(3 * sigma)))
    xs = np.arange(-radius, radius + 1, dtype=np.float64)
    kernel = np.exp(-(xs**2) / (2 * sigma**2))
    kernel /= kernel.sum()

    def _convolve_axis(x: np.ndarray, axis: int) -> np.ndarray:
        padded = np.pad(
            x,
            [(0, 0)] * axis + [(radius, radius)] + [(0, 0)] * (x.ndim - axis - 1),
            mode="reflect",
        )
        out = np.zeros_like(x)
        for i, k in enumerate(kernel):
            slicer = [slice(None)] * x.ndim
            slicer[axis] = slice(i, i + x.shape[axis])
            out += k * padded[tuple(slicer)]
        return out

    blurred = _convolve_axis(images, 2)
    return _convolve_axis(blurred, 3)
