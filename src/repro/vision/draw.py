"""Rasterisation primitives used by the synthetic dataset generators.

All functions draw *in place* into a single-image ``(C, H, W)`` float
canvas with values in [0, 1], using soft (anti-aliased) edges so that
downstream convolutional features vary smoothly with object position.
Coordinates are (row, col) = (y, x) with the origin at the top-left.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "coordinate_grid",
    "fill_disk",
    "fill_ellipse",
    "fill_rectangle",
    "fill_polygon",
    "draw_line",
    "fill_ring",
    "blend",
]


def coordinate_grid(height: int, width: int) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(ys, xs)`` float grids of shape ``(height, width)``."""
    ys, xs = np.mgrid[0:height, 0:width].astype(np.float64)
    return ys, xs


def _soft_mask(signed_distance: np.ndarray, softness: float = 1.0) -> np.ndarray:
    """Map a signed distance field (<0 inside) to a [0, 1] coverage mask."""
    return np.clip(0.5 - signed_distance / max(softness, 1e-6), 0.0, 1.0)


def blend(canvas: np.ndarray, mask: np.ndarray, colour: np.ndarray | float, opacity: float = 1.0) -> None:
    """Alpha-blend ``colour`` into ``canvas`` where ``mask`` > 0 (in place)."""
    if canvas.ndim != 3:
        raise ValueError(f"canvas must be (C, H, W), got shape {canvas.shape}")
    alpha = np.clip(mask * opacity, 0.0, 1.0)[None, :, :]
    colour_arr = np.asarray(colour, dtype=np.float64).reshape(-1)
    if colour_arr.size == 1:
        colour_arr = np.repeat(colour_arr, canvas.shape[0])
    if colour_arr.size != canvas.shape[0]:
        raise ValueError(f"colour has {colour_arr.size} channels, canvas has {canvas.shape[0]}")
    canvas *= 1.0 - alpha
    canvas += alpha * colour_arr[:, None, None]


def fill_disk(canvas: np.ndarray, cy: float, cx: float, radius: float, colour, opacity: float = 1.0) -> None:
    """Draw a filled disk of the given centre/radius."""
    ys, xs = coordinate_grid(canvas.shape[1], canvas.shape[2])
    distance = np.sqrt((ys - cy) ** 2 + (xs - cx) ** 2) - radius
    blend(canvas, _soft_mask(distance), colour, opacity)


def fill_ellipse(
    canvas: np.ndarray,
    cy: float,
    cx: float,
    ry: float,
    rx: float,
    colour,
    angle: float = 0.0,
    opacity: float = 1.0,
) -> None:
    """Draw a filled, optionally rotated ellipse."""
    if ry <= 0 or rx <= 0:
        raise ValueError(f"ellipse radii must be positive, got ({ry}, {rx})")
    ys, xs = coordinate_grid(canvas.shape[1], canvas.shape[2])
    dy, dx = ys - cy, xs - cx
    rot_y = dy * np.cos(angle) - dx * np.sin(angle)
    rot_x = dy * np.sin(angle) + dx * np.cos(angle)
    # Approximate signed distance: scaled radial distance minus 1, rescaled.
    radial = np.sqrt((rot_y / ry) ** 2 + (rot_x / rx) ** 2)
    distance = (radial - 1.0) * min(ry, rx)
    blend(canvas, _soft_mask(distance), colour, opacity)


def fill_rectangle(
    canvas: np.ndarray, top: float, left: float, bottom: float, right: float, colour, opacity: float = 1.0
) -> None:
    """Draw a filled axis-aligned rectangle ``[top, bottom] x [left, right]``."""
    ys, xs = coordinate_grid(canvas.shape[1], canvas.shape[2])
    cy, cx = (top + bottom) / 2.0, (left + right) / 2.0
    hy, hx = (bottom - top) / 2.0, (right - left) / 2.0
    distance = np.maximum(np.abs(ys - cy) - hy, np.abs(xs - cx) - hx)
    blend(canvas, _soft_mask(distance), colour, opacity)


def fill_polygon(canvas: np.ndarray, vertices: np.ndarray, colour, opacity: float = 1.0) -> None:
    """Draw a filled convex polygon given ``(V, 2)`` vertices as (y, x).

    Uses the intersection of half-plane signed distances, which is exact
    for convex vertex orderings (either orientation is accepted).
    """
    vertices = np.asarray(vertices, dtype=np.float64)
    if vertices.ndim != 2 or vertices.shape[0] < 3 or vertices.shape[1] != 2:
        raise ValueError(f"vertices must be (V>=3, 2), got shape {vertices.shape}")
    ys, xs = coordinate_grid(canvas.shape[1], canvas.shape[2])
    # Ensure counter-clockwise orientation via the shoelace formula.
    area = 0.0
    for i in range(len(vertices)):
        y0, x0 = vertices[i]
        y1, x1 = vertices[(i + 1) % len(vertices)]
        area += x0 * y1 - x1 * y0
    if area < 0:
        vertices = vertices[::-1]
    distance = np.full(ys.shape, -np.inf)
    for i in range(len(vertices)):
        y0, x0 = vertices[i]
        y1, x1 = vertices[(i + 1) % len(vertices)]
        edge = np.array([y1 - y0, x1 - x0])
        length = np.linalg.norm(edge)
        if length < 1e-9:
            continue
        # Outward normal of a CCW edge in (y, x) coordinates.
        normal = np.array([-edge[1], edge[0]]) / length
        distance = np.maximum(distance, (ys - y0) * normal[0] + (xs - x0) * normal[1])
    blend(canvas, _soft_mask(distance), colour, opacity)


def draw_line(
    canvas: np.ndarray,
    y0: float,
    x0: float,
    y1: float,
    x1: float,
    thickness: float,
    colour,
    opacity: float = 1.0,
) -> None:
    """Draw a line segment with round caps and the given thickness."""
    ys, xs = coordinate_grid(canvas.shape[1], canvas.shape[2])
    dy, dx = y1 - y0, x1 - x0
    length_sq = dy * dy + dx * dx
    if length_sq < 1e-12:
        fill_disk(canvas, y0, x0, thickness / 2, colour, opacity)
        return
    t = np.clip(((ys - y0) * dy + (xs - x0) * dx) / length_sq, 0.0, 1.0)
    proj_y = y0 + t * dy
    proj_x = x0 + t * dx
    distance = np.sqrt((ys - proj_y) ** 2 + (xs - proj_x) ** 2) - thickness / 2.0
    blend(canvas, _soft_mask(distance), colour, opacity)


def fill_ring(
    canvas: np.ndarray, cy: float, cx: float, radius: float, thickness: float, colour, opacity: float = 1.0
) -> None:
    """Draw an annulus (circle outline) of the given radius and thickness."""
    ys, xs = coordinate_grid(canvas.shape[1], canvas.shape[2])
    distance = np.abs(np.sqrt((ys - cy) ** 2 + (xs - cx) ** 2) - radius) - thickness / 2.0
    blend(canvas, _soft_mask(distance), colour, opacity)
