"""Histogram-of-Oriented-Gradients descriptor (Dalal & Triggs, 2005).

Used as the classical-vision ablation baseline in Table 1 ("HoG"
column): images are described by HOG vectors and pairwise cosine
similarity between descriptors forms the affinity matrix
(§5.1.5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.vision.image import to_grayscale

__all__ = ["HOGConfig", "hog_descriptor", "hog_batch"]


@dataclass(frozen=True)
class HOGConfig:
    """HOG hyper-parameters (defaults follow the original paper).

    Attributes:
        cell_size: pixels per (square) cell.
        block_size: cells per (square) normalisation block.
        n_bins: orientation bins over [0, 180) degrees (unsigned).
        block_stride: cells between adjacent blocks (1 = dense overlap).
        eps: numerical floor inside block L2 normalisation.
        clip: L2-Hys clipping threshold.
    """

    cell_size: int = 8
    block_size: int = 2
    n_bins: int = 9
    block_stride: int = 1
    eps: float = 1e-6
    clip: float = 0.2


def _cell_histograms(gray: np.ndarray, config: HOGConfig) -> np.ndarray:
    """Per-cell orientation histograms for one ``(H, W)`` grayscale image."""
    h, w = gray.shape
    cs = config.cell_size
    n_cy, n_cx = h // cs, w // cs
    if n_cy < 1 or n_cx < 1:
        raise ValueError(f"image {h}x{w} smaller than one {cs}x{cs} cell")
    # Central-difference gradients with replicated borders.
    padded = np.pad(gray, 1, mode="edge")
    gx = 0.5 * (padded[1:-1, 2:] - padded[1:-1, :-2])
    gy = 0.5 * (padded[2:, 1:-1] - padded[:-2, 1:-1])
    magnitude = np.sqrt(gx**2 + gy**2)
    # Unsigned orientation in [0, pi).
    orientation = np.mod(np.arctan2(gy, gx), np.pi)

    bin_width = np.pi / config.n_bins
    position = orientation / bin_width - 0.5
    lower_bin = np.floor(position).astype(np.int64)
    upper_frac = position - lower_bin
    lower_bin_mod = np.mod(lower_bin, config.n_bins)
    upper_bin_mod = np.mod(lower_bin + 1, config.n_bins)

    histograms = np.zeros((n_cy, n_cx, config.n_bins))
    trimmed = lambda a: a[: n_cy * cs, : n_cx * cs]  # noqa: E731 - tiny local alias
    mag = trimmed(magnitude).reshape(n_cy, cs, n_cx, cs)
    low_b = trimmed(lower_bin_mod).reshape(n_cy, cs, n_cx, cs)
    up_b = trimmed(upper_bin_mod).reshape(n_cy, cs, n_cx, cs)
    up_f = trimmed(upper_frac).reshape(n_cy, cs, n_cx, cs)
    for b in range(config.n_bins):
        low_contrib = np.where(low_b == b, mag * (1.0 - up_f), 0.0)
        up_contrib = np.where(up_b == b, mag * up_f, 0.0)
        histograms[:, :, b] = (low_contrib + up_contrib).sum(axis=(1, 3))
    return histograms


def hog_descriptor(image: np.ndarray, config: HOGConfig | None = None) -> np.ndarray:
    """HOG descriptor of a single ``(C, H, W)`` image as a 1-D vector.

    Cells are grouped into overlapping blocks, each block is
    L2-Hys-normalised (L2 norm, clip, renormalise) and all block vectors
    are concatenated.
    """
    config = config or HOGConfig()
    if image.ndim != 3:
        raise ValueError(f"image must be (C, H, W), got shape {image.shape}")
    gray = to_grayscale(image[None])[0, 0]
    cells = _cell_histograms(gray, config)
    n_cy, n_cx, _ = cells.shape
    bs, stride = config.block_size, config.block_stride
    if n_cy < bs or n_cx < bs:
        raise ValueError(f"image has {n_cy}x{n_cx} cells, smaller than a {bs}x{bs} block")
    blocks: list[np.ndarray] = []
    for by in range(0, n_cy - bs + 1, stride):
        for bx in range(0, n_cx - bs + 1, stride):
            block = cells[by : by + bs, bx : bx + bs].reshape(-1)
            norm = np.sqrt((block**2).sum() + config.eps**2)
            block = np.minimum(block / norm, config.clip)
            norm = np.sqrt((block**2).sum() + config.eps**2)
            blocks.append(block / norm)
    return np.concatenate(blocks)


def hog_batch(images: np.ndarray, config: HOGConfig | None = None) -> np.ndarray:
    """HOG descriptors for an ``(N, C, H, W)`` batch, shape ``(N, D)``."""
    config = config or HOGConfig()
    descriptors = [hog_descriptor(image, config) for image in images]
    return np.stack(descriptors)
