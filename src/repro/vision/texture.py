"""Procedural textures for the synthetic dataset generators.

These produce ``(H, W)`` float fields in [0, 1] (unless noted) that are
composited into images by the generators: band-limited value noise (a
Perlin-style fractal), oriented gratings for brushed-metal surfaces,
and multiplicative speckle for X-ray-like film grain.
"""

from __future__ import annotations

import numpy as np

from repro.vision.image import gaussian_blur

__all__ = ["value_noise", "fractal_noise", "grating", "speckle", "vignette"]


def value_noise(height: int, width: int, cells: int, rng: np.random.Generator) -> np.ndarray:
    """Smooth value noise: random grid values, bilinearly upsampled.

    ``cells`` controls the spatial frequency (number of lattice cells
    per image side).  The result is rescaled to [0, 1].
    """
    if cells < 1:
        raise ValueError(f"cells must be >= 1, got {cells}")
    lattice = rng.random((cells + 1, cells + 1))
    ys = np.linspace(0, cells, height)
    xs = np.linspace(0, cells, width)
    y0 = np.minimum(ys.astype(np.int64), cells - 1)
    x0 = np.minimum(xs.astype(np.int64), cells - 1)
    fy = (ys - y0)[:, None]
    fx = (xs - x0)[None, :]
    # Smoothstep fade for C1 continuity at cell borders.
    fy = fy * fy * (3 - 2 * fy)
    fx = fx * fx * (3 - 2 * fx)
    v00 = lattice[np.ix_(y0, x0)]
    v01 = lattice[np.ix_(y0, x0 + 1)]
    v10 = lattice[np.ix_(y0 + 1, x0)]
    v11 = lattice[np.ix_(y0 + 1, x0 + 1)]
    top = v00 * (1 - fx) + v01 * fx
    bottom = v10 * (1 - fx) + v11 * fx
    field = top * (1 - fy) + bottom * fy
    lo, hi = field.min(), field.max()
    if hi - lo < 1e-12:
        return np.full((height, width), 0.5)
    return (field - lo) / (hi - lo)


def fractal_noise(
    height: int,
    width: int,
    rng: np.random.Generator,
    octaves: int = 4,
    base_cells: int = 2,
    persistence: float = 0.55,
) -> np.ndarray:
    """Sum of value-noise octaves with geometrically increasing frequency."""
    if octaves < 1:
        raise ValueError(f"octaves must be >= 1, got {octaves}")
    field = np.zeros((height, width))
    amplitude = 1.0
    total = 0.0
    for octave in range(octaves):
        cells = base_cells * (2**octave)
        field += amplitude * value_noise(height, width, cells, rng)
        total += amplitude
        amplitude *= persistence
    field /= total
    lo, hi = field.min(), field.max()
    if hi - lo < 1e-12:
        return np.full((height, width), 0.5)
    return (field - lo) / (hi - lo)


def grating(
    height: int,
    width: int,
    wavelength: float,
    angle: float,
    phase: float = 0.0,
) -> np.ndarray:
    """Sinusoidal grating in [0, 1] with the given wavelength/orientation."""
    if wavelength <= 0:
        raise ValueError(f"wavelength must be positive, got {wavelength}")
    ys, xs = np.mgrid[0:height, 0:width].astype(np.float64)
    carrier = np.cos(2 * np.pi * (ys * np.sin(angle) + xs * np.cos(angle)) / wavelength + phase)
    return 0.5 * (carrier + 1.0)


def speckle(
    height: int, width: int, rng: np.random.Generator, grain: float = 1.0, sigma: float = 0.0
) -> np.ndarray:
    """Multiplicative speckle field with unit mean.

    ``grain`` scales the noise amplitude; ``sigma`` optionally blurs the
    field to produce correlated (coarse) speckle.
    """
    field = 1.0 + grain * (rng.random((height, width)) - 0.5)
    if sigma > 0:
        field = gaussian_blur(field[None, None], sigma)[0, 0]
    return np.clip(field, 0.0, None)


def vignette(height: int, width: int, strength: float = 0.5) -> np.ndarray:
    """Radial darkening mask in [1-strength, 1], brightest at the centre."""
    ys, xs = np.mgrid[0:height, 0:width].astype(np.float64)
    cy, cx = (height - 1) / 2.0, (width - 1) / 2.0
    radius = np.sqrt(((ys - cy) / max(cy, 1)) ** 2 + ((xs - cx) / max(cx, 1)) ** 2) / np.sqrt(2)
    return 1.0 - strength * np.clip(radius, 0.0, 1.0) ** 2
