"""Training loop for discriminative end models (paper §5.5 protocol).

Probabilistic labels from a labeling system become the training signal
for a downstream classifier on frozen backbone features; performance is
measured on a held-out test split.  The supervised upper bound uses the
ground-truth training labels instead (§5.1.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.endmodel.head import LinearHead, MLPHead, softmax_cross_entropy
from repro.endmodel.optim import Adam
from repro.utils.rng import spawn_rng
from repro.utils.validation import check_array, check_probabilities

__all__ = ["TrainConfig", "TrainResult", "train_head", "one_hot"]


@dataclass(frozen=True)
class TrainConfig:
    """End-model training hyper-parameters (paper: Adam, lr 1e-3).

    Attributes:
        epochs: passes over the training features.
        batch_size: minibatch size (capped at the dataset size).
        learning_rate: Adam step size.
        l2: weight decay strength.
        hidden: hidden width for the MLP head; 0 selects a linear head.
        seed: initialisation/shuffling seed.
    """

    epochs: int = 120
    batch_size: int = 32
    learning_rate: float = 1e-3
    l2: float = 1e-4
    hidden: int = 64
    seed: int = 0


@dataclass(frozen=True)
class TrainResult:
    """A trained head plus its loss trajectory."""

    head: LinearHead | MLPHead
    losses: tuple[float, ...]

    @property
    def final_loss(self) -> float:
        return self.losses[-1]


def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Integer labels -> one-hot soft-label matrix."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.min() < 0 or labels.max() >= n_classes:
        raise ValueError(f"labels out of range for n_classes={n_classes}")
    out = np.zeros((labels.size, n_classes))
    out[np.arange(labels.size), labels] = 1.0
    return out


def train_head(
    features: np.ndarray,
    soft_labels: np.ndarray,
    config: TrainConfig | None = None,
) -> TrainResult:
    """Train a classification head on frozen features.

    ``soft_labels`` may be probabilistic (from a labeling system) or
    one-hot (supervised upper bound); the loss is the expected
    cross-entropy either way.
    """
    config = config or TrainConfig()
    features = check_array(np.asarray(features, dtype=np.float64), name="features", ndim=2)
    soft_labels = check_probabilities(soft_labels, axis=1, name="soft_labels")
    if features.shape[0] != soft_labels.shape[0]:
        raise ValueError("features and soft_labels must have the same number of rows")
    n, d = features.shape
    k = soft_labels.shape[1]

    if config.hidden > 0:
        head: LinearHead | MLPHead = MLPHead(d, k, hidden=config.hidden, seed=config.seed)
    else:
        head = LinearHead(d, k, seed=config.seed)
    optimiser = Adam(learning_rate=config.learning_rate)
    rng = spawn_rng(config.seed, "end-model-shuffle")
    batch = min(config.batch_size, n)

    losses: list[float] = []
    for _ in range(config.epochs):
        order = rng.permutation(n)
        for start in range(0, n, batch):
            idx = order[start : start + batch]
            _, grads = head.loss_and_grads(features[idx], soft_labels[idx], l2=config.l2)
            optimiser.step(head.parameters, grads)
        losses.append(softmax_cross_entropy(head.logits(features), soft_labels))
    return TrainResult(head=head, losses=tuple(losses))
