"""Downstream discriminative models trained on (probabilistic) labels."""

from repro.endmodel.head import LinearHead, MLPHead, softmax_cross_entropy
from repro.endmodel.optim import SGD, Adam
from repro.endmodel.train import TrainConfig, TrainResult, one_hot, train_head

__all__ = [
    "LinearHead",
    "MLPHead",
    "softmax_cross_entropy",
    "SGD",
    "Adam",
    "TrainConfig",
    "TrainResult",
    "one_hot",
    "train_head",
]
