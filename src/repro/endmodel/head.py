"""Trainable classification heads over frozen backbone features.

The paper's end models "use the VGG-16 as the downstream ML model
architecture, and tune the weights of the last fully connected layers"
(§5.5).  We freeze the (surrogate-pretrained) backbone and train a new
fully connected head with analytic gradients; the MLP variant mirrors
"the fully connected layers", the linear variant is the FSL Baseline's
classifier.

Training minimises the expected cross-entropy under probabilistic
labels, θ̂ = argmin Σ_i E_{y~ỹ_i}[l(h_θ(x_i), y)] (§2.1) — for one-hot
labels this reduces to ordinary cross-entropy.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.utils.rng import spawn_rng
from repro.utils.validation import check_array, check_probabilities

__all__ = ["LinearHead", "MLPHead", "softmax_cross_entropy"]


def softmax_cross_entropy(logits: np.ndarray, soft_labels: np.ndarray) -> float:
    """Mean expected cross-entropy of ``logits`` against soft labels."""
    log_probs = F.log_softmax(logits, axis=1)
    return float(-(soft_labels * log_probs).sum(axis=1).mean())


class LinearHead:
    """Single affine layer + softmax with closed-form gradients."""

    def __init__(self, in_features: int, n_classes: int, seed: int = 0, weight_scale: float = 0.01):
        if in_features < 1 or n_classes < 2:
            raise ValueError(f"invalid head shape ({in_features}, {n_classes})")
        rng = spawn_rng(seed, "linear-head")
        self.weight = weight_scale * rng.standard_normal((n_classes, in_features))
        self.bias = np.zeros(n_classes)

    @property
    def parameters(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    def logits(self, x: np.ndarray) -> np.ndarray:
        return x @ self.weight.T + self.bias

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return F.softmax(self.logits(x), axis=1)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.logits(x).argmax(axis=1)

    def loss_and_grads(
        self, x: np.ndarray, soft_labels: np.ndarray, l2: float = 0.0
    ) -> tuple[float, list[np.ndarray]]:
        """Expected CE loss and gradients w.r.t. (weight, bias).

        d/dz of softmax-CE with soft targets is ``softmax(z) - target``.
        """
        x = check_array(x, name="features", ndim=2)
        soft_labels = check_probabilities(soft_labels, axis=1, name="soft_labels")
        n = x.shape[0]
        logits = self.logits(x)
        probs = F.softmax(logits, axis=1)
        loss = softmax_cross_entropy(logits, soft_labels)
        delta = (probs - soft_labels) / n
        grad_w = delta.T @ x
        grad_b = delta.sum(axis=0)
        if l2 > 0:
            loss += 0.5 * l2 * float((self.weight**2).sum())
            grad_w = grad_w + l2 * self.weight
        return loss, [grad_w, grad_b]


class MLPHead:
    """Two-layer (hidden ReLU) head, mirroring VGG's fc6/fc7-style stack."""

    def __init__(
        self,
        in_features: int,
        n_classes: int,
        hidden: int = 64,
        seed: int = 0,
    ):
        if hidden < 1:
            raise ValueError(f"hidden must be >= 1, got {hidden}")
        rng = spawn_rng(seed, "mlp-head")
        scale1 = np.sqrt(2.0 / in_features)
        scale2 = np.sqrt(2.0 / hidden)
        self.w1 = scale1 * rng.standard_normal((hidden, in_features))
        self.b1 = np.zeros(hidden)
        self.w2 = scale2 * rng.standard_normal((n_classes, hidden))
        self.b2 = np.zeros(n_classes)

    @property
    def parameters(self) -> list[np.ndarray]:
        return [self.w1, self.b1, self.w2, self.b2]

    def _forward(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        hidden = F.relu(x @ self.w1.T + self.b1)
        return hidden, hidden @ self.w2.T + self.b2

    def logits(self, x: np.ndarray) -> np.ndarray:
        return self._forward(x)[1]

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return F.softmax(self.logits(x), axis=1)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.logits(x).argmax(axis=1)

    def loss_and_grads(
        self, x: np.ndarray, soft_labels: np.ndarray, l2: float = 0.0
    ) -> tuple[float, list[np.ndarray]]:
        """Expected CE loss and gradients w.r.t. all four parameters."""
        x = check_array(x, name="features", ndim=2)
        soft_labels = check_probabilities(soft_labels, axis=1, name="soft_labels")
        n = x.shape[0]
        hidden, logits = self._forward(x)
        probs = F.softmax(logits, axis=1)
        loss = softmax_cross_entropy(logits, soft_labels)
        delta2 = (probs - soft_labels) / n
        grad_w2 = delta2.T @ hidden
        grad_b2 = delta2.sum(axis=0)
        delta1 = (delta2 @ self.w2) * (hidden > 0)
        grad_w1 = delta1.T @ x
        grad_b1 = delta1.sum(axis=0)
        if l2 > 0:
            loss += 0.5 * l2 * float((self.w1**2).sum() + (self.w2**2).sum())
            grad_w1 = grad_w1 + l2 * self.w1
            grad_w2 = grad_w2 + l2 * self.w2
        return loss, [grad_w1, grad_b1, grad_w2, grad_b2]
