"""Optimisers for the trainable heads (closed-form-gradient training).

The paper trains FSL models and end models "with the Adam optimizer
with a learning rate of 10^-3" (§5.1.3); this module provides that Adam
plus plain SGD for comparison.  There is no autograd in this repo —
gradients are computed analytically by the heads — so optimisers just
consume (param, grad) pairs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Adam", "SGD"]


class SGD:
    """Vanilla stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 1e-2, momentum: float = 0.0):
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: dict[int, np.ndarray] = {}

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        """Update ``params`` in place given aligned ``grads``."""
        if len(params) != len(grads):
            raise ValueError("params and grads must align")
        for i, (param, grad) in enumerate(zip(params, grads)):
            if self.momentum > 0:
                velocity = self._velocity.setdefault(i, np.zeros_like(param))
                velocity *= self.momentum
                velocity -= self.learning_rate * grad
                param += velocity
            else:
                param -= self.learning_rate * grad


class Adam:
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("beta1/beta2 must be in [0, 1)")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        """Update ``params`` in place given aligned ``grads``."""
        if len(params) != len(grads):
            raise ValueError("params and grads must align")
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for i, (param, grad) in enumerate(zip(params, grads)):
            m = self._m.setdefault(i, np.zeros_like(param))
            v = self._v.setdefault(i, np.zeros_like(param))
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad**2
            param -= self.learning_rate * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
