"""Few-shot learning baseline (Chen et al. 2019 "Baseline")."""

from repro.fsl.baseline import FSLBaseline, FSLConfig

__all__ = ["FSLBaseline", "FSLConfig"]
