"""Few-shot learning Baseline (Chen et al., ICLR 2019) — paper §5.1.3.

The "Baseline" method the paper compares against: take a network
pretrained on a source domain, freeze the feature extractor, and train
a new linear classifier on the few labeled support examples (here the
same 5-per-class development set GOGGLES uses), with Adam at lr 1e-3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import DevSet
from repro.endmodel.head import LinearHead
from repro.endmodel.optim import Adam
from repro.endmodel.train import one_hot
from repro.nn.vgg import VGG16
from repro.utils.validation import check_images

__all__ = ["FSLConfig", "FSLBaseline"]


@dataclass(frozen=True)
class FSLConfig:
    """Hyper-parameters of the FSL Baseline fine-tuning stage.

    Attributes:
        epochs: full-batch gradient steps on the support set (tiny, so
            full batch is the natural choice).
        learning_rate: Adam step size (paper: 1e-3).
        l2: weight decay on the linear classifier.
        seed: classifier initialisation seed.
    """

    epochs: int = 300
    learning_rate: float = 1e-3
    l2: float = 1e-3
    seed: int = 0


class FSLBaseline:
    """Frozen backbone + linear classifier trained on the support set."""

    def __init__(self, model: VGG16, n_classes: int, config: FSLConfig | None = None):
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        self.model = model
        self.n_classes = n_classes
        self.config = config or FSLConfig()
        self._head: LinearHead | None = None

    def fit(self, images: np.ndarray, dev_set: DevSet) -> "FSLBaseline":
        """Fine-tune the classifier on the dev (support) examples."""
        images = check_images(images)
        if dev_set.size == 0:
            raise ValueError("FSL Baseline needs a non-empty support set")
        support = self.model.embed(images[dev_set.indices])
        targets = one_hot(dev_set.labels, self.n_classes)
        head = LinearHead(support.shape[1], self.n_classes, seed=self.config.seed)
        optimiser = Adam(learning_rate=self.config.learning_rate)
        for _ in range(self.config.epochs):
            _, grads = head.loss_and_grads(support, targets, l2=self.config.l2)
            optimiser.step(head.parameters, grads)
        self._head = head
        return self

    def predict_proba(self, images: np.ndarray) -> np.ndarray:
        if self._head is None:
            raise RuntimeError("FSLBaseline must be fitted before predicting")
        return self._head.predict_proba(self.model.embed(check_images(images)))

    def predict(self, images: np.ndarray) -> np.ndarray:
        return self.predict_proba(images).argmax(axis=1)
