"""The coordinator: plan shards, serve workers, merge bit-identical results.

The coordinator is the distributed runtime's only stateful piece.  It
owns the lease-based :class:`~repro.distributed.queue.TaskQueue`, binds
the :class:`~repro.distributed.broker.Broker` socket, optionally spawns
local workers, and exposes the two stage-level operations the engines
need:

* :meth:`Coordinator.extract_pool_features` — stage 1: the corpus is
  cut at the serial chunked-batch boundaries, shipped as
  ``"extraction"`` shards (the worker rebuilds the deterministic
  backbone from its config), and the pool-feature chunks are
  concatenated back in corpus order — bit-identical to the serial
  chunked extraction.
* :meth:`Coordinator.best_similarities` — stage 2: the (images ×
  prototype-rows) grid is cut at the serial tile boundaries, shipped as
  ``"similarity"`` shards, and merged back into the exact array the
  serial kernel produces.
* :meth:`Coordinator.fit_base_models` — stage 4: one ``"base-fit"``
  shard per affinity function; every shard derives the same per-function
  seed stream as a serial fit, so posteriors are bit-identical no matter
  how many workers computed them, in what order, or after how many
  lease reassignments.

Construction is lazy and cheap — no socket is bound until the first
:meth:`run` (a fully cache-hot rerun never binds one at all), so a
``Goggles`` configured for distributed execution costs nothing until it
actually labels.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.inference.base_gmm import GMMFitResult
from repro.core.inference.hierarchical import HierarchicalConfig
from repro.distributed.broker import Broker
from repro.distributed.queue import PoisonShardError, ShardAutotuner, TaskQueue
from repro.distributed.tasks import (
    ShardPlanner,
    ShardTask,
    load_shard_result,
    unpack_gmm_result,
)
from repro.distributed.worker import (
    DEFAULT_FRAME_BYTES,
    DEFAULT_LEASE_BATCH,
    DEFAULT_POLL_INTERVAL_MAX,
    DEFAULT_STREAM_THRESHOLD,
    Worker,
    run_worker_process,
)
from repro.engine.cache import ArtifactCache
from repro.nn.vgg import VGGConfig
from repro.obs import MetricsRegistry, TelemetryMerger, default_registry

logger = logging.getLogger(__name__)

__all__ = [
    "DEFAULT_AUTHKEY",
    "default_authkey",
    "require_safe_authkey",
    "parse_address",
    "DistributedConfig",
    "Coordinator",
]

DEFAULT_AUTHKEY = "goggles-repro"

_WORKER_MODES = ("process", "thread")


def default_authkey() -> str:
    """The shared connection secret (override with ``GOGGLES_AUTHKEY``)."""
    return os.environ.get("GOGGLES_AUTHKEY", DEFAULT_AUTHKEY)


_LOOPBACK_HOSTS = ("127.0.0.1", "localhost", "::1")


def require_safe_authkey(host: str, authkey: str) -> None:
    """Refuse a routable endpoint secured only by the public default key.

    The transport unpickles peer messages after the HMAC handshake, so
    anyone who knows the authkey can execute code on the peer.  On
    loopback that is the local user either way; on a routable address
    the well-known built-in default would hand that power to the whole
    network, so a real secret is mandatory there.
    """
    if host not in _LOOPBACK_HOSTS and authkey == DEFAULT_AUTHKEY:
        raise ValueError(
            f"refusing the built-in default authkey on routable address {host!r}: "
            "the connection handshake gates arbitrary (pickle) payloads, so a "
            "public key means remote code execution — set GOGGLES_AUTHKEY or "
            "pass an explicit secret (CLI: --authkey)"
        )


def parse_address(spec: str) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` (port 0 = ephemeral)."""
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(f"broker address must look like host:port, got {spec!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"broker address must look like host:port, got {spec!r}") from None


@dataclass(frozen=True)
class DistributedConfig:
    """Configuration of one coordinator/worker session.

    Attributes:
        bind: ``host:port`` the broker listens on; port 0 binds an
            ephemeral port (read it back from ``Coordinator.address``).
            Bind a routable host to accept workers from other machines.
        authkey: shared HMAC secret for connection authentication;
            defaults to ``$GOGGLES_AUTHKEY`` or ``"goggles-repro"``.
        n_workers: local workers the coordinator spawns itself; 0 means
            every worker joins externally (``goggles-repro worker``).
        worker_mode: ``"process"`` (spawned subprocesses — true
            parallelism, the production shape) or ``"thread"``
            (in-process loops — cheap, mainly for tests and tiny runs).
        lease_timeout: seconds before an unresponsive worker's shard is
            reassigned.
        max_attempts: lease grants per shard before it is poisoned.
        run_timeout: overall deadline for one :meth:`Coordinator.run`;
            ``None`` waits forever.
        worker_poll_interval: initial idle poll period of spawned
            workers (they back off exponentially up to
            ``worker_poll_max`` while the queue stays idle).
        worker_poll_max: ceiling of the idle backoff.
        lease_batch: most shards one worker ``lease_many`` round-trip
            may request; the queue's autotuner usually grants fewer
            (about ``lease_target_seconds`` of estimated compute).
            1 restores one-shard-per-round-trip.
        lease_target_seconds: compute seconds one lease grant aims to
            carry once the autotuner has calibrated a shard kind.
        stream_threshold: result size (payload array bytes) above which
            spawned workers stream a shard result back as framed
            sub-messages instead of one monolithic message; below it
            results batch into ``report_many`` uploads.  0 streams
            everything.
        frame_bytes: frame size of a streamed result.
        straggler_factor: a completed shard whose worker-measured
            compute exceeded this multiple of the autotuner's EWMA
            estimate for its kind is counted as a straggler
            (``goggles_stragglers_total{kind}``) and logged with shard
            id and worker.
        close_join_timeout: seconds :meth:`Coordinator.close` waits for
            each worker thread/process (and the broker's threads) to
            join before giving up with a warning instead of hanging.
    """

    bind: str = "127.0.0.1:0"
    authkey: str = field(default_factory=default_authkey)
    n_workers: int = 0
    worker_mode: str = "process"
    lease_timeout: float = 30.0
    max_attempts: int = 3
    run_timeout: float | None = 600.0
    worker_poll_interval: float = 0.02
    worker_poll_max: float = DEFAULT_POLL_INTERVAL_MAX
    lease_batch: int = DEFAULT_LEASE_BATCH
    lease_target_seconds: float = 0.1
    stream_threshold: int = DEFAULT_STREAM_THRESHOLD
    frame_bytes: int = DEFAULT_FRAME_BYTES
    straggler_factor: float = 4.0
    close_join_timeout: float = 5.0

    def __post_init__(self) -> None:
        parse_address(self.bind)  # fail fast on malformed addresses
        if self.n_workers < 0:
            raise ValueError(f"n_workers must be >= 0, got {self.n_workers}")
        if self.worker_mode not in _WORKER_MODES:
            raise ValueError(f"worker_mode must be one of {_WORKER_MODES}, got {self.worker_mode!r}")
        if self.run_timeout is not None and self.run_timeout <= 0:
            raise ValueError(f"run_timeout must be > 0, got {self.run_timeout}")
        if self.worker_poll_max < self.worker_poll_interval:
            raise ValueError(
                f"worker_poll_max ({self.worker_poll_max}) must be >= "
                f"worker_poll_interval ({self.worker_poll_interval})"
            )
        if self.lease_batch < 1:
            raise ValueError(f"lease_batch must be >= 1, got {self.lease_batch}")
        if self.lease_target_seconds <= 0:
            raise ValueError(f"lease_target_seconds must be > 0, got {self.lease_target_seconds}")
        if self.stream_threshold < 0:
            raise ValueError(f"stream_threshold must be >= 0, got {self.stream_threshold}")
        if self.frame_bytes < 1:
            raise ValueError(f"frame_bytes must be >= 1, got {self.frame_bytes}")
        if self.straggler_factor <= 1.0:
            raise ValueError(f"straggler_factor must be > 1, got {self.straggler_factor}")
        if self.close_join_timeout <= 0:
            raise ValueError(f"close_join_timeout must be > 0, got {self.close_join_timeout}")


class Coordinator:
    """Coordinator/worker session over the fault-tolerant task queue.

    A ``persistent=True`` coordinator ignores plain :meth:`close` calls
    (``close(force=True)`` still shuts it down) so it can be shared
    across consecutive ``Goggles``/engine runs — the warm-pool shape
    that :class:`repro.distributed.pool.WorkerPool` wraps.  Workers and
    the broker socket survive between runs; spawned worker processes
    keep their imported modules and memoised VGG backbone, which is
    most of what a cold run pays for.
    """

    def __init__(
        self,
        config: DistributedConfig | None = None,
        *,
        cache: ArtifactCache | None = None,
        persistent: bool = False,
        registry: MetricsRegistry | None = None,
    ):
        self.config = config or DistributedConfig()
        self.cache = cache
        self.persistent = bool(persistent)
        self.registry = registry if registry is not None else default_registry()
        self.queue = TaskQueue(
            lease_timeout=self.config.lease_timeout,
            max_attempts=self.config.max_attempts,
            autotuner=ShardAutotuner(target_lease_seconds=self.config.lease_target_seconds),
            registry=self.registry,
            straggler_factor=self.config.straggler_factor,
        )
        # Worker-shipped telemetry lands in the same registry /metrics
        # scrapes, so goggles_worker_* families from spawned processes
        # appear next to the coordinator-side ones.
        self.merger = TelemetryMerger(self.registry)
        self._broker: Broker | None = None
        self._thread_workers: list[tuple[Worker, threading.Thread]] = []
        self._processes: list[multiprocessing.process.BaseProcess] = []
        self._closed = False
        self.stats = {
            "runs": 0,
            "shards_planned": 0,
            "cache_hits": 0,
            "workers_spawned": 0,
            "cache_writebacks": 0,
        }
        self._m_spawned = self.registry.counter(
            "goggles_pool_workers_spawned_total", "Local workers spawned by coordinators."
        )
        self._m_writebacks = self.registry.counter(
            "goggles_pool_cache_writebacks_total", "Shard results written back into the artifact cache."
        )
        self._m_close_timeouts = self.registry.counter(
            "goggles_pool_close_join_timeouts_total",
            "Worker threads/processes that failed to join within close()'s timeout.",
        )

    @classmethod
    def for_engine(
        cls,
        *,
        broker: str | None = None,
        n_workers: int = 0,
        n_jobs: int = 1,
        cache: ArtifactCache | None = None,
    ) -> "Coordinator":
        """The coordinator implied by engine-level knobs.

        An explicit ``broker`` address binds there and trusts
        ``n_workers`` as given (0 = all workers join externally).
        Without one, ``executor="distributed"`` should still just work:
        bind an ephemeral localhost port and spawn ``n_workers`` (or,
        when that is 0, ``n_jobs``) local workers — a one-knob local
        cluster.
        """
        if broker is None and n_workers == 0:
            n_workers = max(1, n_jobs)
        return cls(
            DistributedConfig(bind=broker or "127.0.0.1:0", n_workers=n_workers),
            cache=cache,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._broker is not None

    @property
    def address(self) -> tuple[str, int]:
        """The broker's bound (host, port); starts the session."""
        self.start()
        assert self._broker is not None
        return self._broker.address

    def start(self) -> "Coordinator":
        """Bind the broker and spawn local workers. Idempotent."""
        if self._closed:
            raise RuntimeError("coordinator is closed")
        if self._broker is not None:
            return self
        bind = parse_address(self.config.bind)
        require_safe_authkey(bind[0], self.config.authkey)
        self._broker = Broker(self.queue, bind=bind, authkey=self.config.authkey, merger=self.merger)
        for index in range(self.config.n_workers):
            self._spawn_worker(index)
        return self

    def _spawn_worker(self, index: int) -> None:
        assert self._broker is not None
        host, port = self._broker.address
        self.stats["workers_spawned"] += 1
        self._m_spawned.inc()
        if self.config.worker_mode == "thread":
            worker = Worker(
                (host, port),
                self.config.authkey,
                cache=self.cache,
                worker_id=f"local-thread-{index}",
                poll_interval=self.config.worker_poll_interval,
                poll_interval_max=self.config.worker_poll_max,
                lease_batch=self.config.lease_batch,
                stream_threshold=self.config.stream_threshold,
                frame_bytes=self.config.frame_bytes,
                # In-thread workers share the coordinator's registry
                # (and do NOT ship telemetry — that would double-count).
                registry=self.registry,
            )
            thread = threading.Thread(target=worker.run, name=f"goggles-worker-{index}", daemon=True)
            thread.start()
            self._thread_workers.append((worker, thread))
        else:
            # Spawn (not fork): the broker's accept thread is already
            # running, and forked children would inherit its socket.
            context = multiprocessing.get_context("spawn")
            cache_dir = self.cache.cache_dir if self.cache is not None else None
            cache_max_bytes = self.cache.max_bytes if self.cache is not None else None
            process = context.Process(
                target=run_worker_process,
                args=(
                    host,
                    port,
                    self.config.authkey,
                    cache_dir,
                    cache_max_bytes,
                    self.config.stream_threshold,
                    self.config.frame_bytes,
                    self.config.worker_poll_interval,
                    self.config.worker_poll_max,
                    self.config.lease_batch,
                ),
                name=f"goggles-worker-{index}",
                daemon=True,
            )
            process.start()
            self._processes.append(process)

    def close(self, *, force: bool = False) -> None:
        """Shut the session down: workers, broker, socket. Idempotent.

        A ``persistent`` coordinator ignores plain ``close()`` — that is
        the whole point of a warm pool: ``Goggles.close()`` and engine
        teardown may fire between runs without tearing the workers
        down.  The owning :class:`~repro.distributed.pool.WorkerPool`
        (or anyone holding the coordinator directly) passes
        ``force=True`` for the real shutdown.
        """
        if self.persistent and not force:
            return
        if self._closed:
            return
        self._closed = True
        timeout = self.config.close_join_timeout
        for worker, _ in self._thread_workers:
            worker.stop()
        if self._broker is not None:
            self._broker.close()
        for worker, thread in self._thread_workers:
            thread.join(timeout=timeout)
            if thread.is_alive():
                # Never hang a close: the thread is daemonic, so leak it
                # loudly (counter + log) and move on — e.g. a worker
                # blocked on a connect retry to a broker that died.
                self._m_close_timeouts.inc()
                logger.warning(
                    "worker thread %s did not join within %.1fs on close; leaking daemon thread",
                    thread.name, timeout,
                )
        for process in self._processes:
            process.terminate()
            process.join(timeout=timeout)
            if process.is_alive():  # pragma: no cover - last resort
                self._m_close_timeouts.inc()
                logger.warning(
                    "worker process %s (pid %s) did not join within %.1fs on close; killing",
                    process.name, process.pid, timeout,
                )
                process.kill()
        self._thread_workers.clear()
        self._processes.clear()

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Running shards
    # ------------------------------------------------------------------
    def run(self, tasks: list[ShardTask]) -> dict[str, dict]:
        """Execute shards on the cluster; returns ``{task_id: arrays}``.

        Shards whose content-addressed result already sits in the
        shared cache are resolved locally without touching the queue —
        a fully warm rerun never even binds the broker socket.  Raises
        :class:`PoisonShardError` when a shard exhausts its retry
        budget and :class:`TimeoutError` when ``run_timeout`` passes
        with shards incomplete (e.g. no worker ever connected).
        """
        if self._closed:
            raise RuntimeError("coordinator is closed")
        results: dict[str, dict] = {}
        outstanding: list[ShardTask] = []
        seen: set[str] = set()
        for task in tasks:
            if task.task_id in seen or task.task_id in results:
                continue
            seen.add(task.task_id)
            if self.cache is not None:
                cached = load_shard_result(self.cache, task)
                if cached is not None:
                    results[task.task_id] = cached
                    self.stats["cache_hits"] += 1
                    continue
            outstanding.append(task)
        self.stats["runs"] += 1
        self.stats["shards_planned"] += len(outstanding)
        if not outstanding:
            return results
        self.start()
        for task in outstanding:
            self.queue.add(task)
        ids = [task.task_id for task in outstanding]
        finished = self._wait(ids)
        poisoned = self.queue.poisoned_among(ids)
        if poisoned:
            worst = poisoned[0]
            self.queue.forget(ids)
            raise PoisonShardError(worst.task, worst.attempts, worst.errors)
        if not finished:
            incomplete = self.queue.outstanding(ids)
            self.queue.forget(ids)
            raise TimeoutError(
                f"distributed run timed out after {self.config.run_timeout}s with "
                f"{incomplete} shard(s) incomplete — are any workers connected to "
                f"{self._broker.address if self._broker else self.config.bind}?"
            )
        for task in outstanding:
            result = self.queue.result(task.task_id)
            assert result is not None
            results[task.task_id] = result
            if self.cache is not None and not self.cache.has("shard", task.task_id):
                # Coordinator-side write-back: workers with a mounted
                # cache already saved this, but cacheless (e.g. remote)
                # workers did not — persisting here makes a coordinator
                # restart resume a half-finished plan from `shard` cache
                # hits instead of recomputing.
                self.cache.save_arrays("shard", task.task_id, result)
                self.stats["cache_writebacks"] += 1
                self._m_writebacks.inc()
        self.queue.forget(ids)
        return results

    def as_coordinator(self) -> "Coordinator":
        """Uniform unwrap: engines accept a Coordinator or a WorkerPool."""
        return self

    def _wait(self, ids: list[str]) -> bool:
        """Wait for shards in slices, watching local-cluster liveness."""
        deadline = None if self.config.run_timeout is None else time.monotonic() + self.config.run_timeout
        while True:
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                return False
            step = 0.5 if remaining is None else min(0.5, remaining)
            if self.queue.wait(ids, timeout=step):
                return True
            self._check_local_cluster()

    def _check_local_cluster(self) -> None:
        """Fail fast when every local worker died and nobody else serves.

        Without this, a cluster whose auto-spawned workers crashed at
        startup (bad environment, import error) would sit silently
        until ``run_timeout``.  External workers joining through an
        explicit broker address keep the run alive.
        """
        spawned = bool(self._processes) or bool(self._thread_workers)
        if not spawned:
            return  # external-workers-only session: nothing to watch
        alive = any(p.is_alive() for p in self._processes) or any(
            t.is_alive() for _, t in self._thread_workers
        )
        if alive:
            return
        if self._broker is not None and self._broker.active_connections > 0:
            return  # external workers are serving
        exit_codes = [p.exitcode for p in self._processes]
        raise RuntimeError(
            f"all {len(self._processes) + len(self._thread_workers)} local worker(s) "
            f"exited (exit codes {exit_codes}) with shards still outstanding and no "
            "external workers connected to "
            f"{self._broker.address if self._broker else self.config.bind}; "
            "check the workers' stderr"
        )

    # ------------------------------------------------------------------
    # Stage-level operations (what the engines call)
    # ------------------------------------------------------------------
    def extract_pool_features(
        self,
        vgg_config: VGGConfig,
        images: np.ndarray,
        *,
        layers: tuple[int, ...],
        batch_size: int | None = 32,
    ) -> dict[int, np.ndarray]:
        """Distributed drop-in for :func:`repro.engine.features.extract_pool_features`.

        Merge invariant: the corpus is cut at the serial chunked-batch
        boundaries, every shard runs the serial per-chunk forward pass
        (the backbone is per-sample independent), and the chunks are
        concatenated back in corpus order — so the assembled
        ``{layer: (N, C_L, H_L, W_L)}`` mapping is bit-identical to a
        serial extraction at the same ``batch_size``, *strides
        included*: channels-last chunks travel as their contiguous
        ``(N, H, W, C)`` form and are re-viewed here, because the
        downstream similarity GEMM rounds by operand layout (see
        :func:`repro.distributed.tasks.extraction_task`).
        """
        layers = tuple(int(layer) for layer in layers)
        planner = ShardPlanner()
        tasks, order = planner.extraction_shards(vgg_config, images, layers, batch_size)
        results = self.run(tasks)
        chunks: dict[int, list[np.ndarray]] = {layer: [] for layer in layers}
        for task_id in order:
            arrays = results[task_id]
            for layer in layers:
                part = np.asarray(arrays[f"pool_{layer}"])
                if bool(arrays[f"channels_last_{layer}"]):
                    part = part.transpose(0, 3, 1, 2)  # restore the serial view
                chunks[layer].append(part)
        return {
            layer: parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)
            for layer, parts in chunks.items()
        }

    def best_similarities(
        self,
        prototypes: np.ndarray,
        unit_vectors: np.ndarray,
        *,
        row_tile: int | None = 32,
        col_tile: int | None = None,
        dtype: np.dtype | type = np.float64,
    ) -> np.ndarray:
        """Distributed drop-in for :func:`repro.engine.tiling.best_similarities`.

        Merge invariant: shards are cut at the serial tile boundaries
        and each computes the serial kernel's exact per-image matmuls,
        so the assembled array is bit-identical to a serial call.
        """
        planner = ShardPlanner(row_tile=row_tile, col_tile=col_tile)
        tasks, targets = planner.similarity_shards(prototypes, unit_vectors, dtype)
        results = self.run(tasks)
        out = np.empty((prototypes.shape[0], unit_vectors.shape[0]), dtype=np.float64)
        for task_id, slots in targets.items():
            best = results[task_id]["best"]
            for (i0, i1), (j0, j1) in slots:
                out[j0:j1, i0:i1] = best
        return out

    def fit_base_models(
        self,
        affinity,
        config: HierarchicalConfig,
        initializers: list[np.ndarray] | None = None,
    ) -> tuple[GMMFitResult, ...]:
        """Distributed stage-1 inference: one base-fit shard per function."""
        planner = ShardPlanner()
        tasks = planner.base_fit_shards(affinity, config, initializers)
        results = self.run(tasks)
        return tuple(unpack_gmm_result(results[task.task_id]) for task in tasks)
