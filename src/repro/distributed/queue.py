"""Lease-based fault-tolerant task queue (the broker's bookkeeping).

Workers *lease* shards rather than take them: every lease carries a
deadline, and a worker that dies, hangs, or disconnects mid-shard
simply lets its lease expire (disconnects release it immediately),
after which the shard goes back to the pending queue for the next
worker that asks.  Each grant consumes one unit of the shard's retry
budget; a shard that keeps burning budget is declared *poisoned* and
surfaced as a :class:`PoisonShardError` instead of being retried
forever — the escape hatch that turns a deterministic crash into a
clear, actionable error rather than a silently hung cluster.

Because shard tasks are pure and content-addressed, the at-least-once
execution this protocol implies is safe: a lease that expired because
its worker was merely *slow* may still complete later, and the (by
construction identical) result is accepted or ignored idempotently.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.distributed.tasks import ShardTask
from repro.obs import MetricsRegistry, default_registry

__all__ = ["PoisonShardError", "ShardAutotuner", "TaskQueue"]

logger = logging.getLogger(__name__)


class ShardAutotuner:
    """Calibrates how many shards one lease round-trip should carry.

    The per-shard compute of a run is unknown until shards complete, so
    the tuner starts conservative — one shard per lease — and re-plans
    from measurements: workers report each shard's compute seconds with
    its result, the tuner keeps a per-kind exponential moving average,
    and :meth:`plan` grants shards until their *estimated* combined
    compute reaches ``target_lease_seconds`` (default 100ms).  Tiny
    shards therefore batch aggressively (one round-trip carries dozens)
    while heavyweight extraction shards stay near one per lease, and a
    mixed queue gets a mixed batch that still lands near the target.

    Thread-safety is the caller's: :class:`TaskQueue` drives the tuner
    under its own condition lock.
    """

    def __init__(self, target_lease_seconds: float = 0.1, smoothing: float = 0.3):
        if target_lease_seconds <= 0:
            raise ValueError(f"target_lease_seconds must be > 0, got {target_lease_seconds}")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        self.target_lease_seconds = float(target_lease_seconds)
        self.smoothing = float(smoothing)
        self._seconds: dict[str, float] = {}  # kind -> EWMA of compute seconds
        self.n_observations = 0
        self._m_ewma = default_registry().gauge(
            "goggles_autotuner_lease_seconds_ewma",
            "Autotuner EWMA of per-shard compute seconds, by shard kind.",
            labelnames=("kind",),
        )

    def observe(self, kind: str, seconds: float) -> None:
        """Fold one completed shard's measured compute into the EWMA."""
        seconds = max(float(seconds), 0.0)
        previous = self._seconds.get(kind)
        if previous is None:
            self._seconds[kind] = seconds
        else:
            self._seconds[kind] = previous + self.smoothing * (seconds - previous)
        self.n_observations += 1
        self._m_ewma.set(self._seconds[kind], kind=kind)

    def estimate(self, kind: str) -> float | None:
        """EWMA compute seconds of one ``kind`` shard (``None`` = uncalibrated)."""
        return self._seconds.get(kind)

    def plan(self, kinds: Iterable[str], limit: int) -> int:
        """How many of the next pending shards to grant in one lease.

        ``kinds`` lists the pending shards in grant order; the count
        returned is the longest prefix whose estimated compute stays
        within ``target_lease_seconds`` — always at least one, never
        more than ``limit``, and exactly one for any kind that has no
        measurement yet (the calibration grant that produces one).
        """
        granted = 0
        budget = self.target_lease_seconds
        for kind in kinds:
            if granted >= limit:
                break
            estimate = self._seconds.get(kind)
            if estimate is None:
                # Uncalibrated kind: grant it alone so its measurement
                # arrives before anything batches behind a guess.
                return granted if granted else 1
            if granted and estimate > budget:
                break
            granted += 1
            budget -= estimate
        return max(granted, 1)


class PoisonShardError(RuntimeError):
    """A shard exhausted its retry budget; carries the failure history."""

    def __init__(self, task: ShardTask, attempts: int, errors: list[str]):
        self.task = task
        self.attempts = attempts
        self.errors = list(errors)
        last = self.errors[-1] if self.errors else "lease expired"
        super().__init__(
            f"shard {task.task_id[:12]} ({task.kind}) exceeded its retry budget "
            f"({attempts} attempts); last error: {last}"
        )


@dataclass
class _Tracked:
    """Book-keeping of one shard not yet completed.

    ``queued_at``/``leased_at`` are the shard's timeline: enqueue (or
    most recent requeue) and most recent lease grant, on the queue's
    clock.  Together with the worker-reported compute seconds they
    decompose a shard's life into queue-wait / compute / transfer.
    """

    task: ShardTask
    attempts: int = 0
    worker: str | None = None
    deadline: float | None = None
    errors: list[str] = field(default_factory=list)
    queued_at: float | None = None
    leased_at: float | None = None

    @property
    def leased(self) -> bool:
        return self.worker is not None


class TaskQueue:
    """Thread-safe shard queue with leases, retries, and poison shards.

    Parameters:
        lease_timeout: seconds a worker may hold a shard before it is
            presumed dead and the shard is reassigned.
        max_attempts: lease grants per shard before it is poisoned.
        clock: monotonic time source (injectable for tests).
        registry: metrics registry for the per-shard timeline
            histograms and straggler counter (default: process-wide).
        straggler_factor: a completed shard whose compute exceeded
            ``straggler_factor ×`` the autotuner's EWMA estimate for
            its kind (taken *before* folding in the new measurement) is
            counted in ``goggles_stragglers_total{kind}`` and logged
            with shard id and worker.
        straggler_min_seconds: absolute floor below which a shard is
            never a straggler (scheduler jitter on micro-shards is
            noise, not a sick worker).
    """

    def __init__(
        self,
        lease_timeout: float = 30.0,
        max_attempts: int = 3,
        clock: Callable[[], float] = time.monotonic,
        autotuner: ShardAutotuner | None = None,
        registry: MetricsRegistry | None = None,
        straggler_factor: float = 4.0,
        straggler_min_seconds: float = 0.05,
    ):
        if lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be > 0, got {lease_timeout}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if straggler_factor <= 1.0:
            raise ValueError(f"straggler_factor must be > 1, got {straggler_factor}")
        self.lease_timeout = float(lease_timeout)
        self.max_attempts = int(max_attempts)
        self.autotuner = autotuner or ShardAutotuner()
        self.straggler_factor = float(straggler_factor)
        self.straggler_min_seconds = float(straggler_min_seconds)
        self._clock = clock
        self._cond = threading.Condition()
        self._tracked: dict[str, _Tracked] = {}
        self._pending: deque[str] = deque()
        self._results: dict[str, dict] = {}
        self._poisoned: dict[str, _Tracked] = {}
        # Cumulative counters (monotone; exposed via stats()).
        self.n_completed = 0
        self.n_requeued = 0
        self.n_failed = 0
        self.n_stragglers = 0
        registry = registry if registry is not None else default_registry()
        self._m_queue_wait = registry.histogram(
            "goggles_shard_queue_wait_seconds",
            "Enqueue (or requeue) to lease grant, per shard, by kind.",
            labelnames=("kind",),
        )
        self._m_compute = registry.histogram(
            "goggles_shard_compute_seconds",
            "Worker-measured compute seconds per completed shard, by kind.",
            labelnames=("kind",),
        )
        self._m_transfer = registry.histogram(
            "goggles_shard_transfer_seconds",
            "Lease-to-report wall time minus worker compute (wire + scheduling), by kind.",
            labelnames=("kind",),
        )
        self._m_stragglers = registry.counter(
            "goggles_stragglers_total",
            "Completed shards whose compute exceeded the straggler threshold, by kind.",
            labelnames=("kind",),
        )
        self._m_completed = registry.counter(
            "goggles_coordinator_shards_completed_total",
            "Shards the coordinator accepted a completion for, by kind.",
            labelnames=("kind",),
        )

    # ------------------------------------------------------------------
    # Producer side (coordinator)
    # ------------------------------------------------------------------
    def add(self, task: ShardTask) -> bool:
        """Enqueue a shard; ``False`` if its id is already known."""
        with self._cond:
            tid = task.task_id
            if tid in self._tracked or tid in self._results or tid in self._poisoned:
                return False
            self._tracked[tid] = _Tracked(task=task, queued_at=self._clock())
            self._pending.append(tid)
            self._cond.notify_all()
            return True

    def wait(self, task_ids: Iterable[str], timeout: float | None = None) -> bool:
        """Block until every listed shard is done *or any is poisoned*.

        Returns ``False`` only on timeout.  Re-checks lease deadlines
        while waiting, so dead workers are detected even when no live
        worker is polling.
        """
        ids = set(task_ids)
        deadline = None if timeout is None else self._clock() + timeout
        # Wake often enough to reap expired leases promptly.
        step = max(min(1.0, self.lease_timeout / 4.0), 0.01)
        with self._cond:
            while True:
                self._reap(self._clock())
                if any(tid in self._poisoned for tid in ids):
                    return True
                if all(tid in self._results for tid in ids):
                    return True
                now = self._clock()
                if deadline is not None and now >= deadline:
                    return False
                remaining = step if deadline is None else min(step, deadline - now)
                self._cond.wait(remaining)

    def result(self, task_id: str) -> dict | None:
        with self._cond:
            return self._results.get(task_id)

    def poisoned_among(self, task_ids: Iterable[str]) -> list[_Tracked]:
        with self._cond:
            return [self._poisoned[tid] for tid in task_ids if tid in self._poisoned]

    def outstanding(self, task_ids: Iterable[str]) -> int:
        """How many of the listed shards are still pending or leased."""
        with self._cond:
            return sum(1 for tid in task_ids if tid in self._tracked)

    def forget(self, task_ids: Iterable[str]) -> None:
        """Drop every trace of the listed shards (end of a run)."""
        with self._cond:
            for tid in task_ids:
                self._tracked.pop(tid, None)
                self._results.pop(tid, None)
                self._poisoned.pop(tid, None)
            # _pending entries pointing at forgotten ids are skipped
            # lazily by lease().

    # ------------------------------------------------------------------
    # Worker side (via the broker)
    # ------------------------------------------------------------------
    def lease(self, worker_id: str) -> ShardTask | None:
        """Grant the next pending shard to ``worker_id`` (or ``None``)."""
        granted = self.lease_many(worker_id, 1)
        return granted[0] if granted else None

    def lease_many(self, worker_id: str, limit: int) -> list[ShardTask]:
        """Grant up to ``limit`` pending shards in one call.

        The actual grant size is the smaller of ``limit`` (the worker's
        appetite) and the :class:`ShardAutotuner`'s plan for the shards
        at the head of the queue — about ``target_lease_seconds`` of
        estimated compute, so one round-trip carries many tiny shards
        but a single heavyweight one.  Every granted shard burns one
        unit of its retry budget and carries the usual lease deadline.
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        now = self._clock()
        granted: list[ShardTask] = []
        with self._cond:
            self._reap(now)
            pending: list[_Tracked] = []
            while self._pending and len(pending) < limit:
                tid = self._pending.popleft()
                tracked = self._tracked.get(tid)
                if tracked is None or tracked.leased:
                    continue  # completed elsewhere or stale entry
                pending.append(tracked)
            take = (
                self.autotuner.plan((t.task.kind for t in pending), limit) if pending else 0
            )
            # Ungranted overflow returns to the head, original order kept.
            for tracked in reversed(pending[take:]):
                self._pending.appendleft(tracked.task.task_id)
            for tracked in pending[:take]:
                tracked.attempts += 1
                tracked.worker = worker_id
                tracked.deadline = now + self.lease_timeout
                tracked.leased_at = now
                if tracked.queued_at is not None:
                    self._m_queue_wait.observe(
                        max(now - tracked.queued_at, 0.0), kind=tracked.task.kind
                    )
                granted.append(tracked.task)
        return granted

    def complete(
        self, task_id: str, worker_id: str, result: dict, seconds: float | None = None
    ) -> bool:
        """Record a shard result (idempotent; late duplicates ignored).

        Results are accepted even from expired or reassigned leases —
        shards are pure and content-addressed, so any completion is the
        right answer.  A late completion even rescues a poisoned shard.
        """
        now = self._clock()
        with self._cond:
            tracked = self._tracked.pop(task_id, None)
            if tracked is None:
                tracked = self._poisoned.pop(task_id, None)
                if tracked is None:
                    return False  # already done or never known
            kind = tracked.task.kind
            if seconds is not None:
                # Straggler check against the estimate *before* this
                # measurement folds in, or the straggler drags its own
                # threshold up.
                estimate = self.autotuner.estimate(kind)
                threshold = max(
                    self.straggler_factor * estimate if estimate is not None else float("inf"),
                    self.straggler_min_seconds,
                )
                if estimate is not None and seconds > threshold:
                    self.n_stragglers += 1
                    self._m_stragglers.inc(kind=kind)
                    logger.warning(
                        "straggler shard %s (%s): %.3fs compute on worker %s "
                        "(EWMA estimate %.3fs, factor %.1f)",
                        task_id[:12], kind, seconds, worker_id, estimate, self.straggler_factor,
                    )
                self.autotuner.observe(kind, seconds)
                self._m_compute.observe(max(float(seconds), 0.0), kind=kind)
            if tracked.leased_at is not None:
                elapsed = max(now - tracked.leased_at, 0.0)
                overhead = elapsed - (seconds or 0.0)
                self._m_transfer.observe(max(overhead, 0.0), kind=kind)
            self._m_completed.inc(kind=kind)
            self._results[task_id] = result
            self.n_completed += 1
            self._cond.notify_all()
            return True

    def fail(self, task_id: str, worker_id: str, error: str) -> None:
        """Record a worker-reported failure; requeue or poison."""
        with self._cond:
            tracked = self._tracked.get(task_id)
            if tracked is None or tracked.worker != worker_id:
                return  # stale report from an expired lease
            self.n_failed += 1
            tracked.errors.append(error)
            self._requeue_or_poison(tracked)

    def release_worker(self, worker_id: str) -> int:
        """Requeue every shard leased by a worker (disconnect detection)."""
        released = 0
        with self._cond:
            for tracked in list(self._tracked.values()):
                if tracked.worker == worker_id:
                    tracked.errors.append(f"worker {worker_id} disconnected mid-lease")
                    self._requeue_or_poison(tracked)
                    released += 1
        return released

    # ------------------------------------------------------------------
    # Internals (condition held)
    # ------------------------------------------------------------------
    def _requeue_or_poison(self, tracked: _Tracked) -> None:
        tid = tracked.task.task_id
        tracked.worker = None
        tracked.deadline = None
        tracked.leased_at = None
        if tracked.attempts >= self.max_attempts:
            self._tracked.pop(tid, None)
            self._poisoned[tid] = tracked
        else:
            self.n_requeued += 1
            tracked.queued_at = self._clock()  # wait clock restarts on requeue
            self._pending.append(tid)
        self._cond.notify_all()

    def _reap(self, now: float) -> None:
        for tracked in list(self._tracked.values()):
            if tracked.leased and tracked.deadline is not None and tracked.deadline < now:
                tracked.errors.append(f"lease expired after {self.lease_timeout}s (worker {tracked.worker})")
                self._requeue_or_poison(tracked)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        with self._cond:
            leased = sum(1 for t in self._tracked.values() if t.leased)
            return {
                "pending": len(self._tracked) - leased,
                "leased": leased,
                "completed": self.n_completed,
                "requeued": self.n_requeued,
                "failed": self.n_failed,
                "poisoned": len(self._poisoned),
                "stragglers": self.n_stragglers,
            }
