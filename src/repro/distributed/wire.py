"""Wire format v2: raw npy-style buffers instead of monolithic pickles.

The v1 streaming path pickled a whole ``{name: array}`` result into one
blob before framing it — every byte of every array was copied once into
the pickle and once more on the join at reassembly, and ``pickle.loads``
copied a third time into fresh arrays.  For the multi-megabyte
extraction and tile results that dominate distributed traffic, those
copies (not the compute) were a measurable slice of the constant factor
that kept ``executor="distributed"`` behind serial at small N.

v2 serialises a result as a *list of buffers* instead of one blob:

* one small framed **header** describing every entry — name, dtype
  descriptor, shape, byte length — in fixed little-endian layout, and
* each array's **raw data buffer**, exported zero-copy via
  ``memoryview`` for C-contiguous arrays (anything else is made
  contiguous first, the same normalisation the kernels apply anyway).

:func:`iter_frames` then slices frames of ``frame_bytes`` across the
buffer list without ever concatenating it, so the worker never
materialises the payload twice.  The broker still reassembles the
framed stream into one blob (the existing length- and order-checked
machinery in :mod:`repro.distributed.broker`), after which
:func:`decode_arrays` reconstructs every array as a **zero-copy
read-only view** into that blob via ``np.frombuffer`` — no third copy,
and nothing on this path ever unpickles attacker-shapeable bytes.

A malformed blob (bad magic, truncated header, lengths that disagree
with the payload) raises :class:`WireFormatError`, which the broker
reports to the queue as a shard *failure* — burning a retry, exactly
like a short v1 stream — never a completion.
"""

from __future__ import annotations

import json
import struct
from typing import Iterable, Iterator

import numpy as np

__all__ = [
    "TELEMETRY_MAGIC",
    "TELEMETRY_VERSION",
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "WireFormatError",
    "decode_telemetry",
    "encode_arrays",
    "decode_arrays",
    "encode_telemetry",
    "encoded_nbytes",
    "iter_frames",
]

#: First bytes of every v2 payload (GOGGLES Wire).
WIRE_MAGIC = b"GGLW"
WIRE_VERSION = 2

#: First bytes of every telemetry frame (GOGGLES Telemetry).
TELEMETRY_MAGIC = b"GGLT"
TELEMETRY_VERSION = 1

# Header layout (all little-endian):
#   magic(4s) version(u16) n_entries(u16)
# then per entry:
#   name_len(u16) name(utf-8) descr_len(u16) descr(ascii)
#   ndim(u8) shape(ndim x u64) data_len(u64)
_PREAMBLE = struct.Struct("<4sHH")
_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U64 = struct.Struct("<Q")

#: Hard ceiling on entries/dimensions a header may declare, so a
#: corrupt length field cannot ask the decoder for gigabytes of shape.
_MAX_ENTRIES = 4096
_MAX_NDIM = 32


class WireFormatError(ValueError):
    """A v2 payload that cannot be decoded (corrupt, truncated, alien)."""


def encode_arrays(arrays: dict[str, np.ndarray]) -> list[bytes | memoryview]:
    """Serialise ``{name: array}`` into ``[header, data, data, ...]``.

    C-contiguous array data is exported as a zero-copy ``memoryview``;
    non-contiguous or Fortran-ordered inputs are made C-contiguous
    first (value-neutral: the layout contract of shard results is
    carried by explicit flags in the result itself, never by wire-level
    strides).  Object dtypes are refused — the format exists precisely
    so no executable bytes travel in result payloads.
    """
    header = bytearray()
    buffers: list[bytes | memoryview] = []
    header += _PREAMBLE.pack(WIRE_MAGIC, WIRE_VERSION, len(arrays))
    if len(arrays) > _MAX_ENTRIES:
        raise WireFormatError(f"result holds {len(arrays)} entries (limit {_MAX_ENTRIES})")
    for name, value in arrays.items():
        array = np.asarray(value)
        if array.dtype.hasobject:
            raise WireFormatError(f"entry {name!r} has object dtype {array.dtype!r}")
        if not array.flags.c_contiguous:
            # np.ascontiguousarray would also promote 0-d scalars to
            # 1-d; gating on the flag keeps shapes exactly as given
            # (0-d arrays are always C-contiguous).
            array = np.ascontiguousarray(array)
        encoded_name = name.encode("utf-8")
        descr = np.lib.format.dtype_to_descr(array.dtype).encode("ascii")
        header += _U16.pack(len(encoded_name)) + encoded_name
        header += _U16.pack(len(descr)) + descr
        header += _U8.pack(array.ndim)
        for dim in array.shape:
            header += _U64.pack(dim)
        header += _U64.pack(array.nbytes)
        buffers.append(memoryview(array).cast("B") if array.nbytes else b"")
    return [bytes(header), *buffers]


def encoded_nbytes(buffers: Iterable[bytes | memoryview]) -> int:
    """Total payload bytes of an :func:`encode_arrays` buffer list."""
    return sum(len(buffer) for buffer in buffers)


def iter_frames(buffers: Iterable[bytes | memoryview], frame_bytes: int) -> Iterator[memoryview]:
    """Cut a buffer list into ``frame_bytes``-sized frames, zero-copy.

    Frames may span buffer boundaries; each yielded frame is a list of
    memoryview slices joined lazily by the caller's ``send`` — but
    since :mod:`multiprocessing.connection` sends one object at a time,
    spanning frames are assembled into a single ``bytes``.  Only the
    (rare) boundary-straddling frames pay that copy; frames that fall
    inside one buffer stay views.
    """
    if frame_bytes < 1:
        raise ValueError(f"frame_bytes must be >= 1, got {frame_bytes}")
    pending: list[memoryview] = []
    pending_len = 0
    for buffer in buffers:
        view = memoryview(buffer).cast("B") if not isinstance(buffer, memoryview) else buffer.cast("B")
        offset = 0
        length = len(view)
        while offset < length:
            take = min(frame_bytes - pending_len, length - offset)
            piece = view[offset : offset + take]
            offset += take
            if not pending and take == frame_bytes:
                yield piece  # whole frame inside one buffer: zero-copy
                continue
            pending.append(piece)
            pending_len += take
            if pending_len == frame_bytes:
                yield memoryview(b"".join(pending))
                pending, pending_len = [], 0
    if pending:
        yield memoryview(b"".join(pending))


# Telemetry frames: magic(4s) version(u16) then UTF-8 JSON.  Telemetry
# rides as an *optional trailing field* on existing v2 ops
# (``report_many`` / ``result-end`` / ``bye``) — v1 peers never see it,
# and a broker that predates it ignores extra fields via ``*rest``
# unpacking.  JSON (never pickle) keeps the same no-executable-bytes
# guarantee as the array payloads.
_TELEMETRY_PREAMBLE = struct.Struct("<4sH")

#: Ceiling on a telemetry frame so a corrupt peer cannot make the
#: broker parse an arbitrarily large JSON document.
_MAX_TELEMETRY_BYTES = 4 * 1024 * 1024


def encode_telemetry(payload: dict) -> bytes:
    """Serialise one telemetry payload (a JSON-able dict) to bytes."""
    if not isinstance(payload, dict):
        raise WireFormatError(f"telemetry payload must be a dict, got {type(payload).__name__}")
    try:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise WireFormatError(f"telemetry payload is not JSON-able: {error}") from None
    if len(body) > _MAX_TELEMETRY_BYTES:
        raise WireFormatError(
            f"telemetry frame of {len(body)} bytes exceeds the {_MAX_TELEMETRY_BYTES} limit"
        )
    return _TELEMETRY_PREAMBLE.pack(TELEMETRY_MAGIC, TELEMETRY_VERSION) + body


def decode_telemetry(blob: bytes | bytearray | memoryview) -> dict:
    """Decode one telemetry frame; raises :class:`WireFormatError`."""
    view = memoryview(blob).cast("B") if not isinstance(blob, (bytes, bytearray)) else blob
    data = bytes(view)
    if len(data) < _TELEMETRY_PREAMBLE.size:
        raise WireFormatError(f"telemetry frame of {len(data)} bytes is shorter than the preamble")
    if len(data) > _TELEMETRY_PREAMBLE.size + _MAX_TELEMETRY_BYTES:
        raise WireFormatError(f"telemetry frame of {len(data)} bytes exceeds the size limit")
    magic, version = _TELEMETRY_PREAMBLE.unpack_from(data, 0)
    if magic != TELEMETRY_MAGIC:
        raise WireFormatError(f"bad telemetry magic {bytes(magic)!r} (expected {TELEMETRY_MAGIC!r})")
    if version != TELEMETRY_VERSION:
        raise WireFormatError(f"unsupported telemetry version {version} (expected {TELEMETRY_VERSION})")
    try:
        payload = json.loads(data[_TELEMETRY_PREAMBLE.size:].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireFormatError(f"undecodable telemetry body: {error}") from None
    if not isinstance(payload, dict):
        raise WireFormatError(f"telemetry body must be a JSON object, got {type(payload).__name__}")
    return payload


def _read(blob: memoryview, offset: int, n: int, what: str) -> tuple[memoryview, int]:
    if offset + n > len(blob):
        raise WireFormatError(f"truncated payload: {what} needs {n} bytes at offset {offset}")
    return blob[offset : offset + n], offset + n


def decode_arrays(blob: bytes | bytearray | memoryview) -> dict[str, np.ndarray]:
    """Decode one reassembled v2 payload into ``{name: array}``.

    Every array is a **read-only zero-copy view** into ``blob`` (via
    ``np.frombuffer``); callers that need to mutate copy explicitly.
    Raises :class:`WireFormatError` on any structural defect.
    """
    view = memoryview(blob).cast("B")
    if len(view) < _PREAMBLE.size:
        raise WireFormatError(f"payload of {len(view)} bytes is shorter than the preamble")
    magic, version, n_entries = _PREAMBLE.unpack_from(view, 0)
    if magic != WIRE_MAGIC:
        raise WireFormatError(f"bad magic {bytes(magic)!r} (expected {WIRE_MAGIC!r})")
    if version != WIRE_VERSION:
        raise WireFormatError(f"unsupported wire version {version} (expected {WIRE_VERSION})")
    if n_entries > _MAX_ENTRIES:
        raise WireFormatError(f"header declares {n_entries} entries (limit {_MAX_ENTRIES})")
    offset = _PREAMBLE.size
    entries: list[tuple[str, np.dtype, tuple[int, ...], int]] = []
    for _ in range(n_entries):
        raw, offset = _read(view, offset, _U16.size, "name length")
        (name_len,) = _U16.unpack(raw)
        raw, offset = _read(view, offset, name_len, "entry name")
        try:
            name = str(raw, "utf-8")
        except UnicodeDecodeError as error:
            raise WireFormatError(f"undecodable entry name: {error}") from None
        raw, offset = _read(view, offset, _U16.size, "descr length")
        (descr_len,) = _U16.unpack(raw)
        raw, offset = _read(view, offset, descr_len, "dtype descr")
        try:
            dtype = np.lib.format.descr_to_dtype(str(raw, "ascii"))
        except (ValueError, TypeError, UnicodeDecodeError) as error:
            raise WireFormatError(f"bad dtype descr for {name!r}: {error}") from None
        raw, offset = _read(view, offset, _U8.size, "ndim")
        (ndim,) = _U8.unpack(raw)
        if ndim > _MAX_NDIM:
            raise WireFormatError(f"entry {name!r} declares {ndim} dimensions (limit {_MAX_NDIM})")
        shape = []
        for axis in range(ndim):
            raw, offset = _read(view, offset, _U64.size, f"shape[{axis}]")
            shape.append(_U64.unpack(raw)[0])
        raw, offset = _read(view, offset, _U64.size, "data length")
        (data_len,) = _U64.unpack(raw)
        expected = int(np.prod(shape, dtype=np.uint64)) * dtype.itemsize if shape else dtype.itemsize
        if expected != data_len:
            raise WireFormatError(
                f"entry {name!r}: shape {tuple(shape)} x {dtype} implies {expected} bytes, "
                f"header declares {data_len}"
            )
        entries.append((name, dtype, tuple(int(dim) for dim in shape), int(data_len)))
    arrays: dict[str, np.ndarray] = {}
    for name, dtype, shape, data_len in entries:
        raw, offset = _read(view, offset, data_len, f"data of {name!r}")
        arrays[name] = np.frombuffer(raw, dtype=dtype).reshape(shape)
    if offset != len(view):
        raise WireFormatError(f"{len(view) - offset} trailing bytes after the last entry")
    return arrays
