"""The distributed shard runtime (see ENGINE.md, "Distributed stages").

Shards GOGGLES' three embarrassingly parallel stages — chunked VGG
feature extraction (paper §3, stage 1), affinity tile construction
(§3, stage 2) and per-affinity-function base GMM fits (§4, §5.3) —
across worker processes that may live on other machines, over a
lease-based fault-tolerant task queue, with results merged back
bit-identically to the serial path (large results stream back as
framed sub-messages rather than one giant pickle):

* :mod:`repro.distributed.tasks` — content-addressed shard tasks and
  the :class:`ShardPlanner` that cuts stage work into them.
* :mod:`repro.distributed.queue` — the lease/retry/poison bookkeeping.
* :mod:`repro.distributed.broker` — the authenticated TCP front door.
* :mod:`repro.distributed.worker` — the pull/compute/report loop.
* :mod:`repro.distributed.coordinator` — the session object the
  engines drive (``executor="distributed"``).
* :mod:`repro.distributed.wire` — wire format v2: raw npy result
  buffers behind a framed header (no monolithic pickles).
* :mod:`repro.distributed.pool` — warm :class:`WorkerPool` shared
  across runs in one process (zero re-spawns).
"""

from repro.distributed import wire
from repro.distributed.broker import DEFAULT_PORT, Broker
from repro.distributed.coordinator import (
    DEFAULT_AUTHKEY,
    Coordinator,
    DistributedConfig,
    default_authkey,
    parse_address,
    require_safe_authkey,
)
from repro.distributed.pool import WorkerPool, as_coordinator
from repro.distributed.queue import PoisonShardError, ShardAutotuner, TaskQueue
from repro.distributed.tasks import (
    ShardPlanner,
    ShardTask,
    base_fit_task,
    execute_shard,
    extraction_task,
    load_shard_result,
    required_result_keys,
    similarity_task,
)
from repro.distributed.worker import (
    DEFAULT_FRAME_BYTES,
    DEFAULT_LEASE_BATCH,
    DEFAULT_POLL_INTERVAL_MAX,
    DEFAULT_STREAM_THRESHOLD,
    Worker,
    run_worker_process,
)
from repro.distributed.wire import (
    WireFormatError,
    decode_arrays,
    decode_telemetry,
    encode_arrays,
    encode_telemetry,
)

__all__ = [
    "DEFAULT_AUTHKEY",
    "DEFAULT_FRAME_BYTES",
    "DEFAULT_LEASE_BATCH",
    "DEFAULT_POLL_INTERVAL_MAX",
    "DEFAULT_PORT",
    "DEFAULT_STREAM_THRESHOLD",
    "Broker",
    "Coordinator",
    "DistributedConfig",
    "PoisonShardError",
    "ShardAutotuner",
    "ShardPlanner",
    "ShardTask",
    "TaskQueue",
    "WireFormatError",
    "Worker",
    "WorkerPool",
    "as_coordinator",
    "base_fit_task",
    "decode_arrays",
    "decode_telemetry",
    "default_authkey",
    "encode_arrays",
    "encode_telemetry",
    "execute_shard",
    "extraction_task",
    "load_shard_result",
    "parse_address",
    "require_safe_authkey",
    "required_result_keys",
    "run_worker_process",
    "similarity_task",
    "wire",
]
