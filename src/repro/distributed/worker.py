"""The worker loop: pull shards, compute, report; survive restarts.

A worker is deliberately dumb: it holds no job state beyond the shard
it is currently computing.  Everything value-affecting travels in the
task payload, and the result travels back over the same authenticated
connection (plus into the shared :class:`~repro.engine.cache.ArtifactCache`
when one is mounted, so identical reruns are disk hits for the whole
cluster).  Crash tolerance therefore costs nothing here — a worker that
dies mid-shard is simply a lease the coordinator reassigns.

The hot path is *batched*: one ``lease_many`` round-trip pulls a whole
autotuned batch of shards, each shard's compute is timed, and every
small result rides back in a single ``report_many`` message whose
measured seconds feed the broker-side autotuner.  Results above
``stream_threshold`` payload bytes are *streamed* instead: the worker
sends a ``result-begin`` header (encoding ``"npy"`` — wire format v2,
raw npy buffers framed without a monolithic pickle, see
:mod:`repro.distributed.wire`), then ``frame_bytes``-sized ``frame``
sub-messages, then ``result-end``, and the broker reassembles them.
A disconnect mid-stream simply discards the partial frames and
releases the lease.  Results that cannot travel as raw buffers
(object dtypes) fall back to the v1 pickle encoding, as does the whole
batched protocol when the broker replies ``("error", ...)`` — so a new
worker still speaks to an old broker.

An idle worker backs off exponentially (with jitter, so a fleet that
went idle together does not re-poll in lockstep) instead of hammering
the broker at a fixed period; the first granted lease resets the
backoff.

Workers connect with patience (the coordinator may not be up yet) and
reconnect after connection loss; once the retry budget is exhausted the
loop returns, which is how a worker notices the coordinator is gone.
"""

from __future__ import annotations

import os
import pickle
import random
import socket
import threading
import time
from multiprocessing import AuthenticationError
from multiprocessing.connection import Client, Connection

import numpy as np

from repro.distributed import wire
from repro.distributed.tasks import ShardTask, execute_shard
from repro.engine.cache import ArtifactCache
from repro.obs import MetricsRegistry, TelemetryShipper, default_registry, span, trace_context

__all__ = [
    "DEFAULT_STREAM_THRESHOLD",
    "DEFAULT_FRAME_BYTES",
    "DEFAULT_LEASE_BATCH",
    "DEFAULT_POLL_INTERVAL_MAX",
    "Worker",
    "run_worker_process",
]

#: Result payload bytes above which a shard result streams as frames.
DEFAULT_STREAM_THRESHOLD = 4 * 1024 * 1024
#: Frame size of a streamed result.
DEFAULT_FRAME_BYTES = 1024 * 1024
#: Shards one lease_many round-trip may carry (the autotuner may grant fewer).
DEFAULT_LEASE_BATCH = 32
#: Ceiling of the idle-poll exponential backoff.
DEFAULT_POLL_INTERVAL_MAX = 1.0


class Worker:
    """A single-threaded shard worker.

    Parameters:
        address: the coordinator's (host, port).
        authkey: shared connection secret (str or bytes).
        cache: optional shared artifact cache; computed shards are
            written there (kind ``"shard"``) and looked up before
            computing, so a re-run of known content is a disk hit.
        worker_id: stable identity used for leases; defaults to
            ``{hostname}-{pid}``-based and unique per instance.
        poll_interval: initial sleep between lease attempts while the
            queue is idle; consecutive idle polls back off
            exponentially (with jitter) up to ``poll_interval_max``,
            and the next granted lease resets the schedule.
        poll_interval_max: ceiling of the idle backoff.
        lease_batch: most shards one ``lease_many`` round-trip may
            request; the broker's autotuner may grant fewer.  1 keeps
            the chatty one-shard-per-round-trip behaviour.
        connect_retries / retry_delay: patience for the initial connect
            and for reconnects after a dropped connection; once
            exhausted, :meth:`run` returns.
        stream_threshold: result size (total array bytes) above which
            the result is streamed as framed sub-messages; 0 streams
            every result, a huge value keeps everything single-message.
        frame_bytes: chunk size of a streamed result blob.
        registry: metrics registry the worker instruments (default: the
            process-wide one; in-thread workers get the coordinator's).
        ship_telemetry: piggyback registry deltas + fresh span records
            on outgoing v2 reports (``report_many`` / ``result-end`` /
            ``bye``) so the coordinator can merge them into its scrape
            registry.  On for spawned worker processes, off for
            in-thread workers (which already share the coordinator's
            registry — shipping would double-count).
    """

    _instances = 0

    def __init__(
        self,
        address: tuple[str, int],
        authkey: str | bytes = "goggles-repro",
        *,
        cache: ArtifactCache | None = None,
        worker_id: str | None = None,
        poll_interval: float = 0.05,
        poll_interval_max: float = DEFAULT_POLL_INTERVAL_MAX,
        lease_batch: int = DEFAULT_LEASE_BATCH,
        connect_retries: int = 40,
        retry_delay: float = 0.25,
        stream_threshold: int = DEFAULT_STREAM_THRESHOLD,
        frame_bytes: int = DEFAULT_FRAME_BYTES,
        registry: MetricsRegistry | None = None,
        ship_telemetry: bool = False,
    ):
        if poll_interval <= 0:
            raise ValueError(f"poll_interval must be > 0, got {poll_interval}")
        if poll_interval_max < poll_interval:
            raise ValueError(
                f"poll_interval_max ({poll_interval_max}) must be >= poll_interval ({poll_interval})"
            )
        if lease_batch < 1:
            raise ValueError(f"lease_batch must be >= 1, got {lease_batch}")
        if stream_threshold < 0:
            raise ValueError(f"stream_threshold must be >= 0, got {stream_threshold}")
        if frame_bytes < 1:
            raise ValueError(f"frame_bytes must be >= 1, got {frame_bytes}")
        self.address = (str(address[0]), int(address[1]))
        self.authkey = authkey.encode() if isinstance(authkey, str) else bytes(authkey)
        self.cache = cache
        Worker._instances += 1
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}-w{Worker._instances}"
        self.poll_interval = float(poll_interval)
        self.poll_interval_max = float(poll_interval_max)
        self.lease_batch = int(lease_batch)
        self.connect_retries = int(connect_retries)
        self.retry_delay = float(retry_delay)
        self.stream_threshold = int(stream_threshold)
        self.frame_bytes = int(frame_bytes)
        self.tasks_completed = 0
        self.tasks_failed = 0
        self.results_streamed = 0
        self.results_batched = 0  # results reported via report_many
        # Prometheus mirrors, keyed by the worker's own id.  In-thread
        # workers write them straight into the coordinator's registry;
        # spawned workers write their own process registry and (with
        # ``ship_telemetry``) ship deltas for the coordinator to merge —
        # the ``worker`` label makes both paths land as distinct series
        # of the same families.
        self._registry = registry if registry is not None else default_registry()
        self._m_completed = self._registry.counter(
            "goggles_worker_shards_completed_total",
            "Shards computed successfully, by worker.",
            labelnames=("worker",),
        )
        self._m_failed = self._registry.counter(
            "goggles_worker_shards_failed_total",
            "Shards that raised during worker compute, by worker.",
            labelnames=("worker",),
        )
        self._m_streamed = self._registry.counter(
            "goggles_worker_results_streamed_total",
            "Large results streamed as framed buffers, by worker.",
            labelnames=("worker",),
        )
        self._shipper = (
            TelemetryShipper(self.worker_id, self._registry) if ship_telemetry else None
        )
        self.idle_polls = 0
        self._idle_streak = 0
        self._rng = random.Random()
        self._v2_ops = True  # flips off when the broker rejects lease_many
        self._stop = threading.Event()

    def stop(self) -> None:
        """Ask the loop to exit at the next opportunity."""
        self._stop.set()

    # ------------------------------------------------------------------
    def _connect(self) -> Connection | None:
        for _ in range(self.connect_retries):
            if self._stop.is_set():
                return None
            try:
                return Client(self.address, authkey=self.authkey)
            except (OSError, EOFError, AuthenticationError):
                # Coordinator not up (yet), just went away, or closed
                # mid-handshake; be patient — the budget bounds us.
                self._stop.wait(self.retry_delay)
        return None

    def _next_idle_wait(self) -> float:
        """One idle sleep: exponential in the idle streak, jittered.

        Starts at ``poll_interval`` and doubles per consecutive idle
        reply up to ``poll_interval_max``; the multiplicative jitter
        (uniform in [0.5, 1.0]) de-synchronises a fleet of workers
        that went idle on the same queue drain.  Timing only — never
        value-affecting — so plain :mod:`random` is fine here.
        """
        base = min(self.poll_interval * (2.0 ** self._idle_streak), self.poll_interval_max)
        self._idle_streak += 1
        self.idle_polls += 1
        return base * self._rng.uniform(0.5, 1.0)

    def _telemetry_blob(self) -> bytes | None:
        """The next encoded telemetry frame, or ``None`` (idle/off/v1)."""
        if self._shipper is None or not self._v2_ops:
            return None
        try:
            payload = self._shipper.collect()
            return wire.encode_telemetry(payload) if payload is not None else None
        except wire.WireFormatError:  # pragma: no cover - defensive: never block reports
            return None

    def _request_lease(self, conn: Connection) -> tuple:
        """One lease round-trip: batched v2 op, v1 fallback for old brokers."""
        if self._v2_ops:
            conn.send(("lease_many", self.worker_id, self.lease_batch))
            reply = conn.recv()
            if reply[0] != "error":
                return reply
            self._v2_ops = False  # broker predates the batched protocol
        conn.send(("lease", self.worker_id))
        return conn.recv()

    def _stream_result(self, conn: Connection, task: ShardTask, arrays: dict, seconds: float) -> None:
        """Stream one large result as framed wire-v2 npy buffers.

        Falls back to a framed v1 pickle when the arrays cannot travel
        as raw buffers (object dtypes) or when the broker is too old
        for the 6-field ``result-begin``.
        """
        encoding = "npy" if self._v2_ops else "pickle"
        if encoding == "npy":
            try:
                buffers: list = wire.encode_arrays(arrays)
            except wire.WireFormatError:
                encoding = "pickle"
        if encoding == "pickle":
            buffers = [pickle.dumps(arrays, protocol=pickle.HIGHEST_PROTOCOL)]
        total = wire.encoded_nbytes(buffers)
        n_frames = max(1, -(-total // self.frame_bytes))
        if self._v2_ops:
            conn.send(("result-begin", self.worker_id, task.task_id, n_frames, total, encoding))
        else:
            conn.send(("result-begin", self.worker_id, task.task_id, n_frames, total))
        for index, frame in enumerate(wire.iter_frames(buffers, self.frame_bytes)):
            conn.send(("frame", self.worker_id, task.task_id, index, bytes(frame)))
        self.results_streamed += 1
        self._m_streamed.inc(worker=self.worker_id)
        if self._v2_ops:
            blob = self._telemetry_blob()
            if blob is not None:
                conn.send(("result-end", self.worker_id, task.task_id, seconds, blob))
            else:
                conn.send(("result-end", self.worker_id, task.task_id, seconds))
        else:
            conn.send(("result-end", self.worker_id, task.task_id))
        conn.recv()  # ack; ("error", ...) means the broker burned a retry

    def _flush_reports(self, conn: Connection, reports: list[tuple[str, dict, float]]) -> None:
        """Upload a batch of small results in one ``report_many``.

        The telemetry frame (registry deltas + fresh spans) rides the
        same message, so the counters covering these completions are
        merged atomically with them — lost together or applied
        together, which is what keeps worker/coordinator counts in
        exact reconciliation.
        """
        blob = self._telemetry_blob()
        if blob is not None:
            conn.send(("report_many", self.worker_id, reports, blob))
        else:
            conn.send(("report_many", self.worker_id, reports))
        reply = conn.recv()
        if reply[0] == "error":
            # Old broker: replay each result through the v1 op.
            self._v2_ops = False
            for task_id, arrays, _seconds in reports:
                conn.send(("result", self.worker_id, task_id, arrays))
                conn.recv()
            return
        self.results_batched += len(reports)

    def _process_tasks(self, conn: Connection, tasks: list[ShardTask]) -> None:
        """Compute a leased batch, timing each shard for the autotuner.

        Small results accumulate into one ``report_many`` (flushed
        early if they outgrow ``stream_threshold``); large results
        stream individually.  Failures report immediately so the queue
        can requeue while the rest of the batch still computes.
        """
        reports: list[tuple[str, dict, float]] = []
        pending_bytes = 0
        for task in tasks:
            started = time.perf_counter()
            try:
                # Install the submitting request's trace id around the
                # compute, so the shard's span record carries it and the
                # shipped telemetry stitches into that request's
                # timeline on the coordinator.
                with trace_context(task.trace_id), span(f"shard.{task.kind}", self._registry):
                    arrays = execute_shard(task, cache=self.cache)
            except Exception as error:  # noqa: BLE001 - report, don't die
                self.tasks_failed += 1
                self._m_failed.inc(worker=self.worker_id)
                conn.send(("fail", self.worker_id, task.task_id, f"{type(error).__name__}: {error}"))
                conn.recv()
                continue
            seconds = time.perf_counter() - started
            self.tasks_completed += 1
            self._m_completed.inc(worker=self.worker_id)
            # Size gate on the raw byte footprint — cheap to compute and
            # within a constant of the encoded size.
            nbytes = sum(int(np.asarray(value).nbytes) for value in arrays.values())
            if nbytes > self.stream_threshold:
                self._stream_result(conn, task, arrays, seconds)
                continue
            if not self._v2_ops:
                conn.send(("result", self.worker_id, task.task_id, arrays))
                conn.recv()
                continue
            reports.append((task.task_id, arrays, seconds))
            pending_bytes += nbytes
            if pending_bytes > self.stream_threshold:
                self._flush_reports(conn, reports)
                reports, pending_bytes = [], 0
        if reports:
            self._flush_reports(conn, reports)

    def run(self) -> None:
        """Poll/compute until stopped or the coordinator goes away."""
        conn = self._connect()
        while conn is not None and not self._stop.is_set():
            try:
                reply = self._request_lease(conn)
            except (EOFError, OSError, BrokenPipeError):
                conn.close()
                conn = self._connect()
                continue
            kind = reply[0]
            if kind in ("task", "tasks"):
                self._idle_streak = 0  # work granted: reset the backoff
                tasks = list(reply[1]) if kind == "tasks" else [reply[1]]
                try:
                    self._process_tasks(conn, tasks)
                except (EOFError, OSError, BrokenPipeError):
                    # Unreported shards of this batch are rescued by
                    # release_worker / the lease timeout.
                    conn.close()
                    conn = self._connect()
            elif kind == "idle":
                self._stop.wait(self._next_idle_wait())
            elif kind == "stop":
                break
            else:  # pragma: no cover - protocol drift guard
                break
        if conn is not None:
            try:
                # Final telemetry (e.g. failure counters with no report
                # to ride on) leaves with the goodbye.
                blob = self._telemetry_blob()
                if blob is not None:
                    conn.send(("bye", self.worker_id, blob))
                else:
                    conn.send(("bye", self.worker_id))
            except (EOFError, OSError, BrokenPipeError):
                pass
            conn.close()


def run_worker_process(
    host: str,
    port: int,
    authkey: str,
    cache_dir: str | None,
    cache_max_bytes: int | None = None,
    stream_threshold: int = DEFAULT_STREAM_THRESHOLD,
    frame_bytes: int = DEFAULT_FRAME_BYTES,
    poll_interval: float = 0.05,
    poll_interval_max: float = DEFAULT_POLL_INTERVAL_MAX,
    lease_batch: int = DEFAULT_LEASE_BATCH,
) -> None:
    """Entry point of a spawned local worker process.

    Module-level (picklable) so ``multiprocessing`` spawn contexts can
    target it; reconstructs the cache from its directory (budget
    included, so worker writes respect the LRU bound) because an
    :class:`ArtifactCache` handle does not cross process boundaries.
    """
    cache = ArtifactCache(cache_dir, max_bytes=cache_max_bytes) if cache_dir else None
    Worker(
        (host, int(port)),
        authkey,
        cache=cache,
        stream_threshold=stream_threshold,
        frame_bytes=frame_bytes,
        poll_interval=poll_interval,
        poll_interval_max=poll_interval_max,
        lease_batch=lease_batch,
        ship_telemetry=True,  # a spawned process' registry is otherwise unreachable
    ).run()
