"""The worker loop: pull shards, compute, report; survive restarts.

A worker is deliberately dumb: it holds no job state beyond the shard
it is currently computing.  Everything value-affecting travels in the
task payload, and the result travels back over the same authenticated
connection (plus into the shared :class:`~repro.engine.cache.ArtifactCache`
when one is mounted, so identical reruns are disk hits for the whole
cluster).  Crash tolerance therefore costs nothing here — a worker that
dies mid-shard is simply a lease the coordinator reassigns.

Results above ``stream_threshold`` payload bytes are *streamed*: the
worker sends a ``result-begin`` header, then ``frame_bytes``-sized
``frame`` sub-messages, then ``result-end``, and the broker reassembles
them (see :mod:`repro.distributed.broker` for the wire format).  Huge
extraction or tile payloads therefore never need one giant pickle on
the wire, and a disconnect mid-stream simply discards the partial
frames and releases the lease.  Small results keep the single-message
path.

Workers connect with patience (the coordinator may not be up yet) and
reconnect after connection loss; once the retry budget is exhausted the
loop returns, which is how a worker notices the coordinator is gone.
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
from multiprocessing import AuthenticationError
from multiprocessing.connection import Client, Connection

import numpy as np

from repro.distributed.tasks import ShardTask, execute_shard
from repro.engine.cache import ArtifactCache

__all__ = [
    "DEFAULT_STREAM_THRESHOLD",
    "DEFAULT_FRAME_BYTES",
    "Worker",
    "run_worker_process",
]

#: Result payload bytes above which a shard result streams as frames.
DEFAULT_STREAM_THRESHOLD = 4 * 1024 * 1024
#: Frame size of a streamed result.
DEFAULT_FRAME_BYTES = 1024 * 1024


class Worker:
    """A single-threaded shard worker.

    Parameters:
        address: the coordinator's (host, port).
        authkey: shared connection secret (str or bytes).
        cache: optional shared artifact cache; computed shards are
            written there (kind ``"shard"``) and looked up before
            computing, so a re-run of known content is a disk hit.
        worker_id: stable identity used for leases; defaults to
            ``{hostname}-{pid}``-based and unique per instance.
        poll_interval: sleep between lease attempts while the queue is
            idle.
        connect_retries / retry_delay: patience for the initial connect
            and for reconnects after a dropped connection; once
            exhausted, :meth:`run` returns.
        stream_threshold: result size (total array bytes) above which
            the result is streamed as framed sub-messages; 0 streams
            every result, a huge value keeps everything single-message.
        frame_bytes: chunk size of a streamed result blob.
    """

    _instances = 0

    def __init__(
        self,
        address: tuple[str, int],
        authkey: str | bytes = "goggles-repro",
        *,
        cache: ArtifactCache | None = None,
        worker_id: str | None = None,
        poll_interval: float = 0.05,
        connect_retries: int = 40,
        retry_delay: float = 0.25,
        stream_threshold: int = DEFAULT_STREAM_THRESHOLD,
        frame_bytes: int = DEFAULT_FRAME_BYTES,
    ):
        if poll_interval <= 0:
            raise ValueError(f"poll_interval must be > 0, got {poll_interval}")
        if stream_threshold < 0:
            raise ValueError(f"stream_threshold must be >= 0, got {stream_threshold}")
        if frame_bytes < 1:
            raise ValueError(f"frame_bytes must be >= 1, got {frame_bytes}")
        self.address = (str(address[0]), int(address[1]))
        self.authkey = authkey.encode() if isinstance(authkey, str) else bytes(authkey)
        self.cache = cache
        Worker._instances += 1
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}-w{Worker._instances}"
        self.poll_interval = float(poll_interval)
        self.connect_retries = int(connect_retries)
        self.retry_delay = float(retry_delay)
        self.stream_threshold = int(stream_threshold)
        self.frame_bytes = int(frame_bytes)
        self.tasks_completed = 0
        self.tasks_failed = 0
        self.results_streamed = 0
        self._stop = threading.Event()

    def stop(self) -> None:
        """Ask the loop to exit at the next opportunity."""
        self._stop.set()

    # ------------------------------------------------------------------
    def _connect(self) -> Connection | None:
        for _ in range(self.connect_retries):
            if self._stop.is_set():
                return None
            try:
                return Client(self.address, authkey=self.authkey)
            except (OSError, EOFError, AuthenticationError):
                # Coordinator not up (yet), just went away, or closed
                # mid-handshake; be patient — the budget bounds us.
                self._stop.wait(self.retry_delay)
        return None

    def _send_result(self, conn: Connection, task: ShardTask, arrays: dict) -> None:
        """Report one shard result: single message, or framed stream.

        The size gate uses the arrays' raw byte footprint — cheap to
        compute and within a constant of the pickled size — so small
        results never pay for a serialise-then-measure round trip.
        """
        payload_bytes = sum(int(np.asarray(value).nbytes) for value in arrays.values())
        if payload_bytes <= self.stream_threshold:
            conn.send(("result", self.worker_id, task.task_id, arrays))
            return
        blob = pickle.dumps(arrays, protocol=pickle.HIGHEST_PROTOCOL)
        n_frames = max(1, -(-len(blob) // self.frame_bytes))
        conn.send(("result-begin", self.worker_id, task.task_id, n_frames, len(blob)))
        for index in range(n_frames):
            frame = blob[index * self.frame_bytes : (index + 1) * self.frame_bytes]
            conn.send(("frame", self.worker_id, task.task_id, index, frame))
        conn.send(("result-end", self.worker_id, task.task_id))
        self.results_streamed += 1

    def run(self) -> None:
        """Poll/compute until stopped or the coordinator goes away."""
        conn = self._connect()
        while conn is not None and not self._stop.is_set():
            try:
                conn.send(("lease", self.worker_id))
                reply = conn.recv()
            except (EOFError, OSError, BrokenPipeError):
                conn.close()
                conn = self._connect()
                continue
            kind = reply[0]
            if kind == "task":
                task = reply[1]
                arrays: dict | None = None
                try:
                    arrays = execute_shard(task, cache=self.cache)
                except Exception as error:  # noqa: BLE001 - report, don't die
                    self.tasks_failed += 1
                    message = ("fail", self.worker_id, task.task_id, f"{type(error).__name__}: {error}")
                else:
                    self.tasks_completed += 1
                    message = None  # reported via _send_result below
                try:
                    if arrays is not None:
                        self._send_result(conn, task, arrays)
                    else:
                        conn.send(message)
                    conn.recv()  # ack; on loss the lease timeout recovers
                except (EOFError, OSError, BrokenPipeError):
                    conn.close()
                    conn = self._connect()
            elif kind == "idle":
                self._stop.wait(self.poll_interval)
            elif kind == "stop":
                break
            else:  # pragma: no cover - protocol drift guard
                break
        if conn is not None:
            try:
                conn.send(("bye", self.worker_id))
            except (EOFError, OSError, BrokenPipeError):
                pass
            conn.close()


def run_worker_process(
    host: str,
    port: int,
    authkey: str,
    cache_dir: str | None,
    cache_max_bytes: int | None = None,
    stream_threshold: int = DEFAULT_STREAM_THRESHOLD,
    frame_bytes: int = DEFAULT_FRAME_BYTES,
) -> None:
    """Entry point of a spawned local worker process.

    Module-level (picklable) so ``multiprocessing`` spawn contexts can
    target it; reconstructs the cache from its directory (budget
    included, so worker writes respect the LRU bound) because an
    :class:`ArtifactCache` handle does not cross process boundaries.
    """
    cache = ArtifactCache(cache_dir, max_bytes=cache_max_bytes) if cache_dir else None
    Worker(
        (host, int(port)),
        authkey,
        cache=cache,
        stream_threshold=stream_threshold,
        frame_bytes=frame_bytes,
    ).run()
