"""The broker: the coordinator's network front door.

Stdlib-only transport: a :class:`multiprocessing.connection.Listener`
bound to a TCP address, so workers may live in other processes *or on
other machines*; the connection handshake is HMAC-authenticated with a
shared ``authkey``.  One daemon thread accepts connections; each worker
connection gets its own handler thread that translates wire messages
into :class:`~repro.distributed.queue.TaskQueue` calls:

    ("lease", worker_id)                     -> ("task", ShardTask) | ("idle",) | ("stop",)
    ("result", worker_id, task_id, arrays)   -> ("ok",)
    ("fail", worker_id, task_id, error_str)  -> ("ok",)
    ("bye", worker_id)                       -> connection closed

Fault tolerance is layered: a broken connection releases the worker's
leases immediately (fast crash detection), and the queue's lease
timeout catches workers that stay connected but stop responding.
"""

from __future__ import annotations

import threading
from multiprocessing.connection import Connection, Listener

from repro.distributed.queue import TaskQueue

__all__ = ["Broker", "DEFAULT_PORT"]

#: Default TCP port of the `goggles-repro coordinator` verb.
DEFAULT_PORT = 41817


class Broker:
    """Serves a :class:`TaskQueue` to workers over authenticated TCP."""

    def __init__(
        self,
        queue: TaskQueue,
        bind: tuple[str, int] = ("127.0.0.1", 0),
        authkey: str | bytes = "goggles-repro",
    ):
        self.queue = queue
        self._authkey = authkey.encode() if isinstance(authkey, str) else bytes(authkey)
        self._listener = Listener(tuple(bind), authkey=self._authkey)
        self._closing = threading.Event()
        self._lock = threading.Lock()
        self._connections: list[Connection] = []
        self._handlers: list[threading.Thread] = []
        self.n_connections = 0  # workers ever accepted
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="goggles-broker-accept", daemon=True
        )
        self._accept_thread.start()

    @property
    def address(self) -> tuple[str, int]:
        """The actually bound (host, port) — resolves ephemeral ports."""
        host, port = self._listener.address
        return str(host), int(port)

    @property
    def active_connections(self) -> int:
        """Worker connections currently open (liveness signal)."""
        with self._lock:
            return len(self._connections)

    # ------------------------------------------------------------------
    # Accept / serve
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn = self._listener.accept()
            except Exception:
                # Auth failure or a probe that vanished: keep serving.
                # A closed listener lands here too — then we are done.
                if self._closing.is_set():
                    return
                continue
            with self._lock:
                if self._closing.is_set():
                    conn.close()
                    return
                self._connections.append(conn)
                self.n_connections += 1
                handler = threading.Thread(
                    target=self._serve, args=(conn,),
                    name=f"goggles-broker-conn-{self.n_connections}", daemon=True,
                )
                self._handlers.append(handler)
            handler.start()

    def _serve(self, conn: Connection) -> None:
        worker_id: str | None = None
        try:
            while not self._closing.is_set():
                message = conn.recv()
                op = message[0]
                if op == "lease":
                    worker_id = message[1]
                    if self._closing.is_set():
                        conn.send(("stop",))
                        break
                    task = self.queue.lease(worker_id)
                    conn.send(("task", task) if task is not None else ("idle",))
                elif op == "result":
                    _, worker_id, task_id, arrays = message
                    self.queue.complete(task_id, worker_id, arrays)
                    conn.send(("ok",))
                elif op == "fail":
                    _, worker_id, task_id, error = message
                    self.queue.fail(task_id, worker_id, error)
                    conn.send(("ok",))
                elif op == "bye":
                    break
                else:
                    conn.send(("error", f"unknown op {op!r}"))
        except (EOFError, OSError, TypeError, ValueError):
            # Worker vanished, or close() raced this thread's recv()
            # (a closed Connection's handle reads as None mid-call).
            # Either way: leases released below.
            pass
        finally:
            if worker_id is not None:
                # Fast crash detection: a broken connection hands the
                # worker's in-flight shards straight back to the queue
                # instead of waiting out the lease timeout.
                self.queue.release_worker(worker_id)
            with self._lock:
                if conn in self._connections:
                    self._connections.remove(conn)
                # Prune this handler too, or a long-lived coordinator
                # with flapping workers accumulates dead Thread objects.
                current = threading.current_thread()
                if current in self._handlers:
                    self._handlers.remove(current)
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting, drop every worker connection. Idempotent."""
        if self._closing.is_set():
            return
        self._closing.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - platform-dependent
            pass
        with self._lock:
            connections, self._connections = self._connections, []
            handlers, self._handlers = self._handlers, []
        for conn in connections:
            try:
                conn.close()  # unblocks the handler's recv()
            except OSError:  # pragma: no cover
                pass
        self._accept_thread.join(timeout=5.0)
        for handler in handlers:
            handler.join(timeout=5.0)
