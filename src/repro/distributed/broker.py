"""The broker: the coordinator's network front door.

Stdlib-only transport: a :class:`multiprocessing.connection.Listener`
bound to a TCP address, so workers may live in other processes *or on
other machines*; the connection handshake is HMAC-authenticated with a
shared ``authkey``.  One daemon thread accepts connections; each worker
connection gets its own handler thread that translates wire messages
into :class:`~repro.distributed.queue.TaskQueue` calls:

    ("lease", worker_id)                     -> ("task", ShardTask) | ("idle",) | ("stop",)
    ("lease_many", worker_id, limit)         -> ("tasks", [ShardTask, ...]) | ("idle",) | ("stop",)
    ("result", worker_id, task_id, arrays[, seconds])  -> ("ok",)
    ("report_many", worker_id, [(task_id, arrays, seconds), ...][, telemetry]) -> ("ok", n_accepted)
    ("fail", worker_id, task_id, error_str)  -> ("ok",)
    ("bye", worker_id[, telemetry])          -> connection closed

The optional trailing ``telemetry`` field (also accepted on
``result-end``) is an encoded frame of worker-side registry deltas and
span records (:func:`repro.distributed.wire.encode_telemetry`), merged
into the coordinator's scrape registry by the attached
:class:`~repro.obs.ship.TelemetryMerger` *before* the completions the
same message carries — so worker-shipped counters reconcile exactly
with coordinator-observed completions the moment a run unblocks.
Malformed frames are counted and dropped, never failing the op.

``lease_many`` grants up to ``limit`` shards in one round-trip — the
actual batch size is planned by the queue's shard autotuner toward a
target of compute-per-lease, so chatty per-shard polling collapses into
a handful of messages.  ``report_many`` is the symmetric upload: many
small results (each with its measured compute seconds, which feed the
autotuner) in one message and one ack.

Results above the worker's ``stream_threshold`` arrive as a *framed
stream* instead of one monolithic message::

    ("result-begin", worker_id, task_id, n_frames, total_bytes[, encoding])  (no reply)
    ("frame", worker_id, task_id, index, bytes)                    (no reply) ×n_frames
    ("result-end", worker_id, task_id[, seconds[, telemetry]]) -> ("ok",) | ("error", reason)

The optional ``encoding`` field selects how the reassembled blob is
decoded: ``"pickle"`` (v1, the default when absent, kept for old
workers) or ``"npy"`` (wire format v2 — raw npy buffers behind a small
framed header, decoded zero-copy by :func:`repro.distributed.wire.decode_arrays`
and never unpickled).

The handler buffers frames per task in thread-local state and only
hands the reassembled result to the queue on a complete, length-checked
``result-end``; a connection that dies mid-stream discards its partial
frames on the spot and releases the worker's leases, so a reassigned
shard can never be completed by garbage.  A malformed stream (missing
header, out-of-order frame, length mismatch) is reported to the queue
as a shard *failure* — burning a retry — rather than poisoning state.

Fault tolerance is layered: a broken connection releases the worker's
leases immediately (fast crash detection), and the queue's lease
timeout catches workers that stay connected but stop responding.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, Listener

from repro.distributed.queue import TaskQueue
from repro.distributed.wire import WireFormatError, decode_arrays, decode_telemetry
from repro.obs import TelemetryMerger, default_registry

__all__ = ["Broker", "DEFAULT_PORT"]

#: Default TCP port of the `goggles-repro coordinator` verb.
DEFAULT_PORT = 41817


@dataclass
class _ResultStream:
    """Reassembly state of one in-flight streamed result."""

    worker_id: str
    n_frames: int
    total_bytes: int
    encoding: str = "pickle"
    frames: list[bytes] = field(default_factory=list)

    def error(self) -> str | None:
        """Why the stream is malformed, or ``None`` if it is complete."""
        if len(self.frames) != self.n_frames:
            return f"expected {self.n_frames} frames, received {len(self.frames)}"
        received = sum(len(frame) for frame in self.frames)
        if received != self.total_bytes:
            return f"expected {self.total_bytes} bytes, received {received}"
        return None


class Broker:
    """Serves a :class:`TaskQueue` to workers over authenticated TCP."""

    def __init__(
        self,
        queue: TaskQueue,
        bind: tuple[str, int] = ("127.0.0.1", 0),
        authkey: str | bytes = "goggles-repro",
        merger: TelemetryMerger | None = None,
    ):
        self.queue = queue
        self.merger = merger
        self._authkey = authkey.encode() if isinstance(authkey, str) else bytes(authkey)
        self._listener = Listener(tuple(bind), authkey=self._authkey)
        self._closing = threading.Event()
        self._lock = threading.Lock()
        self._connections: list[Connection] = []
        self._handlers: list[threading.Thread] = []
        self.n_connections = 0  # workers ever accepted
        self.n_streamed = 0  # results reassembled from frames
        self.n_stream_errors = 0  # malformed streams turned into failures
        self.n_lease_batches = 0  # lease_many grants of more than one shard
        self.n_report_batches = 0  # report_many uploads received
        self.n_telemetry_errors = 0  # undecodable/malformed telemetry frames
        # Process-wide Prometheus mirrors of the counters above (totals
        # across every broker this process has run).
        registry = default_registry()
        self._m_connections = registry.counter(
            "goggles_broker_connections_total", "Worker connections ever accepted by brokers."
        )
        self._m_streamed = registry.counter(
            "goggles_broker_streamed_results_total", "Results reassembled from framed streams."
        )
        self._m_stream_errors = registry.counter(
            "goggles_broker_stream_errors_total", "Malformed result streams turned into failures."
        )
        self._m_lease_batches = registry.counter(
            "goggles_broker_lease_batches_total", "lease_many grants of more than one shard."
        )
        self._m_report_batches = registry.counter(
            "goggles_broker_report_batches_total", "report_many uploads received."
        )
        self._m_telemetry_errors = (
            merger.registry if merger is not None else registry
        ).counter(
            "goggles_broker_telemetry_errors_total",
            "Telemetry frames dropped as undecodable or malformed.",
        )
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="goggles-broker-accept", daemon=True
        )
        self._accept_thread.start()

    @property
    def address(self) -> tuple[str, int]:
        """The actually bound (host, port) — resolves ephemeral ports."""
        host, port = self._listener.address
        return str(host), int(port)

    @property
    def active_connections(self) -> int:
        """Worker connections currently open (liveness signal)."""
        with self._lock:
            return len(self._connections)

    # ------------------------------------------------------------------
    # Accept / serve
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn = self._listener.accept()
            except Exception:
                # Auth failure or a probe that vanished: keep serving.
                # A closed listener lands here too — then we are done.
                if self._closing.is_set():
                    return
                continue
            with self._lock:
                if self._closing.is_set():
                    conn.close()
                    return
                self._connections.append(conn)
                self.n_connections += 1
                self._m_connections.inc()
                handler = threading.Thread(
                    target=self._serve,
                    args=(conn,),
                    name=f"goggles-broker-conn-{self.n_connections}",
                    daemon=True,
                )
                self._handlers.append(handler)
            handler.start()

    def _serve(self, conn: Connection) -> None:
        worker_id: str | None = None
        # In-flight streamed results of THIS connection only.  Local by
        # design: when the connection dies, partial frames die with it —
        # a reassigned lease can never be completed by stale garbage.
        streams: dict[str, _ResultStream] = {}
        try:
            while not self._closing.is_set():
                message = conn.recv()
                op = message[0]
                if op == "lease":
                    worker_id = message[1]
                    if self._closing.is_set():
                        conn.send(("stop",))
                        break
                    task = self.queue.lease(worker_id)
                    conn.send(("task", task) if task is not None else ("idle",))
                elif op == "lease_many":
                    _, worker_id, limit = message
                    if self._closing.is_set():
                        conn.send(("stop",))
                        break
                    tasks = self.queue.lease_many(worker_id, int(limit))
                    if len(tasks) > 1:
                        with self._lock:
                            self.n_lease_batches += 1
                        self._m_lease_batches.inc()
                    conn.send(("tasks", tasks) if tasks else ("idle",))
                elif op == "result":
                    _, worker_id, task_id, arrays, *rest = message
                    seconds = float(rest[0]) if rest else None
                    self.queue.complete(task_id, worker_id, arrays, seconds)
                    conn.send(("ok",))
                elif op == "report_many":
                    _, worker_id, reports, *rest = message
                    # Merge the piggybacked telemetry BEFORE the
                    # completions it covers, so a caller unblocked by
                    # the final complete() already sees the merged
                    # worker counters (exact reconciliation).
                    if rest:
                        self._merge_telemetry(rest[0])
                    accepted = 0
                    for task_id, arrays, seconds in reports:
                        if self.queue.complete(
                            task_id, worker_id, arrays,
                            None if seconds is None else float(seconds),
                        ):
                            accepted += 1
                    with self._lock:
                        self.n_report_batches += 1
                    self._m_report_batches.inc()
                    conn.send(("ok", accepted))
                elif op == "result-begin":
                    _, worker_id, task_id, n_frames, total_bytes, *rest = message
                    streams[task_id] = _ResultStream(
                        worker_id=worker_id,
                        n_frames=int(n_frames),
                        total_bytes=int(total_bytes),
                        encoding=str(rest[0]) if rest else "pickle",
                    )
                elif op == "frame":
                    _, worker_id, task_id, index, frame = message
                    stream = streams.get(task_id)
                    if stream is not None and index == len(stream.frames):
                        stream.frames.append(frame)
                    elif stream is not None:
                        # Out-of-order frame: poison the reassembly so
                        # result-end reports a failure, not bad data.
                        stream.n_frames = -1
                elif op == "result-end":
                    _, worker_id, task_id, *rest = message
                    seconds = float(rest[0]) if rest and rest[0] is not None else None
                    if len(rest) > 1:
                        self._merge_telemetry(rest[1])
                    conn.send(self._finish_stream(streams, task_id, worker_id, seconds))
                elif op == "fail":
                    _, worker_id, task_id, error = message
                    self.queue.fail(task_id, worker_id, error)
                    conn.send(("ok",))
                elif op == "bye":
                    if len(message) > 2:
                        self._merge_telemetry(message[2])
                    break
                else:
                    conn.send(("error", f"unknown op {op!r}"))
        except (EOFError, OSError, TypeError, ValueError):
            # Worker vanished, or close() raced this thread's recv()
            # (a closed Connection's handle reads as None mid-call).
            # Either way: leases released below.
            pass
        finally:
            if worker_id is not None:
                # Fast crash detection: a broken connection hands the
                # worker's in-flight shards straight back to the queue
                # instead of waiting out the lease timeout.
                self.queue.release_worker(worker_id)
            with self._lock:
                if conn in self._connections:
                    self._connections.remove(conn)
                # Prune this handler too, or a long-lived coordinator
                # with flapping workers accumulates dead Thread objects.
                current = threading.current_thread()
                if current in self._handlers:
                    self._handlers.remove(current)
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def _merge_telemetry(self, blob: object) -> None:
        """Fold one piggybacked telemetry frame into the merger.

        Telemetry is freight, never protocol: a malformed frame is
        counted and dropped without failing the op it rode on, and a
        broker with no merger ignores frames entirely.
        """
        if self.merger is None:
            return
        try:
            if not isinstance(blob, (bytes, bytearray, memoryview)):
                raise WireFormatError(
                    f"telemetry field must be bytes, got {type(blob).__name__}"
                )
            self.merger.merge(decode_telemetry(blob))
        except (WireFormatError, ValueError):
            with self._lock:
                self.n_telemetry_errors += 1
            self._m_telemetry_errors.inc()

    def _finish_stream(
        self,
        streams: dict[str, _ResultStream],
        task_id: str,
        worker_id: str,
        seconds: float | None = None,
    ) -> tuple:
        """Reassemble a completed stream into a queue completion.

        Returns the reply to send: ``("ok",)`` on success, or
        ``("error", reason)`` after reporting a malformed stream to the
        queue as a shard failure (requeue/poison semantics apply).
        """
        stream = streams.pop(task_id, None)
        if stream is None:
            reason = f"result-end for {task_id[:12]} without result-begin"
        else:
            reason = stream.error()
        if reason is None:
            blob = b"".join(stream.frames)
            if stream.encoding == "npy":
                try:
                    arrays = decode_arrays(blob)
                except WireFormatError as error:
                    reason = f"wire v2 decode failed: {error}"
            elif stream.encoding == "pickle":
                try:
                    arrays = pickle.loads(blob)
                except Exception as error:  # noqa: BLE001 - corrupt blob
                    reason = f"stream deserialisation failed: {type(error).__name__}: {error}"
            else:
                reason = f"unknown result encoding {stream.encoding!r}"
        if reason is not None:
            with self._lock:
                self.n_stream_errors += 1
            self._m_stream_errors.inc()
            self.queue.fail(task_id, worker_id, f"streamed result discarded: {reason}")
            return ("error", reason)
        self.queue.complete(task_id, worker_id, arrays, seconds)
        with self._lock:
            self.n_streamed += 1
        self._m_streamed.inc()
        return ("ok",)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting, drop every worker connection. Idempotent."""
        if self._closing.is_set():
            return
        self._closing.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - platform-dependent
            pass
        with self._lock:
            connections, self._connections = self._connections, []
            handlers, self._handlers = self._handlers, []
        for conn in connections:
            try:
                conn.close()  # unblocks the handler's recv()
            except OSError:  # pragma: no cover
                pass
        self._accept_thread.join(timeout=5.0)
        for handler in handlers:
            handler.join(timeout=5.0)
