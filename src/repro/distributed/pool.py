"""Warm worker pools: one cluster, many runs, zero re-spawns.

Cold-starting a distributed run pays for everything that is *not*
compute: spawning worker processes, re-importing numpy and the repro
package in each, re-binding the broker socket, re-running the HMAC
handshakes, and re-memoising the deterministic VGG backbone per
process.  At small N those costs dwarf the shard work — the committed
benchmark showed distributed 7–10× *slower* than serial at N=80 almost
entirely because of them.  None of that work changes between runs, so
a :class:`WorkerPool` pays it once and keeps the cluster warm.

A pool wraps a ``persistent`` :class:`~repro.distributed.coordinator.Coordinator`:
``Goggles``/engine teardown between runs calls plain ``close()``, which
a persistent coordinator ignores, so the workers, their warmed imports
and backbones, and the broker socket all survive until the *pool* is
closed (explicitly, via ``with``, or at garbage collection).  Reuse is
observable: :attr:`workers_spawned` counts process/thread launches over
the pool's whole life, so a test can assert a second run spawned zero
new workers.

Usage::

    with WorkerPool(n_workers=4) as pool:
        for config in experiments:
            with Goggles(config, coordinator=pool) as goggles:
                labels = goggles.label(images)   # warm after run 1

Everything that accepts a coordinator also accepts a pool — the
engines unwrap it through the duck-typed ``as_coordinator()`` method.
"""

from __future__ import annotations

from repro.distributed.coordinator import Coordinator, DistributedConfig
from repro.engine.cache import ArtifactCache
from repro.obs import MetricsRegistry

__all__ = ["WorkerPool", "as_coordinator"]


def as_coordinator(candidate):
    """Unwrap a Coordinator-or-WorkerPool into the Coordinator inside.

    Duck-typed (anything exposing ``as_coordinator()`` qualifies) so
    call sites in the engines need no import of this module — and no
    isinstance ladder — to accept either shape.  Plain coordinators
    pass through unchanged; ``None`` stays ``None``.
    """
    unwrap = getattr(candidate, "as_coordinator", None)
    return unwrap() if callable(unwrap) else candidate


class WorkerPool:
    """A persistent local cluster shared across runs in one process.

    Parameters:
        config: full session configuration; mutually exclusive with the
            ``n_workers``/``worker_mode`` shorthand.
        n_workers: local workers to keep warm (shorthand for a default
            loopback :class:`DistributedConfig`).
        worker_mode: ``"process"`` or ``"thread"`` (shorthand only).
        cache: optional shared artifact cache mounted on the
            coordinator (and on thread workers).
        registry: metrics registry for the session's telemetry (shard
            timelines, merged worker counters); default process-wide.
    """

    def __init__(
        self,
        config: DistributedConfig | None = None,
        *,
        n_workers: int = 2,
        worker_mode: str = "process",
        cache: ArtifactCache | None = None,
        registry: MetricsRegistry | None = None,
    ):
        if config is None:
            config = DistributedConfig(n_workers=n_workers, worker_mode=worker_mode)
        elif config.n_workers == 0:
            raise ValueError(
                "a WorkerPool exists to keep local workers warm; config.n_workers "
                "must be >= 1 (use a bare Coordinator for external-worker sessions)"
            )
        self._coordinator = Coordinator(config, cache=cache, persistent=True, registry=registry)
        self._closed = False

    # ------------------------------------------------------------------
    # The unwrap protocol (what Goggles / the engines call)
    # ------------------------------------------------------------------
    def as_coordinator(self) -> Coordinator:
        """The persistent coordinator this pool keeps warm."""
        if self._closed:
            raise RuntimeError("worker pool is closed")
        return self._coordinator

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def config(self) -> DistributedConfig:
        return self._coordinator.config

    @property
    def started(self) -> bool:
        """Whether the broker is bound and workers are live."""
        return self._coordinator.started

    @property
    def workers_spawned(self) -> int:
        """Worker processes/threads launched over the pool's lifetime.

        Stays flat across warm runs — the reuse counter the tests
        assert on: run twice, expect the same number you started with.
        """
        return self._coordinator.stats["workers_spawned"]

    @property
    def runs(self) -> int:
        """Shard-plan executions served (cache-only runs included)."""
        return self._coordinator.stats["runs"]

    def warm_up(self) -> "WorkerPool":
        """Bind the broker and spawn the workers now, not at first use.

        Lets callers pay the cold start at a time of their choosing
        (service startup, before a benchmark's timed region).
        """
        self._coordinator.start()
        return self

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Really shut the cluster down. Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._coordinator.close(force=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
