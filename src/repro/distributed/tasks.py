"""Shard tasks: the unit of work of the distributed runtime.

All three embarrassingly parallel stages of the pipeline decompose
into pure, content-addressed tasks that any worker can compute:

* ``"extraction"`` — one chunked-batch VGG forward pass of stage 1
  (paper §3, "all 5 max-pooling layers").  The :class:`ShardPlanner`
  cuts the corpus at *exactly* the serial chunk boundaries
  (:func:`repro.engine.features.iter_batches`); the backbone is fully
  deterministic from its :class:`~repro.nn.vgg.VGGConfig`, so the
  worker rebuilds it once per process (memoised) and runs the same
  per-chunk ``forward_pools`` call as the serial engine — every conv /
  ReLU / max-pool layer is per-sample independent, so the merged pool
  features are bit-identical to a single-machine extraction.
* ``"similarity"`` — one (image-tile × prototype-row-tile) block of the
  α·N² affinity computation (paper §3).  The :class:`ShardPlanner` cuts
  the grid at *exactly* the serial tile boundaries
  (:func:`repro.engine.tiling.tile_bounds`) and the worker kernel runs
  the same per-image matmuls as the serial ``score_block``, so the
  merged matrix is bit-identical to a single-machine build.
* ``"base-fit"`` — one per-affinity-function base GMM fit (paper §4,
  "we can parallelize all of the base models", §5.3).  The worker runs
  :func:`repro.core.inference.hierarchical.fit_base_function`, which
  derives the function's own seed stream, so the result is independent
  of which worker computes it, in which order, after how many retries.

A task's id is a SHA-256 over every value-affecting byte of its payload
(array content + parameter reprs).  Content addressing buys three
properties at once: duplicate tiles collapse into one computation,
at-least-once execution under lease reassignment is harmless
(identical content ⇒ identical output), and results can be cached in a
shared :class:`~repro.engine.cache.ArtifactCache` (kind ``"shard"``) so
a rerun — by any worker or the coordinator itself — is a disk hit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.inference.base_gmm import GMMFitResult
from repro.core.inference.hierarchical import HierarchicalConfig, fit_base_function
from repro.engine.cache import ArtifactCache, hash_arrays, hash_params
from repro.engine.features import iter_batches
from repro.engine.tiling import tile_bounds
from repro.nn.vgg import VGG16, VGGConfig
from repro.obs import current_trace_id

__all__ = [
    "ShardTask",
    "ShardPlanner",
    "extraction_task",
    "similarity_task",
    "base_fit_task",
    "execute_shard",
    "load_shard_result",
    "required_result_keys",
    "pack_gmm_result",
    "unpack_gmm_result",
    "shard_key",
]

# Bounds of one grid axis: (start, end).
Bounds = tuple[int, int]


def shard_key(kind: str, data_hash: str, params: dict[str, object]) -> str:
    """Content address of one shard: kind | array content | parameters."""
    material = f"{kind}|{data_hash}|{hash_params(params)}"
    return hashlib.sha256(material.encode()).hexdigest()


@dataclass(frozen=True)
class ShardTask:
    """One unit of distributed work.

    Attributes:
        task_id: content address (see :func:`shard_key`); identical
            payloads share an id, so retries and duplicates are safe.
        kind: ``"similarity"`` or ``"base-fit"``.
        payload: everything the worker needs — numpy arrays plus plain
            picklable parameters.  Shipped over the connection verbatim.
        trace_id: the submitting request's trace id, captured from the
            planning context at build time.  **Not** part of the content
            address (two requests computing the same shard share one
            task id, result, and cache entry) and excluded from
            equality — it is observability freight, never compute
            input.  The worker re-installs it around the shard's
            execution so worker-side spans stitch into the submitting
            request's timeline.
    """

    task_id: str
    kind: str
    payload: dict = field(repr=False)
    trace_id: str | None = field(default=None, repr=False, compare=False)


# ----------------------------------------------------------------------
# Task builders
# ----------------------------------------------------------------------
def extraction_task(vgg_config: VGGConfig, images: np.ndarray, layers: tuple[int, ...]) -> ShardTask:
    """One chunked-batch VGG forward pass of stage-1 feature extraction.

    The payload carries the *config*, not the model: the surrogate
    backbone derives every weight deterministically from its
    :class:`~repro.nn.vgg.VGGConfig` seed, so ``repr(config)`` is a
    complete content address for the network and the worker can rebuild
    it (memoised per process) instead of shipping megabytes of weights
    with every shard.
    """
    images = np.ascontiguousarray(images)
    layers = tuple(int(layer) for layer in layers)
    task_id = shard_key("extraction", hash_arrays(images), {"vgg": repr(vgg_config), "layers": layers})
    return ShardTask(
        task_id=task_id,
        kind="extraction",
        payload={"images": images, "vgg": vgg_config, "layers": layers},
        trace_id=current_trace_id(),
    )


def similarity_task(prototypes: np.ndarray, vectors: np.ndarray) -> ShardTask:
    """One tile of ``best_similarities``: score ``prototypes`` against
    the unit location vectors of a tile of images.

    The arrays must already carry the engine's compute dtype (the
    planner casts once, before slicing, exactly like the serial kernel)
    — the dtype is therefore part of the content hash via the array
    bytes themselves.

    Bit-identity requires shipping not just the tile's *values* but its
    per-image memory **layout**: VGG pool features arrive as transposed
    views, so the serial kernel's ``(C, P)`` operands are F-ordered,
    and BLAS may round a transposed GEMM differently (~1 ulp) than a
    C-ordered one.  F-ordered tiles are therefore serialised as their
    ``(P, C)`` transpose and re-transposed by the worker, recreating
    the exact strides the serial kernel sees.
    """
    prototypes = np.ascontiguousarray(prototypes)
    # Per-image layout: F-ordered when the channel axis is the minor one.
    transposed = vectors.strides[-2] <= vectors.strides[-1]
    shipped = np.ascontiguousarray(vectors.transpose(0, 2, 1) if transposed else vectors)
    task_id = shard_key("similarity", hash_arrays(prototypes, shipped), {"transposed": transposed})
    return ShardTask(
        task_id=task_id,
        kind="similarity",
        payload={"prototypes": prototypes, "vectors": shipped, "transposed": transposed},
        trace_id=current_trace_id(),
    )


def base_fit_task(
    block: np.ndarray,
    config: HierarchicalConfig,
    function_index: int,
    init: np.ndarray | None = None,
) -> ShardTask:
    """One per-affinity-function base GMM fit (optionally warm-started)."""
    block = np.ascontiguousarray(block)
    arrays = [block] if init is None else [block, np.ascontiguousarray(init)]
    params: dict[str, object] = {
        "config": repr(config),
        "function_index": int(function_index),
        "warm": init is not None,
    }
    task_id = shard_key("base-fit", hash_arrays(*arrays), params)
    return ShardTask(
        task_id=task_id,
        kind="base-fit",
        payload={
            "block": block,
            "config": config,
            "function_index": int(function_index),
            "init": init,
        },
        trace_id=current_trace_id(),
    )


# ----------------------------------------------------------------------
# Result (de)serialisation: every shard result is a flat {name: array}
# mapping, so it ships over a connection and caches as an .npz alike.
# ----------------------------------------------------------------------
_GMM_KEYS = (
    "responsibilities",
    "log_likelihood",
    "n_iterations",
    "converged",
    "degenerate",
    "reinitialized",
)


def pack_gmm_result(result: GMMFitResult) -> dict[str, np.ndarray]:
    return {
        "responsibilities": result.responsibilities,
        "log_likelihood": np.float64(result.log_likelihood),
        "n_iterations": np.int64(result.n_iterations),
        "converged": np.bool_(result.converged),
        "degenerate": np.bool_(result.degenerate),
        "reinitialized": np.bool_(result.reinitialized),
    }


def unpack_gmm_result(arrays: dict[str, np.ndarray]) -> GMMFitResult:
    # params=None on purpose: responsibilities — not means, whose
    # dimension is N — are the portable state, matching what a cached
    # inference replay reconstructs.
    return GMMFitResult(
        responsibilities=np.asarray(arrays["responsibilities"]),
        log_likelihood=float(arrays["log_likelihood"]),
        n_iterations=int(arrays["n_iterations"]),
        converged=bool(arrays["converged"]),
        degenerate=bool(arrays["degenerate"]),
        reinitialized=bool(arrays["reinitialized"]),
    )


# ----------------------------------------------------------------------
# Execution (worker side)
# ----------------------------------------------------------------------
#: Per-process backbone memo: building a VGG16 (calibration forward
#: passes included) dwarfs a single chunk's forward pass, so a worker
#: rebuilds each distinct config exactly once and reuses it for every
#: extraction shard that names it.
_BACKBONES: dict[str, VGG16] = {}


def _backbone(config: VGGConfig) -> VGG16:
    key = repr(config)
    model = _BACKBONES.get(key)
    if model is None:
        model = _BACKBONES[key] = VGG16(config)
    return model


def _run_extraction(payload: dict) -> dict[str, np.ndarray]:
    """Exactly the serial per-chunk call of
    :func:`repro.engine.features.extract_pool_features`: the backbone is
    per-sample independent, so a chunk's pool maps are bit-identical to
    the same rows of a whole-corpus forward pass.

    Like similarity tiles, extraction results ship their memory
    **layout**, not just their values: the conv stack emits pool maps
    channels-last in memory (an ``(N, H, W, C)`` buffer viewed as
    ``(N, C, H, W)``), the downstream unit vectors inherit those
    strides, and BLAS rounds the per-image GEMM differently (~1 ulp)
    for C- vs F-ordered operands.  Channels-last maps therefore travel
    as their natural ``(N, H, W, C)`` contiguous form plus a flag, and
    the coordinator re-views them so the merged corpus carries exactly
    the serial strides.
    """
    model = _backbone(payload["vgg"])
    pools = model.forward_pools(payload["images"])
    out: dict[str, np.ndarray] = {}
    for layer in payload["layers"]:
        pool = pools[layer]
        channels_last = pool.strides[1] <= pool.strides[-1]  # channel axis is minor
        out[f"pool_{layer}"] = np.ascontiguousarray(pool.transpose(0, 2, 3, 1) if channels_last else pool)
        out[f"channels_last_{layer}"] = np.bool_(channels_last)
    return out


def _run_similarity(payload: dict) -> dict[str, np.ndarray]:
    """Exactly the serial ``score_block`` inner loop of
    :func:`repro.engine.tiling.best_similarities`: same per-image
    matmul shapes *and strides* (see :func:`similarity_task`), so the
    result is bit-identical to a serial tile."""
    prototypes, vectors = payload["prototypes"], payload["vectors"]
    if payload.get("transposed"):
        vectors = vectors.transpose(0, 2, 1)  # restore the serial F-order view
    best = np.empty((prototypes.shape[0], vectors.shape[0]), dtype=np.float64)
    for i in range(vectors.shape[0]):
        best[:, i] = (prototypes @ vectors[i]).max(axis=1)
    return {"best": best}


def _run_base_fit(payload: dict) -> dict[str, np.ndarray]:
    result = fit_base_function(
        payload["block"],
        payload["config"],
        int(payload["function_index"]),
        init=payload.get("init"),
    )
    return pack_gmm_result(result)


#: kind -> (executor function, required result keys — static tuple or
#: a function of the task for kinds whose schema depends on the payload)
TASK_KINDS: dict[str, tuple] = {
    "extraction": (
        _run_extraction,
        lambda task: tuple(
            f"{prefix}_{layer}"
            for layer in task.payload["layers"]
            for prefix in ("pool", "channels_last")
        ),
    ),
    "similarity": (_run_similarity, ("best",)),
    "base-fit": (_run_base_fit, _GMM_KEYS),
}


def required_result_keys(task: ShardTask) -> tuple[str, ...]:
    """The result keys a well-formed shard result of ``task`` must hold."""
    _, required = TASK_KINDS[task.kind]
    return tuple(required(task)) if callable(required) else required


def load_shard_result(cache: ArtifactCache, task: ShardTask) -> dict[str, np.ndarray] | None:
    """A cached shard result, or ``None`` (schema drift evicts+misses)."""
    arrays = cache.load_arrays("shard", task.task_id)
    if arrays is None:
        return None
    if any(name not in arrays for name in required_result_keys(task)):
        cache.evict("shard", task.task_id)
        return None
    return arrays


def execute_shard(task: ShardTask, cache: ArtifactCache | None = None) -> dict[str, np.ndarray]:
    """Compute one shard (cache-aware when a shared cache is mounted)."""
    if task.kind not in TASK_KINDS:
        raise ValueError(f"unknown shard kind {task.kind!r}")
    if cache is not None:
        cached = load_shard_result(cache, task)
        if cached is not None:
            return cached
    run, _ = TASK_KINDS[task.kind]
    result = run(task.payload)
    if cache is not None:
        cache.save_arrays("shard", task.task_id, result)
    return result


# ----------------------------------------------------------------------
# Planning (coordinator side)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardPlanner:
    """Cuts stage work into content-addressed shard tasks.

    ``row_tile``/``col_tile`` mirror the engine's serial tile grid over
    (images × prototype rows); sharding at the same boundaries is what
    makes the distributed merge bit-identical to the serial kernel.
    Extraction shards likewise cut the corpus at the serial chunked-batch
    boundaries of :func:`repro.engine.features.iter_batches`.
    """

    row_tile: int | None = 32
    col_tile: int | None = None

    def extraction_shards(
        self,
        vgg_config: VGGConfig,
        images: np.ndarray,
        layers: tuple[int, ...],
        batch_size: int | None,
    ) -> tuple[list[ShardTask], list[str]]:
        """Shard one ``extract_pool_features`` call.

        Returns ``(tasks, order)`` where ``order`` lists one task id per
        corpus chunk *in corpus order* — the merge concatenates chunk
        results along axis 0 in exactly this order, which is what makes
        the assembled pool features bit-identical to the serial chunked
        extraction.  Identical chunks de-duplicate into a single task
        whose id then appears at every slot it fills.
        """
        tasks: list[ShardTask] = []
        order: list[str] = []
        known: set[str] = set()
        for batch in iter_batches(images.shape[0], batch_size):
            task = extraction_task(vgg_config, images[batch], layers)
            if task.task_id not in known:
                known.add(task.task_id)
                tasks.append(task)
            order.append(task.task_id)
        return tasks, order

    def similarity_shards(
        self,
        prototypes: np.ndarray,
        unit_vectors: np.ndarray,
        dtype: np.dtype | type = np.float64,
    ) -> tuple[list[ShardTask], dict[str, list[tuple[Bounds, Bounds]]]]:
        """Shard one ``best_similarities`` call.

        Returns ``(tasks, targets)`` where ``targets[task_id]`` lists
        the ``((i0, i1), (j0, j1))`` output slots the shard's ``best``
        block fills — more than one when identical tiles de-duplicate.
        """
        dtype = np.dtype(dtype)
        # Cast once, then slice — the same bytes the serial kernel sees.
        protos = prototypes.astype(dtype, copy=False)
        vectors = unit_vectors.astype(dtype, copy=False)
        tasks: list[ShardTask] = []
        targets: dict[str, list[tuple[Bounds, Bounds]]] = {}
        for rows in tile_bounds(vectors.shape[0], self.row_tile):
            for cols in tile_bounds(protos.shape[0], self.col_tile):
                (i0, i1), (j0, j1) = rows, cols
                task = similarity_task(protos[j0:j1], vectors[i0:i1])
                if task.task_id not in targets:
                    tasks.append(task)
                targets.setdefault(task.task_id, []).append((rows, cols))
        return tasks, targets

    def base_fit_shards(
        self,
        affinity,
        config: HierarchicalConfig,
        initializers: list[np.ndarray] | None = None,
    ) -> list[ShardTask]:
        """One shard per affinity function (the §5.3 parallel unit)."""
        return [
            base_fit_task(
                affinity.block(f),
                config,
                f,
                init=initializers[f] if initializers is not None else None,
            )
            for f in range(affinity.n_functions)
        ]
