"""Shard tasks: the unit of work of the distributed runtime.

Both embarrassingly parallel stages of the pipeline decompose into
pure, content-addressed tasks that any worker can compute:

* ``"similarity"`` — one (image-tile × prototype-row-tile) block of the
  α·N² affinity computation (paper §3).  The :class:`ShardPlanner` cuts
  the grid at *exactly* the serial tile boundaries
  (:func:`repro.engine.tiling.tile_bounds`) and the worker kernel runs
  the same per-image matmuls as the serial ``score_block``, so the
  merged matrix is bit-identical to a single-machine build.
* ``"base-fit"`` — one per-affinity-function base GMM fit (paper §4,
  "we can parallelize all of the base models", §5.3).  The worker runs
  :func:`repro.core.inference.hierarchical.fit_base_function`, which
  derives the function's own seed stream, so the result is independent
  of which worker computes it, in which order, after how many retries.

A task's id is a SHA-256 over every value-affecting byte of its payload
(array content + parameter reprs).  Content addressing buys three
properties at once: duplicate tiles collapse into one computation,
at-least-once execution under lease reassignment is harmless
(identical content ⇒ identical output), and results can be cached in a
shared :class:`~repro.engine.cache.ArtifactCache` (kind ``"shard"``) so
a rerun — by any worker or the coordinator itself — is a disk hit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.inference.base_gmm import GMMFitResult
from repro.core.inference.hierarchical import HierarchicalConfig, fit_base_function
from repro.engine.cache import ArtifactCache, hash_arrays, hash_params
from repro.engine.tiling import tile_bounds

__all__ = [
    "ShardTask",
    "ShardPlanner",
    "similarity_task",
    "base_fit_task",
    "execute_shard",
    "load_shard_result",
    "pack_gmm_result",
    "unpack_gmm_result",
    "shard_key",
]

# Bounds of one grid axis: (start, end).
Bounds = tuple[int, int]


def shard_key(kind: str, data_hash: str, params: dict[str, object]) -> str:
    """Content address of one shard: kind | array content | parameters."""
    material = f"{kind}|{data_hash}|{hash_params(params)}"
    return hashlib.sha256(material.encode()).hexdigest()


@dataclass(frozen=True)
class ShardTask:
    """One unit of distributed work.

    Attributes:
        task_id: content address (see :func:`shard_key`); identical
            payloads share an id, so retries and duplicates are safe.
        kind: ``"similarity"`` or ``"base-fit"``.
        payload: everything the worker needs — numpy arrays plus plain
            picklable parameters.  Shipped over the connection verbatim.
    """

    task_id: str
    kind: str
    payload: dict = field(repr=False)


# ----------------------------------------------------------------------
# Task builders
# ----------------------------------------------------------------------
def similarity_task(prototypes: np.ndarray, vectors: np.ndarray) -> ShardTask:
    """One tile of ``best_similarities``: score ``prototypes`` against
    the unit location vectors of a tile of images.

    The arrays must already carry the engine's compute dtype (the
    planner casts once, before slicing, exactly like the serial kernel)
    — the dtype is therefore part of the content hash via the array
    bytes themselves.

    Bit-identity requires shipping not just the tile's *values* but its
    per-image memory **layout**: VGG pool features arrive as transposed
    views, so the serial kernel's ``(C, P)`` operands are F-ordered,
    and BLAS may round a transposed GEMM differently (~1 ulp) than a
    C-ordered one.  F-ordered tiles are therefore serialised as their
    ``(P, C)`` transpose and re-transposed by the worker, recreating
    the exact strides the serial kernel sees.
    """
    prototypes = np.ascontiguousarray(prototypes)
    # Per-image layout: F-ordered when the channel axis is the minor one.
    transposed = vectors.strides[-2] <= vectors.strides[-1]
    shipped = np.ascontiguousarray(vectors.transpose(0, 2, 1) if transposed else vectors)
    task_id = shard_key(
        "similarity", hash_arrays(prototypes, shipped), {"transposed": transposed}
    )
    return ShardTask(
        task_id=task_id,
        kind="similarity",
        payload={"prototypes": prototypes, "vectors": shipped, "transposed": transposed},
    )


def base_fit_task(
    block: np.ndarray,
    config: HierarchicalConfig,
    function_index: int,
    init: np.ndarray | None = None,
) -> ShardTask:
    """One per-affinity-function base GMM fit (optionally warm-started)."""
    block = np.ascontiguousarray(block)
    arrays = [block] if init is None else [block, np.ascontiguousarray(init)]
    params: dict[str, object] = {
        "config": repr(config),
        "function_index": int(function_index),
        "warm": init is not None,
    }
    task_id = shard_key("base-fit", hash_arrays(*arrays), params)
    return ShardTask(
        task_id=task_id,
        kind="base-fit",
        payload={
            "block": block,
            "config": config,
            "function_index": int(function_index),
            "init": init,
        },
    )


# ----------------------------------------------------------------------
# Result (de)serialisation: every shard result is a flat {name: array}
# mapping, so it ships over a connection and caches as an .npz alike.
# ----------------------------------------------------------------------
_GMM_KEYS = (
    "responsibilities", "log_likelihood", "n_iterations",
    "converged", "degenerate", "reinitialized",
)


def pack_gmm_result(result: GMMFitResult) -> dict[str, np.ndarray]:
    return {
        "responsibilities": result.responsibilities,
        "log_likelihood": np.float64(result.log_likelihood),
        "n_iterations": np.int64(result.n_iterations),
        "converged": np.bool_(result.converged),
        "degenerate": np.bool_(result.degenerate),
        "reinitialized": np.bool_(result.reinitialized),
    }


def unpack_gmm_result(arrays: dict[str, np.ndarray]) -> GMMFitResult:
    # params=None on purpose: responsibilities — not means, whose
    # dimension is N — are the portable state, matching what a cached
    # inference replay reconstructs.
    return GMMFitResult(
        responsibilities=np.asarray(arrays["responsibilities"]),
        log_likelihood=float(arrays["log_likelihood"]),
        n_iterations=int(arrays["n_iterations"]),
        converged=bool(arrays["converged"]),
        degenerate=bool(arrays["degenerate"]),
        reinitialized=bool(arrays["reinitialized"]),
    )


# ----------------------------------------------------------------------
# Execution (worker side)
# ----------------------------------------------------------------------
def _run_similarity(payload: dict) -> dict[str, np.ndarray]:
    """Exactly the serial ``score_block`` inner loop of
    :func:`repro.engine.tiling.best_similarities`: same per-image
    matmul shapes *and strides* (see :func:`similarity_task`), so the
    result is bit-identical to a serial tile."""
    prototypes, vectors = payload["prototypes"], payload["vectors"]
    if payload.get("transposed"):
        vectors = vectors.transpose(0, 2, 1)  # restore the serial F-order view
    best = np.empty((prototypes.shape[0], vectors.shape[0]), dtype=np.float64)
    for i in range(vectors.shape[0]):
        best[:, i] = (prototypes @ vectors[i]).max(axis=1)
    return {"best": best}


def _run_base_fit(payload: dict) -> dict[str, np.ndarray]:
    result = fit_base_function(
        payload["block"],
        payload["config"],
        int(payload["function_index"]),
        init=payload.get("init"),
    )
    return pack_gmm_result(result)


#: kind -> (executor function, required result keys)
TASK_KINDS: dict[str, tuple] = {
    "similarity": (_run_similarity, ("best",)),
    "base-fit": (_run_base_fit, _GMM_KEYS),
}


def load_shard_result(cache: ArtifactCache, task: ShardTask) -> dict[str, np.ndarray] | None:
    """A cached shard result, or ``None`` (schema drift evicts+misses)."""
    arrays = cache.load_arrays("shard", task.task_id)
    if arrays is None:
        return None
    _, required = TASK_KINDS[task.kind]
    if any(name not in arrays for name in required):
        cache.evict("shard", task.task_id)
        return None
    return arrays


def execute_shard(task: ShardTask, cache: ArtifactCache | None = None) -> dict[str, np.ndarray]:
    """Compute one shard (cache-aware when a shared cache is mounted)."""
    if task.kind not in TASK_KINDS:
        raise ValueError(f"unknown shard kind {task.kind!r}")
    if cache is not None:
        cached = load_shard_result(cache, task)
        if cached is not None:
            return cached
    run, _ = TASK_KINDS[task.kind]
    result = run(task.payload)
    if cache is not None:
        cache.save_arrays("shard", task.task_id, result)
    return result


# ----------------------------------------------------------------------
# Planning (coordinator side)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardPlanner:
    """Cuts stage work into content-addressed shard tasks.

    ``row_tile``/``col_tile`` mirror the engine's serial tile grid over
    (images × prototype rows); sharding at the same boundaries is what
    makes the distributed merge bit-identical to the serial kernel.
    """

    row_tile: int | None = 32
    col_tile: int | None = None

    def similarity_shards(
        self,
        prototypes: np.ndarray,
        unit_vectors: np.ndarray,
        dtype: np.dtype | type = np.float64,
    ) -> tuple[list[ShardTask], dict[str, list[tuple[Bounds, Bounds]]]]:
        """Shard one ``best_similarities`` call.

        Returns ``(tasks, targets)`` where ``targets[task_id]`` lists
        the ``((i0, i1), (j0, j1))`` output slots the shard's ``best``
        block fills — more than one when identical tiles de-duplicate.
        """
        dtype = np.dtype(dtype)
        # Cast once, then slice — the same bytes the serial kernel sees.
        protos = prototypes.astype(dtype, copy=False)
        vectors = unit_vectors.astype(dtype, copy=False)
        tasks: list[ShardTask] = []
        targets: dict[str, list[tuple[Bounds, Bounds]]] = {}
        for rows in tile_bounds(vectors.shape[0], self.row_tile):
            for cols in tile_bounds(protos.shape[0], self.col_tile):
                (i0, i1), (j0, j1) = rows, cols
                task = similarity_task(protos[j0:j1], vectors[i0:i1])
                if task.task_id not in targets:
                    tasks.append(task)
                targets.setdefault(task.task_id, []).append((rows, cols))
        return tasks, targets

    def base_fit_shards(
        self,
        affinity,
        config: HierarchicalConfig,
        initializers: list[np.ndarray] | None = None,
    ) -> list[ShardTask]:
        """One shard per affinity function (the §5.3 parallel unit)."""
        return [
            base_fit_task(
                affinity.block(f),
                config,
                f,
                init=initializers[f] if initializers is not None else None,
            )
            for f in range(affinity.n_functions)
        ]
