"""Data-programming substrate: labeling functions, Snorkel, Snuba."""

from repro.labeling.label_model import LabelModel, LabelModelResult, majority_vote
from repro.labeling.lf import (
    ABSTAIN,
    LabelingFunction,
    apply_labeling_functions,
    attribute_lfs_from_dataset,
    lf_summary,
)
from repro.labeling.primitives import extract_snuba_primitives
from repro.labeling.snuba import DecisionStump, Snuba, SnubaResult

__all__ = [
    "LabelModel",
    "LabelModelResult",
    "majority_vote",
    "ABSTAIN",
    "LabelingFunction",
    "apply_labeling_functions",
    "attribute_lfs_from_dataset",
    "lf_summary",
    "extract_snuba_primitives",
    "DecisionStump",
    "Snuba",
    "SnubaResult",
]
