"""Automatic primitive extraction for Snuba (paper §5.1.2).

Snuba needs per-instance *primitives*.  None of the datasets ship
user-provided primitives, so — following the Snuba authors' suggestion
quoted in the paper — we use "the logits layer of the pre-trained
VGG-16 model ... project[ed] onto a feature space of the top-10
principal components".
"""

from __future__ import annotations

import numpy as np

from repro.nn.vgg import VGG16
from repro.vision.pca import PCA

__all__ = ["extract_snuba_primitives"]


def extract_snuba_primitives(model: VGG16, images: np.ndarray, n_components: int = 10) -> np.ndarray:
    """Logits -> top-``n_components`` PCA projection, shape ``(N, n_components)``."""
    logits = model.logits(images)
    pca = PCA(n_components=n_components)
    return pca.fit_transform(logits)
