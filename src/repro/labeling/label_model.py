"""Snorkel-style generative label model.

Given the vote matrix of many noisy labeling functions, the label model
estimates each LF's class-conditional behaviour and the class prior,
then produces probabilistic labels — "Snorkel then models the
high-level interdependencies between the possibly conflicting labeling
functions to produce probabilistic labels" (§5.1.2).

We implement the conditionally-independent generative model with a
*full class-conditional vote distribution* per LF:

    P(λ, y) = π_y · Π_j θ_j[y, λ_j],   λ_j ∈ {ABSTAIN, 0, …, K-1}

Modelling the abstain probability per class matters: attribute-style
LFs fire almost exclusively on their own class, so the *coverage
pattern* carries as much signal as the votes themselves.  (A model with
class-independent propensity admits a degenerate "one class explains
everything" optimum on such LFs.)  Parameters are learned by EM with
Laplace smoothing, initialised from the majority vote; majority vote
itself is provided as a fallback/baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import logsumexp

from repro.labeling.lf import ABSTAIN

__all__ = ["LabelModel", "LabelModelResult", "majority_vote"]


@dataclass(frozen=True)
class LabelModelResult:
    """EM outcome: probabilistic labels plus learned LF parameters.

    Attributes:
        probabilistic_labels: ``(N, K)`` posterior over classes.
        class_prior: learned π.
        vote_tables: ``(M, K, K+1)`` per-LF conditional distributions;
            ``vote_tables[j, y, 0]`` is P(abstain | y) and
            ``vote_tables[j, y, 1 + v]`` is P(vote v | y).
        propensities: ``(M,)`` marginal non-abstain rates (diagnostic).
        accuracies: ``(M,)`` P(vote = y | active, y) averaged over
            classes under the learned model (diagnostic).
        log_likelihood: final data log-likelihood.
        n_iterations: EM iterations executed.
    """

    probabilistic_labels: np.ndarray
    class_prior: np.ndarray
    vote_tables: np.ndarray
    propensities: np.ndarray
    accuracies: np.ndarray
    log_likelihood: float
    n_iterations: int


def majority_vote(votes: np.ndarray, n_classes: int) -> np.ndarray:
    """Probabilistic labels by per-instance vote counting.

    Instances where every LF abstains get the uniform distribution; ties
    split their mass evenly.
    """
    n = votes.shape[0]
    out = np.zeros((n, n_classes))
    for i in range(n):
        active = votes[i][votes[i] != ABSTAIN]
        if active.size == 0:
            out[i] = 1.0 / n_classes
            continue
        counts = np.bincount(active, minlength=n_classes).astype(np.float64)
        winners = counts == counts.max()
        out[i, winners] = 1.0 / winners.sum()
    return out


class LabelModel:
    """EM-learned generative model over LF votes.

    Parameters:
        n_classes: K.
        max_iter / tol: EM schedule.
        smoothing: Laplace pseudo-count applied to every vote-table cell.
        seed: kept for API stability (the MV initialisation is
            deterministic, so the seed currently only matters for
            potential subclass extensions).
    """

    def __init__(
        self,
        n_classes: int,
        max_iter: int = 100,
        tol: float = 1e-6,
        smoothing: float = 0.5,
        seed: int = 0,
    ):
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        if smoothing <= 0:
            raise ValueError(f"smoothing must be positive, got {smoothing}")
        self.n_classes = n_classes
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing
        self.seed = seed

    # ------------------------------------------------------------------
    def _encode(self, votes: np.ndarray) -> np.ndarray:
        """Map votes to symbol indices: ABSTAIN -> 0, class v -> v + 1."""
        return np.where(votes == ABSTAIN, 0, votes + 1)

    def _m_step(self, symbols: np.ndarray, posterior: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        n, m = symbols.shape
        k = self.n_classes
        prior = posterior.sum(axis=0) + self.smoothing
        prior /= prior.sum()
        tables = np.full((m, k, k + 1), self.smoothing)
        for j in range(m):
            for symbol in range(k + 1):
                mask = symbols[:, j] == symbol
                if mask.any():
                    tables[j, :, symbol] += posterior[mask].sum(axis=0)
        tables /= tables.sum(axis=2, keepdims=True)
        return prior, tables

    def _e_step(self, symbols: np.ndarray, prior: np.ndarray, tables: np.ndarray) -> tuple[np.ndarray, float]:
        n, m = symbols.shape
        k = self.n_classes
        log_joint = np.tile(np.log(prior), (n, 1))
        for j in range(m):
            # (K+1,) table columns indexed by each instance's symbol.
            log_joint += np.log(tables[j, :, symbols[:, j]])
        log_norm = logsumexp(log_joint, axis=1, keepdims=True)
        return np.exp(log_joint - log_norm), float(log_norm.sum())

    def fit(self, votes: np.ndarray) -> LabelModelResult:
        """Run EM on a vote matrix ``(N, M)`` with ABSTAIN = -1 entries."""
        votes = np.asarray(votes, dtype=np.int64)
        if votes.ndim != 2:
            raise ValueError(f"votes must be (N, M), got shape {votes.shape}")
        if votes.size == 0:
            raise ValueError("votes must be non-empty")
        if votes.max() >= self.n_classes:
            raise ValueError(f"vote {votes.max()} out of range for K={self.n_classes}")
        if votes.min() < ABSTAIN:
            raise ValueError(f"votes must be >= {ABSTAIN} (ABSTAIN)")
        symbols = self._encode(votes)
        k = self.n_classes

        # EM anchored at the (softened) majority-vote solution.
        posterior = 0.8 * majority_vote(votes, k) + 0.2 / k
        prior, tables = self._m_step(symbols, posterior)
        previous_ll = -np.inf
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            posterior, log_likelihood = self._e_step(symbols, prior, tables)
            prior, tables = self._m_step(symbols, posterior)
            if log_likelihood - previous_ll < self.tol and iteration > 1:
                previous_ll = log_likelihood
                break
            previous_ll = log_likelihood
        posterior, final_ll = self._e_step(symbols, prior, tables)

        # Diagnostics: marginal propensity and model-implied accuracy.
        propensities = 1.0 - (tables[:, :, 0] * prior).sum(axis=1)
        m = votes.shape[1]
        accuracies = np.empty(m)
        for j in range(m):
            per_class = np.empty(k)
            for y in range(k):
                active = 1.0 - tables[j, y, 0]
                per_class[y] = tables[j, y, 1 + y] / active if active > 1e-12 else 0.0
            accuracies[j] = float(per_class @ prior)

        return LabelModelResult(
            probabilistic_labels=posterior,
            class_prior=prior,
            vote_tables=tables,
            propensities=propensities,
            accuracies=accuracies,
            log_likelihood=final_ll,
            n_iterations=iteration,
        )
