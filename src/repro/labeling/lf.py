"""Labeling-function abstraction (data programming substrate).

A labeling function (LF) maps an instance to a class vote in
``{0..K-1}`` or abstains (``ABSTAIN = -1``).  Data programming systems
aggregate many noisy LFs into probabilistic labels.  For the CUB task,
LFs are built from the dataset's per-image attribute annotations crossed
with the class-attribute table, exactly as §5.1.2 describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.datasets.base import LabeledImageDataset

__all__ = [
    "ABSTAIN",
    "LabelingFunction",
    "apply_labeling_functions",
    "attribute_lfs_from_dataset",
    "lf_summary",
]

ABSTAIN = -1


@dataclass(frozen=True)
class LabelingFunction:
    """A named labeling function over instance indices.

    The callable receives the instance index and returns a vote; state
    (e.g. the attribute matrix) is captured by closure.  Index-based
    dispatch keeps LFs decoupled from the feature modality (metadata,
    primitives, pixels).
    """

    name: str
    fn: Callable[[int], int]

    def __call__(self, index: int) -> int:
        vote = self.fn(index)
        if vote != ABSTAIN and vote < 0:
            raise ValueError(f"LF {self.name!r} returned invalid vote {vote}")
        return vote


def apply_labeling_functions(lfs: list[LabelingFunction], n: int) -> np.ndarray:
    """Vote matrix Λ of shape ``(n, len(lfs))`` with ABSTAIN = -1."""
    if not lfs:
        raise ValueError("need at least one labeling function")
    votes = np.empty((n, len(lfs)), dtype=np.int64)
    for j, lf in enumerate(lfs):
        for i in range(n):
            votes[i, j] = lf(i)
    return votes


def attribute_lfs_from_dataset(dataset: LabeledImageDataset) -> list[LabelingFunction]:
    """Build Snorkel-style LFs from attribute annotations (§5.1.2).

    "each attribute annotation in the union of the class-specific
    attributes acts as a labeling function which outputs a binary label
    corresponding to the class that the attribute belongs to.  If an
    attribute belongs to both classes ... the labeling function
    abstains."  An image that lacks the attribute also abstains.
    """
    if dataset.attributes is None or dataset.class_attributes is None:
        raise ValueError(
            f"dataset {dataset.name!r} has no attribute metadata; "
            "only CUB-style datasets support attribute LFs"
        )
    attributes = dataset.attributes
    class_attributes = dataset.class_attributes
    lfs: list[LabelingFunction] = []
    for a in range(class_attributes.shape[1]):
        owners = np.flatnonzero(class_attributes[:, a] == 1)
        if owners.size != 1:
            # Attribute absent from the task, or shared by both classes:
            # not usable as a discriminating LF.
            continue
        owner = int(owners[0])
        name = dataset.attribute_names[a] if a < len(dataset.attribute_names) else f"attribute_{a}"

        def vote(index: int, column: int = a, klass: int = owner) -> int:
            return klass if attributes[index, column] == 1 else ABSTAIN

        lfs.append(LabelingFunction(name=f"lf[{name}->{owner}]", fn=vote))
    if not lfs:
        raise ValueError("no discriminating attributes found for this class pair")
    return lfs


def lf_summary(votes: np.ndarray, true_labels: np.ndarray | None = None) -> dict[str, np.ndarray]:
    """Per-LF coverage (non-abstain rate) and, if labels given, accuracy."""
    coverage = (votes != ABSTAIN).mean(axis=0)
    summary: dict[str, np.ndarray] = {"coverage": coverage}
    if true_labels is not None:
        true_labels = np.asarray(true_labels)
        accuracy = np.empty(votes.shape[1])
        for j in range(votes.shape[1]):
            active = votes[:, j] != ABSTAIN
            accuracy[j] = (votes[active, j] == true_labels[active]).mean() if active.any() else np.nan
        summary["accuracy"] = accuracy
    return summary
