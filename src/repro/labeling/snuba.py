"""Snuba: automatic labeling-function synthesis (Varma & Ré, VLDB'19).

Snuba removes the human from data programming: given a small labeled
development set and per-instance primitives, it repeatedly

1. *generates* candidate heuristics (here: decision stumps over single
   primitives, the 1-D special case of Snuba's shallow models);
2. *prunes* to the candidate maximising a weighted combination of
   dev-set F1 and diversity (low coverage overlap with the committed
   set, measured by Jaccard distance);
3. *verifies*: each heuristic abstains outside a confidence band β
   chosen to maximise dev F1, and iteration stops when the newest
   heuristic no longer improves the committed ensemble.

The committed heuristics' votes are aggregated by the generative label
model (``repro.labeling.label_model``) into probabilistic labels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.labeling.label_model import LabelModel, LabelModelResult
from repro.labeling.lf import ABSTAIN
from repro.utils.validation import check_array, check_labels

__all__ = ["DecisionStump", "Snuba", "SnubaResult"]


@dataclass(frozen=True)
class DecisionStump:
    """A thresholded 1-D heuristic with a confidence band.

    Votes ``high_class`` when ``x[feature] >= threshold + beta``,
    ``low_class`` when ``x[feature] <= threshold - beta`` and abstains
    inside the band — Snuba's confidence-based abstain mechanism.
    """

    feature: int
    threshold: float
    low_class: int
    high_class: int
    beta: float

    def vote(self, primitives: np.ndarray) -> np.ndarray:
        values = primitives[:, self.feature]
        out = np.full(values.shape[0], ABSTAIN, dtype=np.int64)
        out[values >= self.threshold + self.beta] = self.high_class
        out[values <= self.threshold - self.beta] = self.low_class
        return out

    def describe(self) -> str:
        return (
            f"stump(x[{self.feature}] >= {self.threshold + self.beta:.3f} -> {self.high_class}; "
            f"x[{self.feature}] <= {self.threshold - self.beta:.3f} -> {self.low_class})"
        )


@dataclass(frozen=True)
class SnubaResult:
    """Output of a Snuba run.

    Attributes:
        probabilistic_labels: ``(N, K)`` labels for the unlabeled set.
        heuristics: committed decision stumps, in commit order.
        label_model: the aggregation model's fit result.
        dev_f1_history: committed-ensemble dev F1 after each iteration.
    """

    probabilistic_labels: np.ndarray
    heuristics: tuple[DecisionStump, ...]
    label_model: LabelModelResult
    dev_f1_history: tuple[float, ...]

    @property
    def coverage(self) -> float:
        """Fraction of unlabeled instances with at least one vote."""
        return float((self.probabilistic_labels.max(axis=1) > 0.5).mean())


def _f1_binary(predictions: np.ndarray, labels: np.ndarray, positive: int = 1) -> float:
    """F1 over non-abstaining predictions (abstains count against recall)."""
    predicted_pos = predictions == positive
    actual_pos = labels == positive
    tp = float((predicted_pos & actual_pos).sum())
    fp = float((predicted_pos & ~actual_pos).sum())
    fn = float((~predicted_pos & actual_pos).sum())
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2 * precision * recall / (precision + recall)


class Snuba:
    """Automatic LF synthesis over primitives.

    Parameters:
        n_classes: K (the published system targets binary tasks; we
            support K=2 which covers all five paper datasets).
        max_heuristics: cap on committed heuristics.
        n_thresholds: candidate thresholds per feature (midpoints of the
            dev-set value grid).
        beta_grid: candidate half-widths of the abstain band, as
            fractions of the feature's dev-set spread.
        diversity_weight: trade-off between dev F1 and Jaccard diversity
            when pruning candidates.
        min_improvement: stop when dev F1 improves less than this.
        seed: seed for the aggregation label model.
    """

    def __init__(
        self,
        n_classes: int = 2,
        max_heuristics: int = 10,
        n_thresholds: int = 12,
        beta_grid: tuple[float, ...] = (0.0, 0.1, 0.25, 0.5),
        diversity_weight: float = 0.3,
        min_improvement: float = 1e-3,
        seed: int = 0,
    ):
        if n_classes != 2:
            raise ValueError("this Snuba implementation supports binary tasks (K=2)")
        self.n_classes = n_classes
        self.max_heuristics = max_heuristics
        self.n_thresholds = n_thresholds
        self.beta_grid = beta_grid
        self.diversity_weight = diversity_weight
        self.min_improvement = min_improvement
        self.seed = seed

    # ------------------------------------------------------------------
    def _candidate_stumps(self, dev_x: np.ndarray, dev_y: np.ndarray) -> list[DecisionStump]:
        """Generate stump candidates on every primitive dimension."""
        candidates: list[DecisionStump] = []
        for feature in range(dev_x.shape[1]):
            values = np.unique(dev_x[:, feature])
            if values.size < 2:
                continue
            spread = float(values.max() - values.min())
            midpoints = (values[1:] + values[:-1]) / 2.0
            if midpoints.size > self.n_thresholds:
                picks = np.linspace(0, midpoints.size - 1, self.n_thresholds).astype(np.int64)
                midpoints = midpoints[picks]
            for threshold in midpoints:
                above = dev_y[dev_x[:, feature] >= threshold]
                if above.size in (0, dev_y.size):
                    continue
                # Orient the stump by the dev-set majority above the cut.
                high = int(np.bincount(above, minlength=2).argmax())
                for beta_frac in self.beta_grid:
                    candidates.append(
                        DecisionStump(
                            feature=feature,
                            threshold=float(threshold),
                            low_class=1 - high,
                            high_class=high,
                            beta=beta_frac * spread,
                        )
                    )
        return candidates

    def _ensemble_dev_f1(self, stumps: list[DecisionStump], dev_x: np.ndarray, dev_y: np.ndarray) -> float:
        """Mean of per-class F1 of the majority vote of the committed set."""
        votes = np.stack([s.vote(dev_x) for s in stumps], axis=1)
        predictions = np.full(dev_y.size, ABSTAIN, dtype=np.int64)
        for i in range(dev_y.size):
            active = votes[i][votes[i] != ABSTAIN]
            if active.size:
                predictions[i] = np.bincount(active, minlength=2).argmax()
        return 0.5 * (_f1_binary(predictions, dev_y, 1) + _f1_binary(predictions, dev_y, 0))

    def fit(
        self,
        primitives: np.ndarray,
        dev_indices: np.ndarray,
        dev_labels: np.ndarray,
    ) -> SnubaResult:
        """Synthesise heuristics and label all ``primitives`` rows.

        ``dev_indices`` locate the development examples inside
        ``primitives``; their labels are ``dev_labels``.
        """
        primitives = check_array(np.asarray(primitives, dtype=np.float64), name="primitives", ndim=2)
        dev_indices = np.asarray(dev_indices, dtype=np.int64)
        dev_labels = check_labels(dev_labels, n_classes=self.n_classes, name="dev_labels")
        if dev_indices.size < 2 or np.unique(dev_labels).size < 2:
            raise ValueError("Snuba needs a dev set containing both classes")
        dev_x = primitives[dev_indices]

        committed: list[DecisionStump] = []
        committed_coverage: list[np.ndarray] = []
        f1_history: list[float] = []
        best_f1 = 0.0
        # Iterative generate / prune / verify loop.  Each round focuses
        # the candidate score on dev examples the committed set still
        # gets wrong or leaves uncovered (Snuba's feedback step).
        weights = np.ones(dev_x.shape[0])
        for _ in range(self.max_heuristics):
            candidates = self._candidate_stumps(dev_x, dev_labels)
            if not candidates:
                break
            best_candidate = None
            best_score = -np.inf
            for stump in candidates:
                votes = stump.vote(dev_x)
                active = votes != ABSTAIN
                if not active.any():
                    continue
                correct = (votes == dev_labels) & active
                # Weighted F1 on the dev set: precision over active
                # votes, recall over all (weighted) dev examples — so a
                # heuristic cannot game the score by abstaining widely.
                precision = float((weights * correct).sum() / max(weights[active].sum(), 1e-9))
                recall = float((weights * correct).sum() / max(weights.sum(), 1e-9))
                weighted_f1 = (
                    2 * precision * recall / (precision + recall) if precision + recall > 0 else 0.0
                )
                if committed_coverage:
                    union = active.copy()
                    intersection = active.copy()
                    for cov in committed_coverage:
                        union |= cov
                        intersection &= cov
                    jaccard = intersection.sum() / max(union.sum(), 1)
                    diversity = 1.0 - jaccard
                else:
                    diversity = 1.0
                score = (1 - self.diversity_weight) * weighted_f1 + self.diversity_weight * diversity
                if score > best_score:
                    best_score = score
                    best_candidate = stump
            if best_candidate is None:
                break
            trial = committed + [best_candidate]
            trial_f1 = self._ensemble_dev_f1(trial, dev_x, dev_labels)
            if committed and trial_f1 < best_f1 + self.min_improvement:
                break
            committed = trial
            votes = best_candidate.vote(dev_x)
            committed_coverage.append(votes != ABSTAIN)
            best_f1 = max(best_f1, trial_f1)
            f1_history.append(trial_f1)
            # Re-weight dev examples: covered-and-correct examples count
            # less next round.
            correct = (votes == dev_labels) & (votes != ABSTAIN)
            weights = np.where(correct, weights * 0.5, weights)

        if not committed:
            raise RuntimeError("Snuba committed no heuristics; dev set may be degenerate")

        vote_matrix = np.stack([s.vote(primitives) for s in committed], axis=1)
        label_model = LabelModel(n_classes=self.n_classes, seed=self.seed).fit(vote_matrix)
        return SnubaResult(
            probabilistic_labels=label_model.probabilistic_labels,
            heuristics=tuple(committed),
            label_model=label_model,
            dev_f1_history=tuple(f1_history),
        )
