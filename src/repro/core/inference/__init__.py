"""Class-inference module: hierarchical generative model + mapping + theory."""

from repro.core.inference.base_gmm import DiagonalGMM, GMMFitResult, GMMParams, kmeans_plusplus_init
from repro.core.inference.bernoulli import (
    BernoulliFitResult,
    BernoulliMixture,
    BernoulliParams,
    one_hot_encode_lp,
)
from repro.core.inference.hierarchical import (
    HierarchicalConfig,
    HierarchicalModel,
    HierarchicalResult,
    complete_hierarchy,
    fit_all_base_functions,
    fit_base_function,
    fit_ensemble,
    hierarchical_parameter_count,
    naive_parameter_count,
    warn_if_reinitialized,
)
from repro.core.inference.mapping import (
    ClusterMapping,
    apply_mapping,
    brute_force_mapping,
    dev_set_weights,
    map_clusters_to_classes,
)
from repro.core.inference.theory import (
    min_dev_set_size,
    off_cluster_probability,
    p_class_correct,
    p_class_correct_bruteforce,
    p_mapping_correct_lower_bound,
    theory_curve,
)

__all__ = [
    "DiagonalGMM",
    "GMMFitResult",
    "GMMParams",
    "kmeans_plusplus_init",
    "BernoulliFitResult",
    "BernoulliMixture",
    "BernoulliParams",
    "one_hot_encode_lp",
    "HierarchicalConfig",
    "HierarchicalModel",
    "HierarchicalResult",
    "complete_hierarchy",
    "fit_all_base_functions",
    "fit_base_function",
    "fit_ensemble",
    "warn_if_reinitialized",
    "hierarchical_parameter_count",
    "naive_parameter_count",
    "ClusterMapping",
    "apply_mapping",
    "brute_force_mapping",
    "dev_set_weights",
    "map_clusters_to_classes",
    "min_dev_set_size",
    "off_cluster_probability",
    "p_class_correct",
    "p_class_correct_bruteforce",
    "p_mapping_correct_lower_bound",
    "theory_curve",
]
