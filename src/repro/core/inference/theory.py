"""Development-set size theory (paper §4.4, Theorem 1).

Given a labeling accuracy η, how many labeled dev examples per class
(d) are needed for the cluster→class mapping of Eq. 14 to be correct
with probability ≥ p?  The paper lower-bounds the success probability
by assuming per-class independence and hard assignments: class k' maps
correctly when the majority of its d dev examples land in its true
cluster, with counts multinomial (Eq. 20).

The inner probability P(d_true > max_j d_j) is computed exactly with a
dynamic program in O(K·d²) (Eq. 22–23), checked against a brute-force
enumeration in the tests.

Note on Eq. 20: the paper writes the off-cluster probability as
ρ = η/(K−1); probabilities must sum to one, so we implement
ρ = (1−η)/(K−1) (see DESIGN.md, "Known deviations").
"""

from __future__ import annotations

from itertools import product

import numpy as np
from scipy.special import gammaln
from scipy.stats import binom

__all__ = [
    "off_cluster_probability",
    "p_class_correct",
    "p_class_correct_bruteforce",
    "p_mapping_correct_lower_bound",
    "min_dev_set_size",
    "theory_curve",
]


def off_cluster_probability(eta: float, n_classes: int) -> float:
    """ρ: probability an example lands in one specific wrong cluster."""
    _validate(1, n_classes, eta)
    return (1.0 - eta) / (n_classes - 1)


def _validate(d: int, n_classes: int, eta: float) -> None:
    if d < 1:
        raise ValueError(f"d (dev examples per class) must be >= 1, got {d}")
    if n_classes < 2:
        raise ValueError(f"n_classes must be >= 2, got {n_classes}")
    if not 0.0 < eta < 1.0:
        raise ValueError(f"eta must be in (0, 1), got {eta}")


def _p_all_below(total: int, n_cells: int, cap: int) -> float:
    """P(every cell < cap) for ``total`` balls in ``n_cells`` uniform cells.

    Computed as (total)! · [x^total] (Σ_{c=0}^{cap-1} x^c / c!)^{n_cells}
    / n_cells^total via truncated polynomial powers — the DP of Eq. 23.
    """
    if total == 0:
        return 1.0
    if cap <= 0 or total > n_cells * (cap - 1):
        return 0.0
    # Coefficients of the truncated exponential series, degree < cap.
    degrees = np.arange(min(cap, total + 1))
    base = np.exp(-gammaln(degrees + 1))
    poly = np.array([1.0])
    for _ in range(n_cells):
        poly = np.convolve(poly, base)[: total + 1]
    if poly.size <= total:
        return 0.0
    coeff = poly[total]
    log_value = np.log(max(coeff, 1e-300)) + gammaln(total + 1) - total * np.log(n_cells)
    return float(min(1.0, np.exp(log_value)))


def p_class_correct(d: int, n_classes: int, eta: float) -> float:
    """P^l_{k'}: probability one class maps to its correct cluster (Eq. 18).

    Strict-majority criterion: the count in the true cluster must exceed
    the count in every other cluster (ties are excluded — the paper's
    lower bound breaks ties pessimistically).
    """
    _validate(d, n_classes, eta)
    outer = binom.pmf(np.arange(d + 1), d, eta)
    total = 0.0
    for t in range(1, d + 1):
        inner = _p_all_below(d - t, n_classes - 1, t)
        total += float(outer[t]) * inner
    return min(1.0, total)


def p_class_correct_bruteforce(d: int, n_classes: int, eta: float) -> float:
    """O(K^d) enumeration of Eq. 18 (reference implementation for tests)."""
    _validate(d, n_classes, eta)
    rho = off_cluster_probability(eta, n_classes)
    probs = np.array([eta] + [rho] * (n_classes - 1))
    total = 0.0
    for assignment in product(range(n_classes), repeat=d):
        counts = np.bincount(np.asarray(assignment), minlength=n_classes)
        if counts[0] > counts[1:].max(initial=-1):
            log_p = np.log(probs[list(assignment)]).sum()
            total += float(np.exp(log_p))
    return total


def p_mapping_correct_lower_bound(d: int, n_classes: int, eta: float) -> float:
    """Theorem 1: P(correct full mapping) > Π_{k'} P^l_{k'} = (P^l)^K.

    All classes share the same marginal distribution, so the product is
    a K-th power.
    """
    return p_class_correct(d, n_classes, eta) ** n_classes


def min_dev_set_size(p: float, n_classes: int, eta: float, max_per_class: int = 500) -> int:
    """m* = K·d*: smallest dev-set size whose bound reaches probability p.

    Raises ``ValueError`` if the bound cannot reach ``p`` within
    ``max_per_class`` examples per class (e.g. η too close to chance).
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    for d in range(1, max_per_class + 1):
        if p_mapping_correct_lower_bound(d, n_classes, eta) >= p:
            return n_classes * d
    raise ValueError(
        f"bound does not reach p={p} within {max_per_class} examples/class "
        f"(eta={eta}, K={n_classes})"
    )


def theory_curve(eta: float, d_values: np.ndarray | list[int], n_classes: int = 2) -> np.ndarray:
    """Figure 7 series: the Theorem-1 bound for each dev size per class."""
    return np.array([p_mapping_correct_lower_bound(int(d), n_classes, eta) for d in d_values])
