"""Cluster-to-class mapping from the development set (paper §4.3).

The hierarchical model clusters instances; the development set decides
which cluster is which class.  The "goodness" of a one-to-one mapping
``g: cluster -> class`` is

    L_g = Σ_k Σ_{l ∈ LS_{g(k)}} γ_{l,k}                       (Eq. 12)

and the chosen mapping maximises L_g (Eq. 14).  With
``w_{k,k'} = Σ_{l ∈ LS_{k'}} γ_{l,k}`` this is the linear assignment
problem (Eq. 16), solved in O(K³) — the paper cites Jonker-Volgenant;
we use scipy's implementation of the same optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.datasets.base import DevSet
from repro.utils.validation import check_labels, check_probabilities

__all__ = [
    "ClusterMapping",
    "dev_set_weights",
    "map_clusters_to_classes",
    "brute_force_mapping",
    "apply_mapping",
]


@dataclass(frozen=True)
class ClusterMapping:
    """A one-to-one cluster→class mapping and its goodness L_g.

    ``cluster_to_class[k]`` is the class assigned to cluster k.
    """

    cluster_to_class: np.ndarray
    goodness: float

    def __post_init__(self) -> None:
        mapping = np.asarray(self.cluster_to_class, dtype=np.int64)
        if sorted(mapping.tolist()) != list(range(mapping.size)):
            raise ValueError(f"mapping must be a permutation, got {mapping}")
        object.__setattr__(self, "cluster_to_class", mapping)

    @property
    def n_classes(self) -> int:
        return int(self.cluster_to_class.size)

    def inverse(self) -> np.ndarray:
        """``class_to_cluster``: the inverse permutation g⁻¹."""
        inverse = np.empty_like(self.cluster_to_class)
        inverse[self.cluster_to_class] = np.arange(self.cluster_to_class.size)
        return inverse


def dev_set_weights(responsibilities: np.ndarray, dev_set: DevSet, n_classes: int) -> np.ndarray:
    """``w_{k,k'} = Σ_{l ∈ LS_{k'}} γ_{l,k}`` — Eq. 16's weight matrix."""
    responsibilities = check_probabilities(responsibilities, axis=1, name="responsibilities")
    labels = check_labels(dev_set.labels, n_classes=n_classes, name="dev labels")
    weights = np.zeros((n_classes, n_classes))
    for index, label in zip(dev_set.indices, labels):
        weights[:, label] += responsibilities[index]
    return weights


def map_clusters_to_classes(responsibilities: np.ndarray, dev_set: DevSet, n_classes: int) -> ClusterMapping:
    """Solve Eq. 14 via the assignment problem.

    With an empty development set the mapping degenerates to identity
    (the system can cluster but cannot name the clusters — the Figure 8
    sweep's size-0 point).
    """
    if dev_set.size == 0:
        return ClusterMapping(cluster_to_class=np.arange(n_classes), goodness=0.0)
    weights = dev_set_weights(responsibilities, dev_set, n_classes)
    rows, cols = linear_sum_assignment(weights, maximize=True)
    mapping = np.empty(n_classes, dtype=np.int64)
    mapping[rows] = cols
    return ClusterMapping(cluster_to_class=mapping, goodness=float(weights[rows, cols].sum()))


def brute_force_mapping(responsibilities: np.ndarray, dev_set: DevSet, n_classes: int) -> ClusterMapping:
    """O(K!) reference implementation of Eq. 14 (used in tests)."""
    if dev_set.size == 0:
        return ClusterMapping(cluster_to_class=np.arange(n_classes), goodness=0.0)
    weights = dev_set_weights(responsibilities, dev_set, n_classes)
    best_perm: tuple[int, ...] | None = None
    best_value = -np.inf
    for perm in permutations(range(n_classes)):
        value = sum(weights[k, perm[k]] for k in range(n_classes))
        if value > best_value:
            best_value = value
            best_perm = perm
    assert best_perm is not None
    return ClusterMapping(cluster_to_class=np.asarray(best_perm, dtype=np.int64), goodness=float(best_value))


def apply_mapping(responsibilities: np.ndarray, mapping: ClusterMapping) -> np.ndarray:
    """Rearrange posterior columns so column k' is class k' (§4.3).

    ``out[:, g(k)] = γ[:, k]`` — after this, argmax over columns yields
    class labels directly.
    """
    responsibilities = np.asarray(responsibilities, dtype=np.float64)
    if responsibilities.shape[1] != mapping.n_classes:
        raise ValueError(
            f"responsibilities have {responsibilities.shape[1]} columns, "
            f"mapping covers {mapping.n_classes} clusters"
        )
    out = np.empty_like(responsibilities)
    out[:, mapping.cluster_to_class] = responsibilities
    return out
