"""The hierarchical generative model (paper §4.1, Figure 6).

Layer 1 — *base models*: one diagonal-covariance GMM per affinity
function, fit on that function's ``N×N`` block of the affinity matrix;
each emits a label-prediction matrix ``LP_f ∈ R^{N×K}``.

Layer 2 — *ensemble*: the α matrices are concatenated, one-hot encoded,
and modelled by a K-component multivariate-Bernoulli mixture whose
posterior is the final (cluster-space) label distribution.

The hierarchy fixes both §4 challenges: parameters drop from
``K(C(αN,2)+αN)`` to ``2αKN + αK``, and the ensemble learns per-function
reliabilities, performing implicit affinity-function selection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.affinity import AffinityMatrix
from repro.core.inference.base_gmm import DiagonalGMM, GMMFitResult
from repro.core.inference.bernoulli import BernoulliFitResult, BernoulliMixture, one_hot_encode_lp
from repro.utils.rng import derive_seed

__all__ = ["HierarchicalConfig", "HierarchicalResult", "HierarchicalModel", "naive_parameter_count", "hierarchical_parameter_count"]


@dataclass(frozen=True)
class HierarchicalConfig:
    """Hyper-parameters of the hierarchical model.

    Attributes:
        n_classes: K.
        base_max_iter / base_tol: EM schedule for the per-function GMMs.
        ensemble_max_iter / ensemble_tol: EM schedule for the ensemble.
        ensemble_n_init: random restarts for the Bernoulli mixture.
        variance_floor: variance clamp inside the base GMMs.
        seed: root seed; every base model derives an independent stream.
    """

    n_classes: int = 2
    base_max_iter: int = 100
    base_tol: float = 1e-6
    ensemble_max_iter: int = 200
    ensemble_tol: float = 1e-7
    ensemble_n_init: int = 4
    variance_floor: float = 1e-6
    seed: int = 0


@dataclass(frozen=True)
class HierarchicalResult:
    """Everything the hierarchical model produced.

    Attributes:
        posterior: ``(N, K)`` final ensemble posterior, in *cluster*
            space (columns not yet aligned to classes — see
            ``repro.core.inference.mapping``).
        label_predictions: ``(N, α·K)`` concatenated soft base-model
            predictions (LP before one-hot encoding).
        one_hot: the one-hot encoded LP actually given to the ensemble.
        base_results: per-function GMM fit results (order = function order).
        ensemble_result: the Bernoulli-mixture fit result.
    """

    posterior: np.ndarray
    label_predictions: np.ndarray
    one_hot: np.ndarray
    base_results: tuple[GMMFitResult, ...]
    ensemble_result: BernoulliFitResult

    @property
    def n_functions(self) -> int:
        return len(self.base_results)

    def function_informativeness(self) -> np.ndarray:
        """Per-function usefulness learned by the ensemble, in [0, 1].

        For affinity function f the ensemble holds Bernoulli parameters
        ``b[k, fK:(f+1)K]`` describing how each final class votes in
        f's block.  A useless function votes identically regardless of
        class; an informative one votes differently.  We report the
        mean total-variation distance between class rows, which is the
        quantity Figure 5's visual contrast illustrates.
        """
        n, width = self.one_hot.shape
        k = self.posterior.shape[1]
        alpha = width // k
        # Recover per-class vote profiles from the one-hot LP weighted
        # by the posterior (equivalent to the fitted b up to clamping).
        nk = np.maximum(self.posterior.sum(axis=0), 1e-10)
        b = (self.posterior.T @ self.one_hot) / nk[:, None]  # (K, α·K)
        scores = np.empty(alpha)
        for f in range(alpha):
            block = b[:, f * k : (f + 1) * k]
            total_variation = 0.0
            pairs = 0
            for a in range(k):
                for c in range(a + 1, k):
                    total_variation += 0.5 * np.abs(block[a] - block[c]).sum()
                    pairs += 1
            scores[f] = total_variation / max(pairs, 1)
        return scores


def naive_parameter_count(n_examples: int, n_functions: int, n_classes: int) -> int:
    """Parameters of a full-covariance GMM on all of A: K(C(αN,2)+αN) (§4)."""
    d = n_functions * n_examples
    return n_classes * (d * (d - 1) // 2 + d)


def hierarchical_parameter_count(n_examples: int, n_functions: int, n_classes: int) -> int:
    """Parameters of the hierarchical model: 2αKN + αK (§4.1)."""
    return 2 * n_functions * n_classes * n_examples + n_functions * n_classes


class HierarchicalModel:
    """Fits the two-layer generative model on an affinity matrix."""

    def __init__(self, config: HierarchicalConfig | None = None):
        self.config = config or HierarchicalConfig()
        if self.config.n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {self.config.n_classes}")

    def fit_base_models(
        self, affinity: AffinityMatrix, n_jobs: int = 1
    ) -> tuple[np.ndarray, tuple[GMMFitResult, ...]]:
        """Fit one diagonal GMM per affinity function.

        Returns the concatenated soft LP matrix ``(N, α·K)`` and the
        per-function fit results.  Base models are independent — "in
        practice ... we can parallelize all of the base models using
        different slices of the affinity matrix" (§5.3) — so
        ``n_jobs > 1`` fans the loop out over a thread pool (the EM
        inner loops are numpy-bound and release the GIL).
        """
        cfg = self.config
        n = affinity.n_examples

        def fit_one(f: int) -> GMMFitResult:
            gmm = DiagonalGMM(
                n_components=cfg.n_classes,
                max_iter=cfg.base_max_iter,
                tol=cfg.base_tol,
                variance_floor=cfg.variance_floor,
                seed=derive_seed(cfg.seed, "base", f),
            )
            return gmm.fit(affinity.block(f))

        if n_jobs > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=n_jobs) as pool:
                results = list(pool.map(fit_one, range(affinity.n_functions)))
        else:
            results = [fit_one(f) for f in range(affinity.n_functions)]
        label_predictions = np.concatenate([r.responsibilities for r in results], axis=1)
        assert label_predictions.shape == (n, affinity.n_functions * cfg.n_classes)
        return label_predictions, tuple(results)

    def fit(self, affinity: AffinityMatrix, n_jobs: int = 1) -> HierarchicalResult:
        """Run the full hierarchy: base GMMs -> one-hot -> ensemble."""
        cfg = self.config
        label_predictions, base_results = self.fit_base_models(affinity, n_jobs=n_jobs)
        one_hot = one_hot_encode_lp(label_predictions, cfg.n_classes)
        ensemble = BernoulliMixture(
            n_components=cfg.n_classes,
            max_iter=cfg.ensemble_max_iter,
            tol=cfg.ensemble_tol,
            n_init=cfg.ensemble_n_init,
            seed=derive_seed(cfg.seed, "ensemble"),
        )
        ensemble_result = ensemble.fit(one_hot)
        return HierarchicalResult(
            posterior=ensemble_result.responsibilities,
            label_predictions=label_predictions,
            one_hot=one_hot,
            base_results=base_results,
            ensemble_result=ensemble_result,
        )
