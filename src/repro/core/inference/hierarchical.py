"""The hierarchical generative model (paper §4.1, Figure 6).

Layer 1 — *base models*: one diagonal-covariance GMM per affinity
function, fit on that function's ``N×N`` block of the affinity matrix;
each emits a label-prediction matrix ``LP_f ∈ R^{N×K}``.

Layer 2 — *ensemble*: the α matrices are concatenated, one-hot encoded,
and modelled by a K-component multivariate-Bernoulli mixture whose
posterior is the final (cluster-space) label distribution.

The hierarchy fixes both §4 challenges: parameters drop from
``K(C(αN,2)+αN)`` to ``2αKN + αK``, and the ensemble learns per-function
reliabilities, performing implicit affinity-function selection.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace

import numpy as np

from repro.core.affinity import AffinityMatrix
from repro.core.inference.base_gmm import DiagonalGMM, GMMFitResult, GMMParams
from repro.core.inference.bernoulli import (
    BernoulliFitResult,
    BernoulliMixture,
    BernoulliParams,
    one_hot_encode_lp,
)
from repro.utils.rng import derive_seed

__all__ = [
    "HierarchicalConfig",
    "HierarchicalResult",
    "HierarchicalModel",
    "fit_base_function",
    "fit_all_base_functions",
    "fit_ensemble",
    "complete_hierarchy",
    "warn_if_reinitialized",
    "naive_parameter_count",
    "hierarchical_parameter_count",
]


@dataclass(frozen=True)
class HierarchicalConfig:
    """Hyper-parameters of the hierarchical model.

    Attributes:
        n_classes: K.
        base_max_iter / base_tol: EM schedule for the per-function GMMs.
        ensemble_max_iter / ensemble_tol: EM schedule for the ensemble.
        ensemble_n_init: random restarts for the Bernoulli mixture.
        variance_floor: variance clamp inside the base GMMs.
        seed: root seed; every base model derives an independent stream.
    """

    n_classes: int = 2
    base_max_iter: int = 100
    base_tol: float = 1e-6
    ensemble_max_iter: int = 200
    ensemble_tol: float = 1e-7
    ensemble_n_init: int = 4
    variance_floor: float = 1e-6
    seed: int = 0


@dataclass(frozen=True)
class HierarchicalResult:
    """Everything the hierarchical model produced.

    Attributes:
        posterior: ``(N, K)`` final ensemble posterior, in *cluster*
            space (columns not yet aligned to classes — see
            ``repro.core.inference.mapping``).
        label_predictions: ``(N, α·K)`` concatenated soft base-model
            predictions (LP before one-hot encoding).
        one_hot: the one-hot encoded LP actually given to the ensemble.
        base_results: per-function GMM fit results (order = function order).
        ensemble_result: the Bernoulli-mixture fit result.
    """

    posterior: np.ndarray
    label_predictions: np.ndarray
    one_hot: np.ndarray
    base_results: tuple[GMMFitResult, ...]
    ensemble_result: BernoulliFitResult

    @property
    def n_functions(self) -> int:
        return len(self.base_results)

    @property
    def reinitialized_functions(self) -> tuple[int, ...]:
        """Functions whose base GMM collapsed and was refit from a derived seed."""
        return tuple(f for f, r in enumerate(self.base_results) if r.reinitialized)

    @property
    def total_em_iterations(self) -> int:
        """EM iterations across all base models plus the ensemble (the
        quantity warm-started inference reduces)."""
        return sum(r.n_iterations for r in self.base_results) + self.ensemble_result.n_iterations

    def function_informativeness(self) -> np.ndarray:
        """Per-function usefulness learned by the ensemble, in [0, 1].

        For affinity function f the ensemble holds Bernoulli parameters
        ``b[k, fK:(f+1)K]`` describing how each final class votes in
        f's block.  A useless function votes identically regardless of
        class; an informative one votes differently.  We report the
        mean total-variation distance between class rows, which is the
        quantity Figure 5's visual contrast illustrates.
        """
        n, width = self.one_hot.shape
        k = self.posterior.shape[1]
        alpha = width // k
        # Recover per-class vote profiles from the one-hot LP weighted
        # by the posterior (equivalent to the fitted b up to clamping).
        nk = np.maximum(self.posterior.sum(axis=0), 1e-10)
        b = (self.posterior.T @ self.one_hot) / nk[:, None]  # (K, α·K)
        scores = np.empty(alpha)
        for f in range(alpha):
            block = b[:, f * k : (f + 1) * k]
            total_variation = 0.0
            pairs = 0
            for a in range(k):
                for c in range(a + 1, k):
                    total_variation += 0.5 * np.abs(block[a] - block[c]).sum()
                    pairs += 1
            scores[f] = total_variation / max(pairs, 1)
        return scores


def fit_base_function(
    block: np.ndarray,
    config: HierarchicalConfig,
    function_index: int,
    init: GMMParams | np.ndarray | None = None,
) -> GMMFitResult:
    """Fit the base GMM of one affinity function (module-level: picklable,
    so process-pool workers can run it — see ``repro.engine.inference``).

    A degenerate fit (every posterior argmax in one component — a
    collapsed EM run carrying no class signal) is detected and retried
    once from a derived seed; the outcome carries ``reinitialized=True``
    either way so callers can surface a warning.  If the retry collapses
    too, the higher-likelihood run is kept.
    """

    def make(seed: int) -> DiagonalGMM:
        return DiagonalGMM(
            n_components=config.n_classes,
            max_iter=config.base_max_iter,
            tol=config.base_tol,
            variance_floor=config.variance_floor,
            seed=seed,
        )

    result = make(derive_seed(config.seed, "base", function_index)).fit(block, init=init)
    if not result.degenerate:
        return result
    retry = make(derive_seed(config.seed, "base-reinit", function_index)).fit(block)
    if retry.degenerate and retry.log_likelihood <= result.log_likelihood:
        return replace(result, reinitialized=True)
    return replace(retry, reinitialized=True)


def fit_all_base_functions(
    affinity: AffinityMatrix,
    config: HierarchicalConfig,
    n_jobs: int = 1,
    initializers: "list[np.ndarray] | None" = None,
) -> tuple[np.ndarray, tuple[GMMFitResult, ...]]:
    """Fit every base GMM (serial or thread fan-out) and concatenate LP.

    The single serial/thread implementation shared by
    :class:`HierarchicalModel` and ``repro.engine.inference`` (which
    adds a process-pool branch on top).  ``initializers`` optionally
    warm-starts function f from ``initializers[f]`` responsibilities.
    Collapsed fits warn here, once, whatever the caller.
    """
    alpha = affinity.n_functions

    def fit_one(f: int) -> GMMFitResult:
        init = initializers[f] if initializers is not None else None
        return fit_base_function(affinity.block(f), config, f, init=init)

    if n_jobs > 1 and alpha > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=min(n_jobs, alpha)) as pool:
            results = tuple(pool.map(fit_one, range(alpha)))
    else:
        results = tuple(fit_one(f) for f in range(alpha))
    warn_if_reinitialized(results)
    label_predictions = np.concatenate([r.responsibilities for r in results], axis=1)
    assert label_predictions.shape == (affinity.n_examples, alpha * config.n_classes)
    return label_predictions, results


def fit_ensemble(
    one_hot: np.ndarray, config: HierarchicalConfig, init: BernoulliParams | None = None
) -> BernoulliFitResult:
    """Fit the Bernoulli ensemble with the hierarchy's seed stream.

    The single place that derives the ensemble seed — both
    :class:`HierarchicalModel` and ``repro.engine.inference`` go
    through it, so the staged engine can never desync from the
    monolithic path.
    """
    ensemble = BernoulliMixture(
        n_components=config.n_classes,
        max_iter=config.ensemble_max_iter,
        tol=config.ensemble_tol,
        n_init=config.ensemble_n_init,
        seed=derive_seed(config.seed, "ensemble"),
    )
    return ensemble.fit(one_hot, init=init)


def complete_hierarchy(
    label_predictions: np.ndarray,
    base_results: tuple[GMMFitResult, ...],
    config: HierarchicalConfig,
    ensemble_init: BernoulliParams | None = None,
) -> HierarchicalResult:
    """Layer 2: one-hot encode LP, fit the ensemble, assemble the result.

    Shared tail of the hierarchy — both :meth:`HierarchicalModel.fit`
    and the staged ``InferenceEngine`` end here, so the two paths
    cannot drift apart.
    """
    one_hot = one_hot_encode_lp(label_predictions, config.n_classes)
    ensemble_result = fit_ensemble(one_hot, config, init=ensemble_init)
    return HierarchicalResult(
        posterior=ensemble_result.responsibilities,
        label_predictions=label_predictions,
        one_hot=one_hot,
        base_results=base_results,
        ensemble_result=ensemble_result,
    )


def warn_if_reinitialized(results: tuple[GMMFitResult, ...]) -> None:
    """Surface a RuntimeWarning when any base GMM had to be re-initialised."""
    reinitialized = tuple(f for f, r in enumerate(results) if r.reinitialized)
    if reinitialized:
        warnings.warn(
            f"base GMM(s) {reinitialized} collapsed (all responsibility in one "
            "component) and were re-initialized from a derived seed; the affected "
            "affinity functions may be uninformative on this corpus",
            RuntimeWarning,
            stacklevel=3,
        )


def naive_parameter_count(n_examples: int, n_functions: int, n_classes: int) -> int:
    """Parameters of a full-covariance GMM on all of A: K(C(αN,2)+αN) (§4)."""
    d = n_functions * n_examples
    return n_classes * (d * (d - 1) // 2 + d)


def hierarchical_parameter_count(n_examples: int, n_functions: int, n_classes: int) -> int:
    """Parameters of the hierarchical model: 2αKN + αK (§4.1)."""
    return 2 * n_functions * n_classes * n_examples + n_functions * n_classes


class HierarchicalModel:
    """Fits the two-layer generative model on an affinity matrix."""

    def __init__(self, config: HierarchicalConfig | None = None):
        self.config = config or HierarchicalConfig()
        if self.config.n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {self.config.n_classes}")

    def fit_base_models(
        self, affinity: AffinityMatrix, n_jobs: int = 1
    ) -> tuple[np.ndarray, tuple[GMMFitResult, ...]]:
        """Fit one diagonal GMM per affinity function.

        Returns the concatenated soft LP matrix ``(N, α·K)`` and the
        per-function fit results.  Base models are independent — "in
        practice ... we can parallelize all of the base models using
        different slices of the affinity matrix" (§5.3) — so
        ``n_jobs > 1`` fans the loop out over a thread pool (the EM
        inner loops are numpy-bound and release the GIL).
        """
        return fit_all_base_functions(affinity, self.config, n_jobs=n_jobs)

    def fit(self, affinity: AffinityMatrix, n_jobs: int = 1) -> HierarchicalResult:
        """Run the full hierarchy: base GMMs -> one-hot -> ensemble."""
        label_predictions, base_results = self.fit_base_models(affinity, n_jobs=n_jobs)
        return complete_hierarchy(label_predictions, base_results, self.config)
