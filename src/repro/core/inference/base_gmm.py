"""Diagonal-covariance Gaussian mixture base model (paper §4.1–4.2).

Each base model fits one affinity function's block ``A_f ∈ R^{N×N}``
with a K-component GMM whose covariances are **diagonal** — the key
simplification that reduces parameters from O(N²) to O(N) per class
("Instead of using the full covariance matrix Σ_k ... we use the
diagonal covariance matrix", §4.1).  EM updates follow Eq. 8/10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import logsumexp

from repro.utils.rng import spawn_rng
from repro.utils.validation import check_array

__all__ = ["DiagonalGMM", "GMMFitResult", "GMMParams", "kmeans_plusplus_init"]

_LOG_2PI = np.log(2.0 * np.pi)


@dataclass(frozen=True)
class GMMParams:
    """The fitted parameters of a diagonal GMM (a warm-start seed).

    Attributes:
        weights: ``(K,)`` mixing weights π.
        means: ``(K, D)`` component means μ.
        variances: ``(K, D)`` diagonal covariances Σ.
    """

    weights: np.ndarray
    means: np.ndarray
    variances: np.ndarray


@dataclass(frozen=True)
class GMMFitResult:
    """Outcome of one EM run.

    Attributes:
        responsibilities: ``(N, K)`` posterior P(y_i = k | s_i) (Eq. 8).
        log_likelihood: final data log-likelihood (Eq. 5).
        n_iterations: EM iterations executed.
        converged: whether the tolerance was reached before max_iter.
        params: the fitted parameters (warm-start seed for a later fit).
        degenerate: every instance's posterior argmax landed in a single
            component — the fit collapsed and carries no class signal.
        reinitialized: the fit collapsed once and was retried from a
            derived seed (see ``fit_base_function``).
    """

    responsibilities: np.ndarray
    log_likelihood: float
    n_iterations: int
    converged: bool
    params: GMMParams | None = None
    degenerate: bool = False
    reinitialized: bool = False


def kmeans_plusplus_init(x: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: returns ``(K, D)`` initial means."""
    n = x.shape[0]
    centers = np.empty((k, x.shape[1]))
    first = int(rng.integers(n))
    centers[0] = x[first]
    closest_sq = ((x - centers[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = closest_sq.sum()
        if total <= 1e-12:
            centers[j] = x[int(rng.integers(n))]
            continue
        probs = closest_sq / total
        choice = int(rng.choice(n, p=probs))
        centers[j] = x[choice]
        closest_sq = np.minimum(closest_sq, ((x - centers[j]) ** 2).sum(axis=1))
    return centers


class DiagonalGMM:
    """K-component Gaussian mixture with diagonal covariances.

    Parameters:
        n_components: K, the number of classes/clusters.
        max_iter: EM iteration cap.
        tol: convergence threshold on the log-likelihood increase.
        variance_floor: lower bound applied to every variance, guarding
            against singular components on (near-)duplicated columns.
        seed: RNG seed for the k-means++ initialisation.
    """

    def __init__(
        self,
        n_components: int,
        max_iter: int = 100,
        tol: float = 1e-6,
        variance_floor: float = 1e-6,
        seed: int | np.random.Generator = 0,
    ):
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        self.n_components = n_components
        self.max_iter = max_iter
        self.tol = tol
        self.variance_floor = variance_floor
        self.seed = seed
        self.weights_: np.ndarray | None = None
        self.means_: np.ndarray | None = None
        self.variances_: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _log_prob(self, x: np.ndarray) -> np.ndarray:
        """Per-component joint log density: log π_k + log N(x | μ_k, Σ_k)."""
        assert self.means_ is not None and self.variances_ is not None and self.weights_ is not None
        n, d = x.shape
        log_probs = np.empty((n, self.n_components))
        for k in range(self.n_components):
            diff_sq = (x - self.means_[k]) ** 2
            log_det = np.log(self.variances_[k]).sum()
            quad = (diff_sq / self.variances_[k]).sum(axis=1)
            log_probs[:, k] = -0.5 * (d * _LOG_2PI + log_det + quad)
        return log_probs + np.log(np.maximum(self.weights_, 1e-300))

    def _e_step(self, x: np.ndarray) -> tuple[np.ndarray, float]:
        log_joint = self._log_prob(x)
        log_norm = logsumexp(log_joint, axis=1, keepdims=True)
        responsibilities = np.exp(log_joint - log_norm)
        return responsibilities, float(log_norm.sum())

    def _m_step(self, x: np.ndarray, responsibilities: np.ndarray, rng: np.random.Generator) -> None:
        n, d = x.shape
        nk = responsibilities.sum(axis=0)
        for k in range(self.n_components):
            if nk[k] < 1e-10:
                # Re-seed an empty component at a random data point.
                idx = int(rng.integers(n))
                self.means_[k] = x[idx]
                self.variances_[k] = np.maximum(x.var(axis=0), self.variance_floor)
                self.weights_[k] = 1.0 / n
                continue
            self.weights_[k] = nk[k] / n
            self.means_[k] = responsibilities[:, k] @ x / nk[k]
            diff_sq = (x - self.means_[k]) ** 2
            self.variances_[k] = np.maximum(responsibilities[:, k] @ diff_sq / nk[k], self.variance_floor)
        self.weights_ /= self.weights_.sum()

    def _initialise(
        self, x: np.ndarray, init: GMMParams | np.ndarray | None, rng: np.random.Generator
    ) -> None:
        """Set the starting parameters for EM.

        ``init`` may be ``None`` (k-means++ initialisation, the cold
        path), a :class:`GMMParams` (resume EM from those parameters —
        only valid while the feature dimension is unchanged), or an
        ``(N, K)`` responsibility matrix (one M-step from the given
        posterior — the portable warm start, since responsibilities
        survive a change of feature dimension while means do not).
        """
        n, d = x.shape
        k = self.n_components
        if init is None:
            self.means_ = kmeans_plusplus_init(x, k, rng)
            global_var = np.maximum(x.var(axis=0), self.variance_floor)
            self.variances_ = np.tile(global_var, (k, 1))
            self.weights_ = np.full(k, 1.0 / k)
            return
        if isinstance(init, GMMParams):
            if init.means.shape != (k, d) or init.variances.shape != (k, d) or init.weights.shape != (k,):
                raise ValueError(
                    f"init params shaped {init.weights.shape}/{init.means.shape}/"
                    f"{init.variances.shape} do not match (K={k}, D={d})"
                )
            self.weights_ = np.asarray(init.weights, dtype=np.float64).copy()
            self.weights_ /= self.weights_.sum()
            self.means_ = np.asarray(init.means, dtype=np.float64).copy()
            self.variances_ = np.maximum(np.asarray(init.variances, dtype=np.float64), self.variance_floor)
            return
        responsibilities = check_array(
            np.asarray(init, dtype=np.float64), name="init responsibilities", ndim=2
        )
        if responsibilities.shape != (n, k):
            raise ValueError(f"init responsibilities shaped {responsibilities.shape}, expected ({n}, {k})")
        self.means_ = np.empty((k, d))
        self.variances_ = np.empty((k, d))
        self.weights_ = np.empty(k)
        self._m_step(x, responsibilities, rng)

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, init: GMMParams | np.ndarray | None = None) -> GMMFitResult:
        """Run EM on ``x`` of shape ``(N, D)`` and return the fit result.

        ``init`` warm-starts EM (see :meth:`_initialise`); warm-started
        runs typically converge in a fraction of the cold iterations.
        """
        x = check_array(np.asarray(x, dtype=np.float64), name="x", ndim=2)
        n = x.shape[0]
        if n < self.n_components:
            raise ValueError(f"need at least {self.n_components} examples, got {n}")
        rng = spawn_rng(self.seed, "diag-gmm")
        self._initialise(x, init, rng)

        previous_ll = -np.inf
        responsibilities = np.full((n, self.n_components), 1.0 / self.n_components)
        converged = False
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            responsibilities, log_likelihood = self._e_step(x)
            self._m_step(x, responsibilities, rng)
            if log_likelihood - previous_ll < self.tol and iteration > 1:
                converged = True
                previous_ll = log_likelihood
                break
            previous_ll = log_likelihood
        # Final E-step so responsibilities match the last parameters.
        responsibilities, log_likelihood = self._e_step(x)
        hard = responsibilities.argmax(axis=1)
        return GMMFitResult(
            responsibilities=responsibilities,
            log_likelihood=log_likelihood,
            n_iterations=iteration,
            converged=converged,
            params=GMMParams(
                weights=self.weights_.copy(),
                means=self.means_.copy(),
                variances=self.variances_.copy(),
            ),
            degenerate=self.n_components > 1 and np.unique(hard).size == 1,
        )

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Posterior P(y = k | x) for new rows under the fitted model."""
        if self.means_ is None:
            raise RuntimeError("DiagonalGMM must be fitted before predict_proba")
        x = check_array(np.asarray(x, dtype=np.float64), name="x", ndim=2)
        log_joint = self._log_prob(x)
        return np.exp(log_joint - logsumexp(log_joint, axis=1, keepdims=True))
