"""Multivariate-Bernoulli mixture ensemble model (paper §4.1–4.2).

The ensemble consumes the concatenated, **one-hot encoded** label
prediction matrix ``LP ∈ {0,1}^{N × αK}`` and models each class k with
an αK-dimensional multivariate Bernoulli (Eq. 7), learned by EM
(Eq. 11).  Modelling binary votes with Bernoullis instead of Gaussians
avoids the singularity problem of near-discrete data (§4.1) and lets
the ensemble learn *per-function accuracies*, which is how GOGGLES
separates good affinity functions from noisy ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import logsumexp

from repro.utils.rng import spawn_rng
from repro.utils.validation import check_array

__all__ = ["BernoulliMixture", "BernoulliFitResult", "BernoulliParams", "one_hot_encode_lp"]


@dataclass(frozen=True)
class BernoulliParams:
    """The fitted parameters of a Bernoulli mixture (a warm-start seed).

    Attributes:
        weights: ``(K,)`` mixing weights π.
        probs: ``(K, D)`` per-class Bernoulli parameters b (Eq. 7).
    """

    weights: np.ndarray
    probs: np.ndarray


@dataclass(frozen=True)
class BernoulliFitResult:
    """Outcome of one EM run (best of ``n_init`` restarts).

    Attributes:
        responsibilities: ``(N, K)`` posterior P(y_i = k | s'_i).
        log_likelihood: final data log-likelihood.
        n_iterations: EM iterations of the winning restart.
        converged: whether the winning restart reached tolerance.
        params: the fitted parameters (warm-start seed for a later fit).
    """

    responsibilities: np.ndarray
    log_likelihood: float
    n_iterations: int
    converged: bool
    params: BernoulliParams | None = None


def one_hot_encode_lp(label_predictions: np.ndarray, n_classes: int) -> np.ndarray:
    """One-hot encode the concatenated label-prediction matrix.

    ``label_predictions`` has shape ``(N, α·K)`` holding α blocks of
    per-class probabilities.  Per instance and per block, the highest
    class probability becomes 1 and the rest 0 ("we convert LP to a
    one-hot encoded matrix", §4.1).  Ties resolve to the lowest class
    index (argmax semantics), deterministically.
    """
    lp = check_array(np.asarray(label_predictions, dtype=np.float64), name="label_predictions", ndim=2)
    n, width = lp.shape
    if n_classes < 2:
        raise ValueError(f"n_classes must be >= 2, got {n_classes}")
    if width % n_classes != 0:
        raise ValueError(f"LP width {width} is not a multiple of K={n_classes}")
    alpha = width // n_classes
    blocks = lp.reshape(n, alpha, n_classes)
    winners = blocks.argmax(axis=2)
    one_hot = np.zeros_like(blocks)
    rows, funcs = np.meshgrid(np.arange(n), np.arange(alpha), indexing="ij")
    one_hot[rows, funcs, winners] = 1.0
    return one_hot.reshape(n, width)


class BernoulliMixture:
    """K-component mixture of multivariate Bernoullis with EM.

    Parameters:
        n_components: K classes.
        max_iter: EM iteration cap per restart.
        tol: log-likelihood convergence threshold.
        n_init: random restarts; the best final likelihood wins (EM on
            Bernoulli mixtures is sensitive to initialisation).
        param_floor: clamp for the Bernoulli parameters, keeping all
            log terms finite (b ∈ [floor, 1-floor]).
        seed: RNG seed for responsibility initialisation.
    """

    def __init__(
        self,
        n_components: int,
        max_iter: int = 200,
        tol: float = 1e-7,
        n_init: int = 4,
        param_floor: float = 1e-3,
        seed: int | np.random.Generator = 0,
    ):
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        if n_init < 1:
            raise ValueError(f"n_init must be >= 1, got {n_init}")
        if not 0 < param_floor < 0.5:
            raise ValueError(f"param_floor must be in (0, 0.5), got {param_floor}")
        self.n_components = n_components
        self.max_iter = max_iter
        self.tol = tol
        self.n_init = n_init
        self.param_floor = param_floor
        self.seed = seed
        self.weights_: np.ndarray | None = None
        self.probs_: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _log_prob(self, x: np.ndarray, weights: np.ndarray, probs: np.ndarray) -> np.ndarray:
        """log π_k + Σ_l [ x_l log b_kl + (1-x_l) log(1-b_kl) ] (Eq. 7)."""
        log_b = np.log(probs)
        log_1mb = np.log1p(-probs)
        # (N, D) @ (D, K) for both terms.
        log_lik = x @ log_b.T + (1.0 - x) @ log_1mb.T
        return log_lik + np.log(np.maximum(weights, 1e-300))

    def _run_em(
        self, x: np.ndarray, responsibilities: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, float, int, bool, np.ndarray]:
        n, d = x.shape
        weights = np.full(self.n_components, 1.0 / self.n_components)
        probs = np.full((self.n_components, d), 0.5)
        previous_ll = -np.inf
        converged = False
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            # M-step from current responsibilities (Eq. 11).
            nk = np.maximum(responsibilities.sum(axis=0), 1e-10)
            weights = nk / n
            probs = (responsibilities.T @ x) / nk[:, None]
            probs = np.clip(probs, self.param_floor, 1.0 - self.param_floor)
            # E-step.
            log_joint = self._log_prob(x, weights, probs)
            log_norm = logsumexp(log_joint, axis=1, keepdims=True)
            responsibilities = np.exp(log_joint - log_norm)
            log_likelihood = float(log_norm.sum())
            if log_likelihood - previous_ll < self.tol and iteration > 1:
                converged = True
                previous_ll = log_likelihood
                break
            previous_ll = log_likelihood
        return weights, probs, previous_ll, iteration, converged, responsibilities

    def fit(self, x: np.ndarray, init: BernoulliParams | None = None) -> BernoulliFitResult:
        """Fit by EM on binary data ``(N, D)``; keeps the best restart.

        With ``init`` given, a single EM run resumes from those
        parameters (one E-step recovers the responsibilities) instead of
        running ``n_init`` random restarts — the warm-start path for
        incremental inference, where the previous fit is already near
        the optimum.
        """
        x = check_array(np.asarray(x, dtype=np.float64), name="x", ndim=2)
        if not np.isin(x, (0.0, 1.0)).all():
            raise ValueError("BernoulliMixture expects one-hot/binary inputs (see one_hot_encode_lp)")
        n, d = x.shape
        best: tuple | None = None
        if init is not None:
            if init.probs.shape != (self.n_components, d) or init.weights.shape != (self.n_components,):
                raise ValueError(
                    f"init params shaped {init.weights.shape}/{init.probs.shape} "
                    f"do not match (K={self.n_components}, D={d})"
                )
            probs = np.clip(
                np.asarray(init.probs, dtype=np.float64), self.param_floor, 1.0 - self.param_floor
            )
            weights = np.asarray(init.weights, dtype=np.float64)
            log_joint = self._log_prob(x, weights / weights.sum(), probs)
            responsibilities = np.exp(log_joint - logsumexp(log_joint, axis=1, keepdims=True))
            best = self._run_em(x, responsibilities)
        else:
            rng = spawn_rng(self.seed, "bernoulli-mixture")
            for restart in range(self.n_init):
                # Initialise from random soft assignments (Dirichlet-ish).
                restart_rng = spawn_rng(rng, "restart", restart)
                responsibilities = restart_rng.random((n, self.n_components)) + 0.1
                responsibilities /= responsibilities.sum(axis=1, keepdims=True)
                result = self._run_em(x, responsibilities)
                if best is None or result[2] > best[2]:
                    best = result
        weights, probs, log_likelihood, iteration, converged, responsibilities = best
        self.weights_ = weights
        self.probs_ = probs
        return BernoulliFitResult(
            responsibilities=responsibilities,
            log_likelihood=log_likelihood,
            n_iterations=iteration,
            converged=converged,
            params=BernoulliParams(weights=weights.copy(), probs=probs.copy()),
        )

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Posterior P(y = k | x) for binary rows under the fitted model."""
        if self.weights_ is None or self.probs_ is None:
            raise RuntimeError("BernoulliMixture must be fitted before predict_proba")
        x = check_array(np.asarray(x, dtype=np.float64), name="x", ndim=2)
        log_joint = self._log_prob(x, self.weights_, self.probs_)
        return np.exp(log_joint - logsumexp(log_joint, axis=1, keepdims=True))
