"""Prototype extraction and top-Z selection (paper §3.1, Algorithm 1).

A *prototype* is a channel-axis vector ``v^{(h,w)} ∈ R^C`` of a CNN
filter map; it encodes the semantic concept present in the image patch
that is its receptive field.  For each image and each max-pool layer,
GOGGLES keeps the top-Z most "activated" prototypes:

1. rank channels by activation = the channel's 2-D global max (§3.1);
2. for each of the top-Z channels ``c_z``, take the location
   ``(h, w) = argmax F[c_z]`` and read the full C-vector there (Eq. 1);
3. drop duplicate ``(h, w)`` locations, keeping unique prototypes.

Example 4 of the paper is reproduced verbatim in the unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_array

__all__ = ["PrototypeSet", "extract_prototypes", "select_top_z", "all_location_vectors"]


@dataclass(frozen=True)
class PrototypeSet:
    """Top-Z prototypes of one image at one layer.

    Attributes:
        vectors: ``(Z', C)`` unique prototype vectors, most-activated
            channel first (``Z' <= Z`` after de-duplication).
        locations: ``(Z', 2)`` integer ``(h, w)`` coordinates of each
            prototype in the filter map (for receptive-field lookups).
        channels: ``(Z',)`` the channel index that selected each
            prototype (the top-Z channel ranking).
    """

    vectors: np.ndarray
    locations: np.ndarray
    channels: np.ndarray

    def __post_init__(self) -> None:
        if self.vectors.ndim != 2:
            raise ValueError(f"vectors must be (Z, C), got shape {self.vectors.shape}")
        if self.locations.shape != (self.vectors.shape[0], 2):
            raise ValueError("locations must be (Z, 2) aligned with vectors")
        if self.channels.shape != (self.vectors.shape[0],):
            raise ValueError("channels must be (Z,) aligned with vectors")

    @property
    def n_prototypes(self) -> int:
        return int(self.vectors.shape[0])

    def padded_vectors(self, z: int) -> np.ndarray:
        """Exactly ``z`` rows: unique prototypes, cycled if fewer exist.

        The affinity matrix has a fixed width of Z functions per layer;
        when de-duplication leaves fewer than Z unique prototypes the
        remaining slots repeat existing ones (the duplicated columns
        carry no extra information and are down-weighted by the
        ensemble model, §4.1).
        """
        if z < 1:
            raise ValueError(f"z must be >= 1, got {z}")
        reps = int(np.ceil(z / self.n_prototypes))
        return np.tile(self.vectors, (reps, 1))[:z]


def all_location_vectors(filter_map: np.ndarray) -> np.ndarray:
    """All prototypes ``ρ_i`` of one image: ``(C, H, W)`` -> ``(H*W, C)``.

    This is the full prototype set of Algorithm 1 line 2 (every spatial
    location), used as the search space on the ``x_i`` side of Eq. 2.
    """
    filter_map = check_array(filter_map, name="filter_map", ndim=3)
    c = filter_map.shape[0]
    return filter_map.reshape(c, -1).T


def select_top_z(filter_map: np.ndarray, z: int) -> PrototypeSet:
    """Select the top-Z most informative prototypes of one filter map.

    Follows §3.1 exactly: channels are ranked by their global max
    activation; each selected channel contributes the prototype at its
    argmax location; duplicate locations are dropped (Example 4).
    """
    filter_map = check_array(filter_map, name="filter_map", ndim=3)
    if z < 1:
        raise ValueError(f"z must be >= 1, got {z}")
    c, h, w = filter_map.shape
    flat = filter_map.reshape(c, h * w)
    channel_activation = flat.max(axis=1)
    # Stable ordering: activation descending, channel index ascending on ties.
    ranked_channels = np.lexsort((np.arange(c), -channel_activation))[: min(z, c)]

    vectors: list[np.ndarray] = []
    locations: list[tuple[int, int]] = []
    channels: list[int] = []
    seen: set[tuple[int, int]] = set()
    for channel in ranked_channels:
        flat_idx = int(np.argmax(flat[channel]))
        location = (flat_idx // w, flat_idx % w)
        if location in seen:
            continue
        seen.add(location)
        vectors.append(filter_map[:, location[0], location[1]])
        locations.append(location)
        channels.append(int(channel))
    return PrototypeSet(
        vectors=np.stack(vectors),
        locations=np.asarray(locations, dtype=np.int64),
        channels=np.asarray(channels, dtype=np.int64),
    )


def extract_prototypes(filter_maps: np.ndarray, z: int) -> list[PrototypeSet]:
    """Top-Z prototypes for a batch of filter maps ``(N, C, H, W)``."""
    filter_maps = check_array(filter_maps, name="filter_maps", ndim=4)
    return [select_top_z(filter_map, z) for filter_map in filter_maps]
