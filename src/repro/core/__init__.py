"""The paper's primary contribution: affinity coding and GOGGLES.

* :mod:`repro.core.prototypes` — prototype extraction (§3.1).
* :mod:`repro.core.affinity` — affinity functions and matrix (§2.2, §3.2).
* :mod:`repro.core.inference` — hierarchical generative model (§4).
* :mod:`repro.core.goggles` — the end-to-end system facade (Figure 3).
"""

from repro.core.affinity import (
    AffinityFunctionId,
    AffinityMatrix,
    affinity_from_features,
    compute_affinity_matrix,
    cosine_similarity,
)
from repro.core.goggles import Goggles, GogglesConfig, GogglesResult
from repro.core.prototypes import PrototypeSet, extract_prototypes, select_top_z

__all__ = [
    "AffinityFunctionId",
    "AffinityMatrix",
    "affinity_from_features",
    "compute_affinity_matrix",
    "cosine_similarity",
    "Goggles",
    "GogglesConfig",
    "GogglesResult",
    "PrototypeSet",
    "extract_prototypes",
    "select_top_z",
]
