"""End-to-end GOGGLES system facade (paper Figure 3).

Step 1: build the affinity matrix of all instances (unlabeled + dev)
under the library of VGG-16 prototype affinity functions.
Step 2: run the hierarchical generative model, then map clusters to
classes with the development set.

Typical usage::

    from repro.core import Goggles, GogglesConfig
    from repro.datasets import make_cub

    dataset = make_cub(n_per_class=50)
    dev = dataset.sample_dev_set(per_class=5, seed=0)
    result = Goggles(GogglesConfig(seed=0)).label(dataset.images, dev)
    accuracy = (result.predictions == dataset.labels).mean()
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.core.affinity import AffinityMatrix, SparseAffinityMatrix
from repro.core.inference.hierarchical import (
    HierarchicalConfig,
    HierarchicalResult,
)
from repro.core.inference.mapping import ClusterMapping, apply_mapping, map_clusters_to_classes
from repro.datasets.base import DevSet
from repro.engine.engine import AffinityEngine, EngineConfig
from repro.engine.inference import InferenceEngine, InferenceState
from repro.engine.source import PrototypeAffinitySource
from repro.nn.vgg import VGG16, VGGConfig
from repro.obs import span
from repro.utils.validation import check_images

if TYPE_CHECKING:  # runtime import would cycle (repro.online builds on the engines)
    from repro.online import OnlineConfig

__all__ = ["GogglesConfig", "GogglesResult", "Goggles"]


@dataclass(frozen=True)
class GogglesConfig:
    """Configuration of the full GOGGLES pipeline.

    Attributes:
        n_classes: K, number of classes in the labeling task.
        top_z: prototypes per max-pool layer (paper: 10).
        layers: which of the 5 max-pool layers to use (paper: all).
        seed: root seed for inference initialisation.
        n_jobs: worker count shared by affinity tiling and the
            base-model fits ("we can parallelize all of the base
            models", §5.3).  Results are identical at any width.
        executor: worker model for the base-model fits — ``"serial"``,
            ``"thread"`` (default), ``"process"`` (shared-memory
            ProcessPoolExecutor; scales EM past the GIL) or
            ``"distributed"`` (feature extraction, affinity tiles
            *and* base fits all sharded over a coordinator/worker
            cluster, possibly spanning machines).  Results are
            identical in every mode.
        broker: ``host:port`` the distributed coordinator binds (only
            with ``executor="distributed"``; port 0 = ephemeral).
            ``None`` means a localhost cluster that auto-spawns
            ``n_workers or n_jobs`` local workers.
        n_workers: local worker processes the distributed session
            spawns; 0 with an explicit ``broker`` means workers join
            externally via ``goggles-repro worker``.
        batch_size: images per backbone forward pass in the affinity
            engine; bounds peak memory, never changes values.
        cache_dir: artifact-cache directory shared by the affinity and
            inference engines; ``None`` disables on-disk caching.
        cache_max_bytes: size budget for the artifact cache (LRU
            eviction on write); ``None`` means unbounded.
        keep_corpus_state: retain the engine's corpus state (per-layer
            location vectors and prototypes, roughly the size of the
            pool feature maps) after :meth:`Goggles.label` so
            :meth:`Goggles.label_incremental` can extend it.  Set to
            ``False`` to free that memory when incremental labeling is
            not needed.  Ignored in sparse mode (the sparse path is
            build-only).
        affinity_mode: ``"dense"`` (default, bit-identity discipline)
            or ``"sparse"`` — per-row top-k affinity blocks, float32
            storage, ≥ 99% posterior agreement and exact labels vs
            dense.
        top_k: kept affinities per row in sparse mode (``None`` =
            ``ceil(N / 4)``).
        memmap: in sparse mode, densify blocks into memory-mapped
            files so the corpus can exceed RAM.
        vgg: configuration of the surrogate-pretrained backbone.
        inference: hierarchical-model hyper-parameters (n_classes and
            seed fields here take precedence).
        engine: full engine override (tile sizes, precision).  When
            given, its ``n_jobs``/``batch_size``/``cache_dir`` win over
            the top-level convenience fields.
        online: knobs of the online serving loop
            (:class:`~repro.online.OnlineConfig` — step-size schedule,
            drift threshold, refit cadence) picked up by
            ``LabelingService(mode="online")``; ``None`` means the
            online defaults.
    """

    n_classes: int = 2
    top_z: int = 10
    layers: tuple[int, ...] = (0, 1, 2, 3, 4)
    seed: int = 0
    n_jobs: int = 1
    executor: str = "thread"
    broker: str | None = None
    n_workers: int = 0
    batch_size: int | None = 32
    cache_dir: str | None = None
    cache_max_bytes: int | None = None
    keep_corpus_state: bool = True
    affinity_mode: str = "dense"
    top_k: int | None = None
    memmap: bool = False
    vgg: VGGConfig = field(default_factory=VGGConfig)
    inference: HierarchicalConfig = field(default_factory=HierarchicalConfig)
    engine: EngineConfig | None = None
    online: OnlineConfig | None = None

    def hierarchical_config(self) -> HierarchicalConfig:
        """The inference config with n_classes/seed overridden."""
        return replace(self.inference, n_classes=self.n_classes, seed=self.seed)

    def engine_config(self) -> EngineConfig:
        """The affinity-engine config implied by this pipeline config."""
        if self.engine is not None:
            return self.engine
        sparse = self.affinity_mode == "sparse"
        return EngineConfig(
            batch_size=self.batch_size,
            n_jobs=self.n_jobs,
            executor=self.executor,
            # float32 end-to-end is the sparse-path default; dense keeps
            # the bit-compatible float64 discipline.
            precision="float32" if sparse else "float64",
            cache_dir=self.cache_dir,
            cache_max_bytes=self.cache_max_bytes,
            broker=self.broker,
            n_workers=self.n_workers,
            affinity_mode=self.affinity_mode,
            top_k=self.top_k,
            memmap=self.memmap,
        )


@dataclass(frozen=True)
class GogglesResult:
    """Output of one GOGGLES labeling run.

    Attributes:
        probabilistic_labels: ``(N, K)`` class-aligned probabilistic
            labels ỹ (§2.1) for *all* N instances, dev set included.
        affinity: the affinity matrix built in step 1.
        hierarchical: the raw inference result (cluster space).
        mapping: the dev-set cluster→class mapping used.
    """

    probabilistic_labels: np.ndarray
    affinity: AffinityMatrix | SparseAffinityMatrix
    hierarchical: HierarchicalResult
    mapping: ClusterMapping

    @property
    def predictions(self) -> np.ndarray:
        """Hard labels: argmax of the probabilistic labels."""
        return self.probabilistic_labels.argmax(axis=1)

    def accuracy(self, true_labels: np.ndarray, exclude: np.ndarray | None = None) -> float:
        """Labeling accuracy, optionally excluding dev-set indices.

        The paper "reports the performance of GOGGLES on the remaining
        images from each dataset" (§5.1.1), i.e. dev images excluded.
        """
        true_labels = np.asarray(true_labels)
        mask = np.ones(true_labels.shape[0], dtype=bool)
        if exclude is not None and np.asarray(exclude).size:
            mask[np.asarray(exclude, dtype=np.int64)] = False
        return float((self.predictions[mask] == true_labels[mask]).mean())


class Goggles:
    """The GOGGLES automatic image-labeling system.

    With ``executor="distributed"`` the pipeline owns one
    coordinator/worker session (``self.coordinator``) shared by every
    stage, so a worker connects once and serves extraction chunks,
    affinity tiles, and base fits alike; :meth:`close` (or the
    context-manager form) shuts
    it down.  An externally managed session can be injected via the
    ``coordinator`` argument (e.g. the CLI's ``coordinator`` verb,
    which binds a fixed address for remote workers) — including a warm
    :class:`repro.distributed.WorkerPool`, whose persistent coordinator
    ignores the per-run :meth:`close` so consecutive ``Goggles`` runs
    reuse the same spawned workers.
    """

    def __init__(
        self,
        config: GogglesConfig | None = None,
        model: VGG16 | None = None,
        coordinator: "object | None" = None,
    ):
        self.config = config or GogglesConfig()
        self.model = model if model is not None else VGG16(self.config.vgg)
        engine_config = self.config.engine_config()
        self.engine = AffinityEngine(
            PrototypeAffinitySource(self.model, top_z=self.config.top_z, layers=self.config.layers),
            engine_config,
        )
        from repro.distributed import as_coordinator

        self.coordinator = as_coordinator(coordinator)  # WorkerPool-aware unwrap
        if engine_config.executor == "distributed" and self.coordinator is None:
            from repro.distributed import Coordinator

            self.coordinator = Coordinator.for_engine(
                broker=engine_config.broker,
                n_workers=engine_config.n_workers,
                n_jobs=engine_config.n_jobs,
                cache=self.engine.cache,
            )
        if self.coordinator is not None:
            if getattr(self.coordinator, "cache", None) is None:
                self.coordinator.cache = self.engine.cache
            self.engine.use_coordinator(self.coordinator)
        # Step 2 mirrors step 1: a staged engine sharing the same cache,
        # so fitted inference parameters persist next to the corpus state.
        self.inference = InferenceEngine(
            self.config.hierarchical_config(),
            executor=engine_config.executor,
            n_jobs=engine_config.n_jobs,
            cache=self.engine.cache,
            coordinator=self.coordinator,
        )

    def close(self) -> None:
        """Shut down the distributed session, if any. Idempotent."""
        if self.coordinator is not None:
            self.coordinator.close()

    def __enter__(self) -> "Goggles":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def build_affinity_matrix(self, images: np.ndarray) -> AffinityMatrix | SparseAffinityMatrix:
        """Step 1 (Figure 3): affinity matrix construction.

        Runs through the staged engine: chunked feature extraction,
        tiled similarity, artifact caching.  Unless
        ``config.keep_corpus_state`` is off, the corpus state is kept
        so :meth:`label_incremental` can extend it later.
        """
        images = check_images(images)
        # The sparse path is build-only: never ask it to keep corpus
        # state (incremental extension stays on the dense path).  The
        # engine's resolved config is authoritative — an explicit
        # ``GogglesConfig(engine=EngineConfig(affinity_mode="sparse"))``
        # override must behave the same as the convenience field.
        keep = self.config.keep_corpus_state and self.engine.config.affinity_mode == "dense"
        return self.engine.build(images, keep_state=keep)

    def infer_labels(
        self,
        affinity: AffinityMatrix | SparseAffinityMatrix,
        dev_set: DevSet,
        warm_start: InferenceState | None = None,
    ) -> GogglesResult:
        """Step 2 (Figure 3): class inference on a prebuilt matrix.

        Runs through the staged inference engine (serial, thread, or
        shared-memory process execution per ``config.executor`` —
        results are identical in every mode).  ``warm_start`` resumes
        EM from a previous fit's state instead of refitting cold.
        """
        if dev_set.indices.size and dev_set.indices.max() >= affinity.n_examples:
            raise ValueError("dev-set indices exceed the number of instances")
        hierarchical = self.inference.fit(affinity, warm_start=warm_start)
        mapping = map_clusters_to_classes(hierarchical.posterior, dev_set, self.config.n_classes)
        probabilistic_labels = apply_mapping(hierarchical.posterior, mapping)
        return GogglesResult(
            probabilistic_labels=probabilistic_labels,
            affinity=affinity,
            hierarchical=hierarchical,
            mapping=mapping,
        )

    def label(self, images: np.ndarray, dev_set: DevSet) -> GogglesResult:
        """Run the full pipeline: images + tiny dev set -> probabilistic labels."""
        affinity = self.build_affinity_matrix(images)
        return self.infer_labels(affinity, dev_set)

    def label_incremental(
        self, new_images: np.ndarray, dev_set: DevSet, warm_start: bool = True
    ) -> GogglesResult:
        """Label a corpus grown by ``new_images`` without rebuilding it.

        The affinity engine reuses the prototypes and location vectors
        retained by a prior :meth:`label` / :meth:`build_affinity_matrix`
        call *on this object* and computes only the new rows and column
        blocks of the affinity matrix.  (In a fresh process, re-run
        :meth:`label` on the original corpus first — with ``cache_dir``
        set that rebuild is a cheap disk load that also restores the
        inference state.)  ``dev_set`` indices refer to the *combined*
        corpus (existing images first, then ``new_images``); inference
        reruns on the extended matrix so every posterior can absorb the
        new evidence.

        With ``warm_start`` (default), that rerun resumes EM from the
        previous fit — old rows keep their posterior, new rows are
        seeded by affinity-weighted propagation, and the ensemble
        resumes from its parameters — converging in a fraction of the
        cold iterations while agreeing with a cold refit within the
        tolerance documented in ENGINE.md.  ``warm_start=False`` is the
        escape hatch that forces the from-scratch refit.

        Atomic with respect to the corpus: if inference fails after the
        affinity extension succeeded, the extension is rolled back, so
        a failed call never leaves its images in the corpus and can be
        retried without duplicating rows.
        """
        with span("label_incremental"):
            previous = self.inference.state if warm_start else None
            saved_state, saved_key = self.engine.state, self.engine.state_key
            affinity = self.engine.extend(new_images)
            try:
                return self.infer_labels(affinity, dev_set, warm_start=previous)
            except Exception:
                self.engine.restore_state(saved_state, saved_key)
                raise
