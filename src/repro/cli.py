"""Command-line interface: run any paper experiment from the shell.

Examples::

    goggles-repro label --dataset cub --n-per-class 40
    goggles-repro table1 --seeds 3
    goggles-repro fig8 --dataset surface
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core import Goggles, GogglesConfig
from repro.datasets import DATASET_NAMES, make_dataset
from repro.eval.harness import (
    ExperimentSettings,
    run_fig2,
    run_fig7,
    run_fig8,
    run_fig9,
    run_table1,
    run_table2,
)
from repro.eval.paper import TABLE1_METHODS, TABLE1_PAPER, TABLE2_METHODS, TABLE2_PAPER
from repro.eval.tables import format_comparison_table, format_curve

__all__ = ["main"]


def _batch_size(args: argparse.Namespace) -> int | None:
    return None if args.batch_size == 0 else args.batch_size


def _settings(args: argparse.Namespace) -> ExperimentSettings:
    return ExperimentSettings(
        n_per_class=args.n_per_class,
        n_seeds=args.seeds,
        dev_per_class=args.dev_per_class,
        seed=args.seed,
        n_jobs=args.n_jobs,
        batch_size=_batch_size(args),
        cache_dir=args.cache_dir,
    )


def _cmd_label(args: argparse.Namespace) -> int:
    dataset = make_dataset(args.dataset, n_per_class=args.n_per_class, seed=args.seed)
    dev = dataset.sample_dev_set(args.dev_per_class, seed=args.seed)
    goggles = Goggles(
        GogglesConfig(
            n_classes=dataset.n_classes,
            seed=args.seed,
            n_jobs=args.n_jobs,
            batch_size=_batch_size(args),
            cache_dir=args.cache_dir,
            keep_corpus_state=False,  # one-shot command, no incremental
        )
    )
    result = goggles.label(dataset.images, dev)
    accuracy = result.accuracy(dataset.labels, exclude=dev.indices)
    print(f"dataset: {dataset.name}")
    print(f"instances: {dataset.n_examples} (dev {dev.size})")
    print(f"labeling accuracy (dev excluded): {100 * accuracy:.2f}%")
    if goggles.engine.cache is not None:
        stats = goggles.engine.cache.stats
        print(f"engine cache: {stats.total_hits} hits, {stats.total_misses} misses")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    table = run_table1(_settings(args))
    print(format_comparison_table(table, TABLE1_PAPER, TABLE1_METHODS, "Table 1: labeling accuracy (%)"))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    table = run_table2(_settings(args))
    print(format_comparison_table(table, TABLE2_PAPER, TABLE2_METHODS, "Table 2: end-model accuracy (%)"))
    return 0


def _cmd_fig2(args: argparse.Namespace) -> int:
    result = run_fig2(_settings(args), dataset_name=args.dataset)
    print(f"Figure 2 analogue on {args.dataset}: per-function separation (AUC)")
    for name in ("best", "median", "worst"):
        stat = result[name]
        print(
            f"  {name:>6}: f{stat.function_index:02d}  AUC={stat.auc:.3f}  "
            f"same={stat.same_mean:.3f}  diff={stat.diff_mean:.3f}"
        )
    print(f"  functions with AUC > 0.6: {result['n_discriminative']} / {len(result['all'])}")
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    curves = run_fig7()
    for eta, values in curves.items():
        points = {d + 1: v for d, v in enumerate(values)}
        print(format_curve(points, f"Figure 7: P(correct mapping) bound, eta={eta}", "d/class", "P"))
        print()
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    curve = run_fig8(_settings(args), args.dataset)
    print(format_curve(curve, f"Figure 8: accuracy vs dev-set size ({args.dataset})", "dev size", "acc %"))
    return 0


def _cmd_fig9(args: argparse.Namespace) -> int:
    curve = run_fig9(_settings(args), args.dataset)
    print(format_curve(curve, f"Figure 9: accuracy vs #affinity functions ({args.dataset})", "alpha", "acc %"))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="goggles-repro", description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--n-per-class", type=int, default=40)
    parser.add_argument("--dev-per-class", type=int, default=5)
    parser.add_argument("--seeds", type=int, default=3, help="runs averaged per experiment cell")
    parser.add_argument("--n-jobs", type=int, default=1, help="threads for affinity tiling and base-model fits")
    parser.add_argument("--batch-size", type=int, default=32, help="images per backbone forward pass (0 = whole corpus)")
    parser.add_argument("--cache-dir", default=None, help="affinity-engine artifact cache directory")
    sub = parser.add_subparsers(dest="command", required=True)

    label = sub.add_parser("label", help="label one dataset with GOGGLES")
    label.add_argument("--dataset", choices=DATASET_NAMES, default="cub")
    label.set_defaults(fn=_cmd_label)

    sub.add_parser("table1", help="reproduce Table 1").set_defaults(fn=_cmd_table1)
    sub.add_parser("table2", help="reproduce Table 2").set_defaults(fn=_cmd_table2)

    fig2 = sub.add_parser("fig2", help="reproduce Figure 2 statistics")
    fig2.add_argument("--dataset", choices=DATASET_NAMES, default="cub")
    fig2.set_defaults(fn=_cmd_fig2)

    sub.add_parser("fig7", help="reproduce Figure 7 theory curves").set_defaults(fn=_cmd_fig7)

    fig8 = sub.add_parser("fig8", help="reproduce Figure 8 sweep")
    fig8.add_argument("--dataset", choices=DATASET_NAMES, default="cub")
    fig8.set_defaults(fn=_cmd_fig8)

    fig9 = sub.add_parser("fig9", help="reproduce Figure 9 sweep")
    fig9.add_argument("--dataset", choices=DATASET_NAMES, default="cub")
    fig9.set_defaults(fn=_cmd_fig9)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
