"""Command-line interface: run any paper experiment from the shell.

Examples::

    goggles-repro label --dataset cub --n-per-class 40
    goggles-repro table1 --seeds 3
    goggles-repro fig8 --dataset surface
    goggles-repro --executor process --n-jobs 4 serve --dataset surface
    goggles-repro serve --http-port 8080 --max-queued-pixels 2000000

A local two-command cluster (terminal 1 runs the coordinator, which
shards affinity tiles and base fits over the task queue; terminal 2+
run workers — on this machine or any other that can reach the broker)::

    goggles-repro coordinator --dataset surface --bind 127.0.0.1:41817
    goggles-repro worker --connect 127.0.0.1:41817
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import replace

import numpy as np

from repro.core import Goggles, GogglesConfig
from repro.datasets import DATASET_NAMES, make_dataset
from repro.engine import EXECUTORS, ArtifactCache
from repro.eval.harness import (
    ExperimentSettings,
    run_fig2,
    run_fig7,
    run_fig8,
    run_fig9,
    run_table1,
    run_table2,
)
from repro.eval.paper import TABLE1_METHODS, TABLE1_PAPER, TABLE2_METHODS, TABLE2_PAPER
from repro.eval.tables import format_comparison_table, format_curve
from repro.serving import LabelingService
from repro.utils.rng import derive_seed

__all__ = ["main"]


def _batch_size(args: argparse.Namespace) -> int | None:
    return None if args.batch_size == 0 else args.batch_size


def _settings(args: argparse.Namespace) -> ExperimentSettings:
    return ExperimentSettings(
        n_per_class=args.n_per_class,
        n_seeds=args.seeds,
        dev_per_class=args.dev_per_class,
        seed=args.seed,
        n_jobs=args.n_jobs,
        executor=args.executor,
        batch_size=_batch_size(args),
        precision=args.precision,
        cache_dir=args.cache_dir,
        cache_max_bytes=args.cache_max_bytes,
        affinity_mode=args.affinity_mode,
        top_k=args.top_k,
        memmap=args.memmap,
    )


def _goggles_config(args: argparse.Namespace, n_classes: int, keep_corpus_state: bool) -> GogglesConfig:
    """The pipeline config implied by the global CLI flags."""
    return GogglesConfig(
        n_classes=n_classes,
        seed=args.seed,
        keep_corpus_state=keep_corpus_state,
        engine=_settings(args).engine_config(),
    )


def _cmd_label(args: argparse.Namespace) -> int:
    dataset = make_dataset(args.dataset, n_per_class=args.n_per_class, seed=args.seed)
    dev = dataset.sample_dev_set(args.dev_per_class, seed=args.seed)
    # One-shot command: retaining the corpus state only pays off when a
    # cache directory persists it for a later incremental/serve run.
    keep_state = args.cache_dir is not None and not args.no_keep_corpus_state
    with Goggles(_goggles_config(args, dataset.n_classes, keep_corpus_state=keep_state)) as goggles:
        result = goggles.label(dataset.images, dev)
    accuracy = result.accuracy(dataset.labels, exclude=dev.indices)
    print(f"dataset: {dataset.name}")
    print(f"instances: {dataset.n_examples} (dev {dev.size})")
    print(f"labeling accuracy (dev excluded): {100 * accuracy:.2f}%")
    if goggles.engine.cache is not None:
        stats = goggles.engine.cache.stats
        print(
            f"engine cache: {stats.total_hits} hits, {stats.total_misses} misses, "
            f"{stats.evictions} evictions"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Streaming demo: seed corpus → LabelingService → batched arrivals.

    Simulates a live deployment: the initial fraction of the dataset is
    labeled up front, then the rest arrives in ``--stream-batch``-sized
    batches through ``submit``/``result``, each an incremental
    (warm-started by default) run instead of a rebuild.
    """
    dataset = make_dataset(args.dataset, n_per_class=args.n_per_class, seed=args.seed)
    n = dataset.n_examples
    k = dataset.n_classes
    n0 = max(k * args.dev_per_class, int(n * args.initial_fraction))
    if n0 >= n:
        raise SystemExit("initial fraction leaves no images to stream; lower --initial-fraction")

    # Dev set drawn from the seed corpus only (indices must stay valid
    # as the corpus grows, and arrivals append after existing rows).
    rng = np.random.default_rng(derive_seed(args.seed, "serve-dev"))
    indices = []
    for c in range(k):
        pool = np.flatnonzero(dataset.labels[:n0] == c)
        if pool.size < args.dev_per_class:
            raise SystemExit(f"seed corpus holds only {pool.size} images of class {c}")
        indices.extend(rng.choice(pool, size=args.dev_per_class, replace=False).tolist())
    from repro.datasets.base import DevSet

    dev = DevSet(indices=np.array(sorted(indices)), labels=dataset.labels[np.array(sorted(indices))])

    config = _goggles_config(args, k, keep_corpus_state=True)
    mode = "batch"
    if args.online:
        from repro.online import OnlineConfig

        mode = "online"
        config = replace(
            config,
            online=OnlineConfig(
                drift_threshold=args.drift_threshold,
                refit_every=args.refit_every,
            ),
        )
    pool = None
    if config.engine.executor == "distributed":
        # A long-lived service wants a *warm* cluster: one pool of
        # spawned workers serves the seed labeling and every streamed
        # batch after it, instead of re-paying spawn + import per run.
        from repro.distributed import WorkerPool

        pool = WorkerPool(n_workers=max(1, config.engine.n_workers or config.engine.n_jobs))
    goggles = Goggles(config, coordinator=pool)
    service = LabelingService(
        goggles, dev, tenant=args.tenant, warm_start=not args.no_warm_start, mode=mode
    )
    start = time.perf_counter()
    service.start(dataset.images[:n0])
    print(f"seed corpus: {n0} images labeled in {time.perf_counter() - start:.2f}s")
    if service.online_stats is not None:
        resumed = "resumed from cached online state" if service.session.resumed else "fresh online state"
        print(f"online mode: {resumed} (step {service.online_stats['step']})")

    if args.http_port is not None:
        # Network mode: host the service as one tenant of a registry so
        # further tenants can join over POST /v1/tenants (they inherit
        # the CLI's engine flags through base_config); the seed recipe
        # makes this tenant evictable + transparently reloadable.
        from repro.serving import TenantConfig, TenantRegistry, serve_http

        tenants = TenantRegistry(base_config=config, model=goggles.model)
        tenants.adopt(
            args.tenant,
            service,
            config=TenantConfig(
                mode=mode,
                max_queued_pixels=args.max_queued_pixels,
                online=config.online,
            ),
            seed_images=dataset.images[:n0],
            dev_set=dev,
        )
        server = serve_http(
            tenants, host=args.http_host, port=args.http_port, default_tenant=args.tenant
        )
        print(
            f"HTTP front-end on {server.url} serving tenant {args.tenant!r}  "
            "(POST /v1/tenants, POST /v1/tenants/<id>/submit, "
            "GET /v1/tenants/<id>/poll/<ticket>, GET /healthz, GET /metrics)"
        )
        print("Ctrl-C to stop")
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            pass
        finally:
            server.shutdown()
            tenants.close()
            goggles.close()
            if pool is not None:
                pool.close()
        return 0

    correct = 0
    streamed = 0
    with service:
        position = n0
        while position < n:
            end = min(position + args.stream_batch, n)
            batch_start = time.perf_counter()
            ticket = service.submit(dataset.images[position:end])
            status = service.result(ticket, timeout=600.0)
            latency = time.perf_counter() - batch_start
            if status.state != "done":
                raise SystemExit(f"ticket {ticket} failed: {status.error}")
            truth = dataset.labels[position:end]
            hits = int((status.predictions == truth).sum())
            correct += hits
            streamed += end - position
            print(
                f"  {ticket}: {end - position} images in {latency:.2f}s "
                f"({hits}/{end - position} correct)"
            )
            position = end
    accuracy = 100 * correct / max(streamed, 1)
    print(f"streamed: {streamed} images in {service.n_batches} incremental runs")
    print(f"streaming accuracy: {accuracy:.2f}%  (corpus now {service.corpus_size} images)")
    stats = service.online_stats
    if stats is not None:
        print(
            f"online session: {stats['step']} absorb steps, {stats['refits']} refit(s), "
            f"drift {stats['drift']:.4f} nats (threshold {stats['drift_threshold']:g})"
        )
    goggles.close()
    if pool is not None:
        pool.close()
    return 0


def _cmd_coordinator(args: argparse.Namespace) -> int:
    """Run a labeling job as the cluster coordinator.

    Binds the broker, optionally spawns local workers, then shards the
    affinity tiles and base fits over whoever is connected.  Remote
    workers join with ``goggles-repro worker --connect HOST:PORT``.
    """
    from repro.distributed import Coordinator, DistributedConfig

    dataset = make_dataset(args.dataset, n_per_class=args.n_per_class, seed=args.seed)
    dev = dataset.sample_dev_set(args.dev_per_class, seed=args.seed)
    # The explicit Coordinator below is the single source of truth for
    # bind/worker settings; the engine config only selects the executor.
    engine = replace(_settings(args).engine_config(), executor="distributed")
    coordinator = Coordinator(
        DistributedConfig(
            bind=args.bind,
            authkey=args.authkey,
            n_workers=args.spawn_workers,
            lease_timeout=args.lease_timeout,
            max_attempts=args.max_attempts,
            stream_threshold=args.stream_threshold,
            lease_batch=args.lease_batch,
            lease_target_seconds=args.lease_target_seconds,
        )
    )
    config = GogglesConfig(
        n_classes=dataset.n_classes, seed=args.seed,
        keep_corpus_state=False, engine=engine,
    )
    with Goggles(config, coordinator=coordinator) as goggles:
        host, port = coordinator.address
        print(f"coordinator listening on {host}:{port} "
              f"({args.spawn_workers} local worker(s) spawned)")
        start = time.perf_counter()
        result = goggles.label(dataset.images, dev)
        elapsed = time.perf_counter() - start
        accuracy = result.accuracy(dataset.labels, exclude=dev.indices)
        queue_stats = coordinator.queue.stats()
        print(f"dataset: {dataset.name} ({dataset.n_examples} instances, dev {dev.size})")
        print(f"labeling accuracy (dev excluded): {100 * accuracy:.2f}%  in {elapsed:.2f}s")
        print(
            f"shards: {coordinator.stats['shards_planned']} planned, "
            f"{queue_stats['completed']} completed, {queue_stats['requeued']} requeued, "
            f"{coordinator.stats['cache_hits']} cache hits"
        )
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """Serve shards to a coordinator until it goes away."""
    from repro.distributed import Worker, parse_address, require_safe_authkey

    host, port = parse_address(args.connect)
    # Shard payloads are unpickled: never trust a routable coordinator
    # that is "authenticated" only by the public built-in key.
    require_safe_authkey(host, args.authkey)
    cache = ArtifactCache(args.cache_dir, max_bytes=args.cache_max_bytes) if args.cache_dir else None
    worker = Worker(
        (host, port), args.authkey, cache=cache,
        stream_threshold=args.stream_threshold, lease_batch=args.lease_batch,
    )
    print(f"worker {worker.worker_id} polling {args.connect}")
    worker.run()
    print(
        f"worker exiting (coordinator gone): {worker.tasks_completed} shard(s) "
        f"computed, {worker.tasks_failed} failed"
    )
    return 0


def _cmd_cache_info(args: argparse.Namespace) -> int:
    """Inspect a shared artifact-cache directory."""
    if args.cache_dir is None:
        raise SystemExit("cache-info needs --cache-dir")
    cache = ArtifactCache(args.cache_dir, max_bytes=args.cache_max_bytes)
    kinds: dict[str, tuple[int, int]] = {}
    for name in sorted(os.listdir(cache.cache_dir)):
        # .npz bundles (affinity, affinity-csr, state, inference, ...)
        # plus the raw .npy memmap blocks of the sparse path.
        if not name.endswith((".npz", ".npy")):
            continue
        kind = name.rsplit("-", 1)[0]
        size = os.path.getsize(os.path.join(cache.cache_dir, name))
        count, total = kinds.get(kind, (0, 0))
        kinds[kind] = (count + 1, total + size)
    print(f"cache dir: {cache.cache_dir}")
    for kind, (count, total) in sorted(kinds.items()):
        print(f"  {kind:>10}: {count} entries, {total} bytes")
    print(f"total: {sum(c for c, _ in kinds.values())} entries, {cache.total_bytes()} bytes"
          + (f" (budget {cache.max_bytes})" if cache.max_bytes is not None else " (unbounded)"))
    stats = cache.stats
    print(
        f"this process: {stats.total_hits} hits, {stats.total_misses} misses, "
        f"{stats.evictions} evictions"
    )
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Dump metrics in Prometheus text format.

    With ``--url`` the dump is scraped from a running server's
    ``/metrics`` route; without, it renders this process's registry
    (useful after an in-process run, or to check instrument wiring).
    ``--tenant`` keeps only that tenant's series either way.
    """
    if args.url:
        import urllib.parse
        import urllib.request

        url = args.url.rstrip("/") + "/metrics"
        if args.tenant:
            url += "?tenant=" + urllib.parse.quote(args.tenant)
        try:
            with urllib.request.urlopen(url, timeout=args.timeout) as response:
                sys.stdout.write(response.read().decode("utf-8"))
        except OSError as error:  # URLError/HTTPError/timeout/refused all land here
            print(f"error: cannot scrape {url}: {error}", file=sys.stderr)
            return 1
        return 0
    from repro.obs import default_registry, filter_exposition

    text = default_registry().render()
    if args.tenant:
        text = filter_exposition(text, tenant=args.tenant)
    sys.stdout.write(text)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Render the cross-process span timeline of one trace id.

    With ``--url`` the spans come from a running server's
    ``GET /v1/traces/<id>``; without, from this process's span ring —
    which, after a distributed run, already holds the worker-side spans
    the telemetry merger re-recorded.  Exits non-zero when the trace is
    unknown (spans may also have aged out of the bounded ring).
    """
    if args.url:
        import urllib.error
        import urllib.parse
        import urllib.request

        url = args.url.rstrip("/") + "/v1/traces/" + urllib.parse.quote(args.trace_id)
        try:
            with urllib.request.urlopen(url, timeout=args.timeout) as response:
                spans = json.loads(response.read())["spans"]
        except urllib.error.HTTPError as error:
            if error.code == 404:
                print(f"error: no spans recorded for trace {args.trace_id!r}", file=sys.stderr)
            else:
                print(f"error: cannot fetch {url}: {error}", file=sys.stderr)
            return 1
        except OSError as error:
            print(f"error: cannot fetch {url}: {error}", file=sys.stderr)
            return 1
    else:
        from repro.obs import recent_spans

        records = sorted(recent_spans(trace_id=args.trace_id), key=lambda r: r.started_at)
        if not records:
            print(
                f"error: no spans recorded for trace {args.trace_id!r} "
                "(wrong id, or the spans aged out of the ring)",
                file=sys.stderr,
            )
            return 1
        base = records[0].started_at
        spans = [
            {
                "name": record.name,
                "worker": record.worker,
                "seconds": record.seconds,
                "outcome": record.outcome,
                "offset_seconds": max(record.started_at - base, 0.0),
            }
            for record in records
        ]
    print(f"trace {args.trace_id}: {len(spans)} span(s)")
    print(f"{'offset':>10} {'duration':>10} {'location':<16} {'span':<28} outcome")
    for entry in spans:
        location = entry.get("worker") or "local"
        print(
            f"{entry['offset_seconds']:>9.3f}s {entry['seconds']:>9.3f}s "
            f"{location:<16} {entry['name']:<28} {entry['outcome']}"
        )
    return 0


def _cmd_tenants(args: argparse.Namespace) -> int:
    """List — or evict / remove — the tenants of a running server.

    ``goggles-repro tenants --url http://host:port`` prints one row per
    tenant from ``GET /v1/tenants``; ``--evict ID`` drains it via
    ``DELETE /v1/tenants/ID`` (add ``--forget`` to drop the
    registration too, instead of leaving it evicted-but-reloadable).
    """
    import urllib.parse
    import urllib.request

    base = args.url.rstrip("/")
    if args.evict is not None:
        url = f"{base}/v1/tenants/{urllib.parse.quote(args.evict)}"
        if args.forget:
            url += "?forget=true"
        request = urllib.request.Request(url, method="DELETE")
        with urllib.request.urlopen(request, timeout=args.timeout) as response:
            payload = json.loads(response.read())
        print(f"tenant {payload['tenant']}: {payload['state']}")
        return 0
    if args.forget:
        raise SystemExit("--forget needs --evict ID")
    with urllib.request.urlopen(f"{base}/v1/tenants", timeout=args.timeout) as response:
        rows = json.loads(response.read())["tenants"]
    if not rows:
        print("no tenants registered")
        return 0
    print(f"{'tenant':<20} {'state':<8} {'mode':<7} {'reload':<7} {'queued_px':>10} {'resident_mb':>12}")
    for row in rows:
        print(
            f"{row['id']:<20} {row['state']:<8} {row['mode']:<7} "
            f"{'yes' if row['reloadable'] else 'no':<7} "
            f"{row.get('queued_pixels', '-'):>10} "
            f"{row['resident_bytes'] / 1e6:>12.1f}"
        )
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    table = run_table1(_settings(args))
    print(format_comparison_table(table, TABLE1_PAPER, TABLE1_METHODS, "Table 1: labeling accuracy (%)"))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    table = run_table2(_settings(args))
    print(format_comparison_table(table, TABLE2_PAPER, TABLE2_METHODS, "Table 2: end-model accuracy (%)"))
    return 0


def _cmd_fig2(args: argparse.Namespace) -> int:
    result = run_fig2(_settings(args), dataset_name=args.dataset)
    print(f"Figure 2 analogue on {args.dataset}: per-function separation (AUC)")
    for name in ("best", "median", "worst"):
        stat = result[name]
        print(
            f"  {name:>6}: f{stat.function_index:02d}  AUC={stat.auc:.3f}  "
            f"same={stat.same_mean:.3f}  diff={stat.diff_mean:.3f}"
        )
    print(f"  functions with AUC > 0.6: {result['n_discriminative']} / {len(result['all'])}")
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    curves = run_fig7()
    for eta, values in curves.items():
        points = {d + 1: v for d, v in enumerate(values)}
        print(format_curve(points, f"Figure 7: P(correct mapping) bound, eta={eta}", "d/class", "P"))
        print()
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    curve = run_fig8(_settings(args), args.dataset)
    print(format_curve(curve, f"Figure 8: accuracy vs dev-set size ({args.dataset})", "dev size", "acc %"))
    return 0


def _cmd_fig9(args: argparse.Namespace) -> int:
    curve = run_fig9(_settings(args), args.dataset)
    title = f"Figure 9: accuracy vs #affinity functions ({args.dataset})"
    print(format_curve(curve, title, "alpha", "acc %"))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="goggles-repro", description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--n-per-class", type=int, default=40)
    parser.add_argument("--dev-per-class", type=int, default=5)
    parser.add_argument("--seeds", type=int, default=3, help="runs averaged per experiment cell")
    parser.add_argument(
        "--n-jobs", type=int, default=1, help="workers for affinity tiling and base-model fits"
    )
    parser.add_argument(
        "--executor", choices=EXECUTORS, default="thread",
        help="worker model for base-model fits (process = shared-memory ProcessPoolExecutor)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=32,
        help="images per backbone forward pass (0 = whole corpus)",
    )
    parser.add_argument(
        "--precision", choices=("float64", "float32"), default=None,
        help="engine compute precision (float32 is ~2x faster, allclose-exact; "
        "default: float64 dense, float32 sparse)",
    )
    parser.add_argument(
        "--affinity-mode", choices=("dense", "sparse"), default="dense",
        help="dense (bit-identity discipline) or sparse top-k affinity "
        "(>=99%% posterior agreement, exact labels vs dense)",
    )
    parser.add_argument(
        "--top-k", type=int, default=None,
        help="kept affinities per row with --affinity-mode sparse (default ceil(N/4))",
    )
    parser.add_argument(
        "--memmap", action="store_true",
        help="with --affinity-mode sparse, densify blocks into memory-mapped "
        "files so the corpus can exceed RAM",
    )
    parser.add_argument("--cache-dir", default=None, help="engine artifact cache directory")
    parser.add_argument(
        "--cache-max-bytes", type=int, default=None,
        help="cache size budget in bytes (LRU eviction on write; default unbounded)",
    )
    parser.add_argument(
        "--no-keep-corpus-state", action="store_true",
        help="never retain/persist the incremental corpus state (saves memory; "
        "`label` keeps it only when --cache-dir is set, `serve` needs it)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    label = sub.add_parser("label", help="label one dataset with GOGGLES")
    label.add_argument("--dataset", choices=DATASET_NAMES, default="cub")
    label.set_defaults(fn=_cmd_label)

    serve = sub.add_parser("serve", help="streaming labeling-service demo")
    serve.add_argument("--dataset", choices=DATASET_NAMES, default="surface")
    serve.add_argument(
        "--initial-fraction", type=float, default=0.6,
        help="fraction of the dataset labeled up front as the seed corpus",
    )
    serve.add_argument("--stream-batch", type=int, default=4, help="images per streamed arrival batch")
    serve.add_argument(
        "--no-warm-start", action="store_true",
        help="cold-refit inference on every batch (the warm-start escape hatch)",
    )
    serve.add_argument(
        "--online", action="store_true",
        help="absorb arrivals with O(batch) mini-batch EM over sufficient statistics "
        "instead of a full incremental run per batch (escalates to a warm refit on "
        "drift; with --cache-dir the online state persists across restarts)",
    )
    serve.add_argument(
        "--drift-threshold", type=float, default=1.0,
        help="nats/row the held-out log-likelihood EWMA may fall below the seed "
        "baseline before --online escalates to a full warm refit",
    )
    serve.add_argument(
        "--refit-every", type=int, default=0,
        help="with --online, force a full warm refit every this many absorbed "
        "batches regardless of drift (0 = only on drift / mapping instability)",
    )
    serve.add_argument(
        "--http-port", type=int, default=None,
        help="expose the service over HTTP on this port instead of streaming locally "
        "(POST /submit, GET /poll/<ticket>, GET /healthz)",
    )
    serve.add_argument("--http-host", default="127.0.0.1", help="HTTP bind host")
    serve.add_argument(
        "--max-queued-pixels", type=int, default=None,
        help="back-pressure bound: submissions pushing queued pixels above this "
        "get 429 + Retry-After (default unbounded)",
    )
    serve.add_argument(
        "--tenant", default="default",
        help="tenant id this service registers under; with --http-port the legacy "
        "unversioned routes alias it and more tenants can join via POST /v1/tenants",
    )
    serve.set_defaults(fn=_cmd_serve)

    from repro.distributed import (
        DEFAULT_LEASE_BATCH,
        DEFAULT_PORT,
        DEFAULT_STREAM_THRESHOLD,
        default_authkey,
    )

    coordinator = sub.add_parser(
        "coordinator",
        help="run a labeling job as a cluster coordinator (shards affinity tiles "
        "and base fits to connected workers)",
    )
    coordinator.add_argument("--dataset", choices=DATASET_NAMES, default="surface")
    coordinator.add_argument(
        "--bind", default=f"127.0.0.1:{DEFAULT_PORT}",
        help="host:port the broker listens on (port 0 = ephemeral); bind a routable "
        "host to accept workers from other machines",
    )
    coordinator.add_argument(
        "--spawn-workers", type=int, default=2,
        help="local worker processes to spawn (0 = all workers join externally)",
    )
    coordinator.add_argument(
        "--authkey", default=default_authkey(),
        help="shared connection secret (default $GOGGLES_AUTHKEY or built-in)",
    )
    coordinator.add_argument(
        "--lease-timeout", type=float, default=30.0,
        help="seconds before an unresponsive worker's shard is reassigned",
    )
    coordinator.add_argument(
        "--max-attempts", type=int, default=3,
        help="lease grants per shard before it is poisoned (clear error, no hang)",
    )
    coordinator.add_argument(
        "--stream-threshold", type=int, default=DEFAULT_STREAM_THRESHOLD,
        help="result bytes above which spawned workers stream shard results as "
        "framed sub-messages instead of one message (0 = always stream)",
    )
    coordinator.add_argument(
        "--lease-batch", type=int, default=DEFAULT_LEASE_BATCH,
        help="most shards one worker lease round-trip may request (the autotuner "
        "usually grants fewer; 1 = one shard per round-trip)",
    )
    coordinator.add_argument(
        "--lease-target-seconds", type=float, default=0.1,
        help="estimated compute seconds one lease grant aims to carry once the "
        "shard autotuner has calibrated a shard kind",
    )
    coordinator.set_defaults(fn=_cmd_coordinator)

    worker = sub.add_parser("worker", help="serve shards to a coordinator")
    worker.add_argument("--connect", required=True, help="coordinator host:port to pull shards from")
    worker.add_argument(
        "--authkey", default=default_authkey(),
        help="shared connection secret (default $GOGGLES_AUTHKEY or built-in)",
    )
    worker.add_argument(
        "--stream-threshold", type=int, default=DEFAULT_STREAM_THRESHOLD,
        help="result bytes above which shard results stream as framed "
        "sub-messages instead of one message (0 = always stream)",
    )
    worker.add_argument(
        "--lease-batch", type=int, default=DEFAULT_LEASE_BATCH,
        help="most shards one lease round-trip may request (the coordinator's "
        "autotuner usually grants fewer; 1 = one shard per round-trip)",
    )
    worker.set_defaults(fn=_cmd_worker)

    cache_info = sub.add_parser(
        "cache-info", help="inspect the shared artifact cache (entries, bytes, stats)"
    )
    cache_info.set_defaults(fn=_cmd_cache_info)

    metrics = sub.add_parser(
        "metrics", help="dump metrics in Prometheus text format (local registry or a server's /metrics)"
    )
    metrics.add_argument(
        "--url", default=None,
        help="base URL of a running serve --http-port instance; scrapes <url>/metrics "
        "(default: render this process's registry)",
    )
    metrics.add_argument("--timeout", type=float, default=5.0, help="scrape timeout in seconds")
    metrics.add_argument(
        "--tenant", default=None,
        help="keep only this tenant's series (filters locally, or scrapes "
        "<url>/metrics?tenant=... when --url is set)",
    )
    metrics.set_defaults(fn=_cmd_metrics)

    trace = sub.add_parser(
        "trace", help="render the span timeline of one trace id (local ring or a server's /v1/traces)"
    )
    trace.add_argument("trace_id", help="the trace id to follow (as echoed in X-Trace-Id)")
    trace.add_argument(
        "--url", default=None,
        help="base URL of a running serve --http-port instance; fetches "
        "<url>/v1/traces/<id> (default: read this process's span ring)",
    )
    trace.add_argument("--timeout", type=float, default=5.0, help="request timeout in seconds")
    trace.set_defaults(fn=_cmd_trace)

    tenants = sub.add_parser(
        "tenants", help="list or evict the tenants of a running serve --http-port instance"
    )
    tenants.add_argument("--url", required=True, help="base URL of the running server")
    tenants.add_argument("--evict", default=None, metavar="ID", help="evict this tenant (drain + drop state)")
    tenants.add_argument(
        "--forget", action="store_true",
        help="with --evict, drop the registration too (no transparent reload)",
    )
    tenants.add_argument("--timeout", type=float, default=5.0, help="request timeout in seconds")
    tenants.set_defaults(fn=_cmd_tenants)

    sub.add_parser("table1", help="reproduce Table 1").set_defaults(fn=_cmd_table1)
    sub.add_parser("table2", help="reproduce Table 2").set_defaults(fn=_cmd_table2)

    fig2 = sub.add_parser("fig2", help="reproduce Figure 2 statistics")
    fig2.add_argument("--dataset", choices=DATASET_NAMES, default="cub")
    fig2.set_defaults(fn=_cmd_fig2)

    sub.add_parser("fig7", help="reproduce Figure 7 theory curves").set_defaults(fn=_cmd_fig7)

    fig8 = sub.add_parser("fig8", help="reproduce Figure 8 sweep")
    fig8.add_argument("--dataset", choices=DATASET_NAMES, default="cub")
    fig8.set_defaults(fn=_cmd_fig8)

    fig9 = sub.add_parser("fig9", help="reproduce Figure 9 sweep")
    fig9.add_argument("--dataset", choices=DATASET_NAMES, default="cub")
    fig9.set_defaults(fn=_cmd_fig9)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
