"""The online labeling session: mini-batch EM, drift detection, refits.

Batch GOGGLES refits the whole hierarchy per arrival batch; warm starts
(ENGINE.md, "Warm-start semantics") cut *iterations* but every
iteration still touches all N corpus rows.  The :class:`OnlineSession`
removes N from the serving path entirely:

* the seed fit is summarised as O(K·d) sufficient statistics per
  mixture (:mod:`repro.online.stats`) with the feature space frozen at
  the seed corpus — a new arrival is described by its affinity row to
  the *frozen* corpus, so dimensions never grow between refits;
* :meth:`absorb_rows` folds a batch of affinity rows into those
  statistics with a stepwise (Cappé–Moulines) EM update and a
  ``tol``-driven local refinement loop — O(batch·d) per step, whatever
  the corpus size;
* a drift monitor tracks the prequential (scored-before-updated)
  per-row ensemble log-likelihood as an EWMA and re-derives the
  dev-set cluster→class vote each step; when the EWMA falls
  ``drift_threshold`` nats below the seed baseline, the vote flips, or
  ``refit_every`` batches have passed, the session escalates to a full
  warm-started refit through the existing engines
  (:meth:`~repro.core.goggles.Goggles.label_incremental`) and
  re-freezes itself on the grown corpus;
* memory stays bounded: between refits the corpus does not grow, the
  online state is O(α·K·d), and arrivals awaiting the next refit are
  buffered up to ``buffer_cap`` rows (older arrivals are dropped from
  the refit buffer — their labels were already served and their
  influence lives on in the statistics).

The mutable online state (accumulators, step counter, drift EWMA)
persists through the :class:`~repro.engine.cache.ArtifactCache` as an
``online-*.npz`` entry keyed by the seed fit's identity, so a restarted
service resumes mid-stream instead of starting the schedule over.  The
batches each refit absorbed into the corpus persist alongside it as an
``online-replay-*.npz`` log; a restarted session replays them through
``label_incremental`` (cache hits make the replay a cheap bit-identical
re-derivation) to regrow the corpus, so it resumes even *after* refits
instead of cold-starting in that case.

Accuracy contract: on the shapes corpora the online path must agree
with a full warm refit at ≥99% posterior agreement (1 − mean total
variation) and *exact* hard-label agreement —
``benchmarks/bench_online_inference.py`` enforces both in CI.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING

import numpy as np
from scipy.special import logsumexp

from repro.core.inference.base_gmm import DiagonalGMM, GMMParams
from repro.core.inference.bernoulli import BernoulliParams, one_hot_encode_lp
from repro.core.inference.mapping import apply_mapping, map_clusters_to_classes
from repro.datasets.base import DevSet
from repro.engine.cache import hash_arrays
from repro.obs import MetricsRegistry, default_registry, span
from repro.online.stats import BernoulliStats, GMMStats, step_size
from repro.utils.validation import check_images

if TYPE_CHECKING:  # imported lazily to keep core/goggles import-cycle free
    from repro.core.goggles import Goggles, GogglesResult

__all__ = ["OnlineConfig", "OnlineSession"]

# Clamp applied to the ensemble's Bernoulli parameters, matching the
# default of repro.core.inference.bernoulli.BernoulliMixture.
_ENSEMBLE_PARAM_FLOOR = 1e-3


@dataclass(frozen=True)
class OnlineConfig:
    """Knobs of the online mini-batch EM serving loop.

    Attributes:
        step_decay: κ of the Cappé–Moulines step size
            ``ρ_t = (t₀+t)^{-κ}``; must lie in (0.5, 1] for the
            stepwise-EM convergence guarantees.
        step_delay: t₀, damping the earliest (largest) steps.
        refine_tol: the local refinement loop re-scores the batch under
            the candidate parameters until the posterior moves less
            than this (max abs change), up to ``refine_max_iter``.
        refine_max_iter: cap on refinement passes per absorbed batch.
        drift_threshold: nats/row the prequential log-likelihood EWMA
            may fall below the seed baseline before a full refit is
            forced.
        drift_alpha: EWMA smoothing factor in (0, 1].
        refit_every: escalate to a full warm-started refit every this
            many absorbed batches regardless of drift (0 = only on
            drift / mapping instability).
        buffer_cap: max arrival rows retained for the next refit;
            older arrivals beyond the cap are dropped from the buffer
            (bounded memory — their statistics contribution remains).
    """

    step_decay: float = 0.7
    step_delay: float = 2.0
    refine_tol: float = 1e-4
    refine_max_iter: int = 3
    drift_threshold: float = 1.0
    drift_alpha: float = 0.2
    refit_every: int = 0
    buffer_cap: int = 256

    def __post_init__(self) -> None:
        if not 0.5 < self.step_decay <= 1.0:
            raise ValueError(f"step_decay must be in (0.5, 1], got {self.step_decay}")
        if self.step_delay < 0:
            raise ValueError(f"step_delay must be >= 0, got {self.step_delay}")
        if self.refine_tol <= 0:
            raise ValueError(f"refine_tol must be > 0, got {self.refine_tol}")
        if self.refine_max_iter < 1:
            raise ValueError(f"refine_max_iter must be >= 1, got {self.refine_max_iter}")
        if self.drift_threshold <= 0:
            raise ValueError(f"drift_threshold must be > 0, got {self.drift_threshold}")
        if not 0.0 < self.drift_alpha <= 1.0:
            raise ValueError(f"drift_alpha must be in (0, 1], got {self.drift_alpha}")
        if self.refit_every < 0:
            raise ValueError(f"refit_every must be >= 0, got {self.refit_every}")
        if self.buffer_cap < 1:
            raise ValueError(f"buffer_cap must be >= 1, got {self.buffer_cap}")


class OnlineSession:
    """Owns the accumulators, the frozen mapping, and the drift monitor.

    Parameters:
        goggles: the pipeline whose engines back this session.  Its
            affinity engine must hold the corpus state of the seed fit
            (``keep_corpus_state=True`` and a prior ``label`` call).
        dev_set: the cluster→class development set; indices refer to
            the seed corpus and stay valid as refits grow it.
        result: the seed fit (what ``goggles.label`` returned).
        config: online knobs; defaults to :class:`OnlineConfig`.
        resume: with the engine's artifact cache configured, try to
            restore a previously persisted online state for the same
            seed fit (accumulators + step counter + drift EWMA) so a
            restarted service continues mid-stream.
        tenant: tenant id stamped on the ``goggles_online_*`` metric
            families, so a multi-tenant process can attribute drift and
            absorb throughput per tenant.

    Thread contract: like the engines, the session is driven by a
    single worker thread (``LabelingService``'s); it has no internal
    locking.
    """

    def __init__(
        self,
        goggles: "Goggles",
        dev_set: "DevSet",
        result: "GogglesResult",
        config: OnlineConfig | None = None,
        *,
        resume: bool = True,
        registry: MetricsRegistry | None = None,
        tenant: str = "default",
    ):
        if goggles.engine.state is None:
            raise ValueError(
                "OnlineSession needs the engine's corpus state: run goggles.label "
                "first with keep_corpus_state=True"
            )
        self.goggles = goggles
        self.dev_set = dev_set
        self.config = config or OnlineConfig()
        hier = goggles.config.hierarchical_config()
        self.n_classes = hier.n_classes
        self._variance_floor = hier.variance_floor
        self.n_refits = 0
        self.n_absorbed = 0
        self.n_batches = 0
        self.n_buffer_dropped = 0
        self.resumed = False
        self.replayed = 0
        # Every batch a refit ever absorbed into the corpus, in refit
        # order — persisted (kind "online-replay") so a restarted
        # process can re-derive the grown corpus from the seed fit.
        self._replay_log: list[np.ndarray] = []
        self.registry = registry or default_registry()
        self.tenant = tenant
        self._init_metrics()
        self._session_key = self._make_key(result)
        self._freeze(result)
        if resume:
            self._try_replay()
            self._try_resume()

    def _init_metrics(self) -> None:
        """Declare the online metric family (see ENGINE.md catalogue)."""
        reg = self.registry
        self._m_steps = reg.counter(
            "goggles_online_steps_total", "Stepwise-EM absorb steps executed.",
            labelnames=("tenant",),
        )
        self._m_rows = reg.counter(
            "goggles_online_absorbed_rows_total", "Arrival rows folded into the online statistics.",
            labelnames=("tenant",),
        )
        self._m_refits = reg.counter(
            "goggles_online_refits_total", "Escalations to a full warm-started refit.",
            labelnames=("tenant",),
        )
        self._m_dropped = reg.counter(
            "goggles_online_buffer_dropped_total",
            "Buffered arrival rows dropped past buffer_cap.",
            labelnames=("tenant",),
        )
        # Drift and buffer fill are session state: read lazily at scrape
        # time so absorb never pays for gauge bookkeeping.
        reg.gauge(
            "goggles_online_drift_nats",
            "Nats/row the prequential log-likelihood EWMA sits below the seed baseline.",
            labelnames=("tenant",),
        ).set_function(lambda: self.drift, tenant=self.tenant)
        reg.gauge(
            "goggles_online_buffer_rows",
            "Arrival rows buffered for the next refit.",
            labelnames=("tenant",),
        ).set_function(lambda: sum(batch.shape[0] for batch in self._buffer), tenant=self.tenant)

    # ------------------------------------------------------------------
    # Seed snapshot
    # ------------------------------------------------------------------
    def _freeze(self, result: "GogglesResult") -> None:
        """(Re)build the frozen snapshot and fresh online state from a fit.

        Parameters are *derived from the statistics* (one M-step over
        the fit's final responsibilities) rather than copied from the
        fit, so the fresh-fit and cache-restored paths — where the
        fitted parameters are not persisted — are one code path.
        """
        state = self.goggles.engine.state
        assert state is not None
        affinity = state.affinity
        k = self.n_classes
        lp = result.hierarchical.label_predictions
        self.n_seed = affinity.n_examples
        self.alpha = affinity.n_functions
        self._base_stats = [
            GMMStats.from_responsibilities(affinity.block(f), lp[:, f * k : (f + 1) * k])
            for f in range(self.alpha)
        ]
        self._base_params = [stats.params(self._variance_floor) for stats in self._base_stats]
        one_hot = result.hierarchical.one_hot
        posterior = result.hierarchical.posterior
        self._ensemble_stats = BernoulliStats.from_responsibilities(one_hot, posterior)
        self._ensemble_params = self._ensemble_stats.params(_ENSEMBLE_PARAM_FLOOR)
        self.mapping = result.mapping
        # Dev rows in the frozen feature space, for the vote-stability check.
        self._dev_rows = (
            [np.array(affinity.block(f)[self.dev_set.indices, :], copy=True) for f in range(self.alpha)]
            if self.dev_set.size
            else None
        )
        self._baseline_ll = self._mean_log_likelihood(one_hot, self._ensemble_params)
        self._ewma_ll = self._baseline_ll
        self._step = 0
        self._buffer: list[np.ndarray] = []

    def _make_key(self, result: "GogglesResult") -> str | None:
        """Content address of this session's persisted state.

        Keyed by the seed fit's identity — the cached corpus-state key
        plus the seed posterior hash — and the online config, so a
        restarted service (which replays the seed fit bit-identically
        from the cache) derives the same key, while any change to the
        corpus, the inference config, or the online knobs misses.
        """
        cache = self.goggles.engine.cache
        state_key = self.goggles.engine.state_key
        if cache is None or state_key is None:
            return None
        data_hash = hash_arrays(result.hierarchical.posterior)
        params = {"stage": "online", "seed_state": state_key, **asdict(self.config)}
        return cache.key(data_hash, params)

    # ------------------------------------------------------------------
    # Scoring under the current parameters
    # ------------------------------------------------------------------
    def _base_posterior(self, rows: np.ndarray, params: GMMParams) -> np.ndarray:
        model = DiagonalGMM(self.n_classes, variance_floor=self._variance_floor)
        model.weights_, model.means_, model.variances_ = params.weights, params.means, params.variances
        return model.predict_proba(rows)

    @staticmethod
    def _ensemble_log_joint(one_hot: np.ndarray, params: BernoulliParams) -> np.ndarray:
        log_b = np.log(params.probs)
        log_1mb = np.log1p(-params.probs)
        log_lik = one_hot @ log_b.T + (1.0 - one_hot) @ log_1mb.T
        return log_lik + np.log(np.maximum(params.weights, 1e-300))

    def _mean_log_likelihood(self, one_hot: np.ndarray, params: BernoulliParams) -> float:
        log_joint = self._ensemble_log_joint(one_hot, params)
        return float(logsumexp(log_joint, axis=1).mean())

    def _score_batch(
        self, rows: list[np.ndarray], base_params: list[GMMParams], ens_params: BernoulliParams
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        """One hierarchical E-step on a batch: LP, one-hot, posterior, mean ll."""
        lp = np.concatenate(
            [self._base_posterior(rows[f], base_params[f]) for f in range(self.alpha)], axis=1
        )
        one_hot = one_hot_encode_lp(lp, self.n_classes)
        log_joint = self._ensemble_log_joint(one_hot, ens_params)
        log_norm = logsumexp(log_joint, axis=1, keepdims=True)
        posterior = np.exp(log_joint - log_norm)
        return lp, one_hot, posterior, float(log_norm.mean())

    # ------------------------------------------------------------------
    # The O(batch) absorb step
    # ------------------------------------------------------------------
    def absorb_rows(self, rows: list[np.ndarray]) -> np.ndarray:
        """Fold one batch of affinity rows into the online model.

        ``rows[f]`` holds the batch's affinities to the frozen corpus
        under function f, shape ``(M, n_seed)``.  Returns the
        class-aligned probabilistic labels ``(M, K)`` for the batch.
        Cost is O(M·d) per refinement pass — the corpus size never
        appears.  Pure math: no refit escalation happens here (see
        :meth:`absorb`), but the drift monitor is updated.
        """
        if len(rows) != self.alpha:
            raise ValueError(f"expected {self.alpha} per-function row blocks, got {len(rows)}")
        for f, block in enumerate(rows):
            if block.ndim != 2 or block.shape[1] != self.n_seed or block.shape[0] == 0:
                raise ValueError(f"rows[{f}] shaped {block.shape}, expected (M > 0, {self.n_seed})")
        with span("absorb", self.registry):
            return self._absorb_rows(rows)

    def _absorb_rows(self, rows: list[np.ndarray]) -> np.ndarray:
        k = self.n_classes
        config = self.config
        self._step += 1
        rho = step_size(self._step, config.step_decay, config.step_delay)

        # Local refinement: re-score the batch under the candidate
        # parameters until its posterior settles (or the pass cap).
        # Every candidate re-blends from the *committed* statistics
        # with the same ρ, so one batch's influence stays one ρ-step.
        base_params, ens_params = self._base_params, self._ensemble_params
        cand_base_stats, cand_ens_stats = self._base_stats, self._ensemble_stats
        previous_posterior: np.ndarray | None = None
        lp, one_hot, posterior, mean_ll = self._score_batch(rows, base_params, ens_params)
        # Prequential drift signal: the score under the *committed*
        # (pre-update) parameters, captured before the refinement loop
        # adapts them to this batch — a distribution shift must show up
        # as a held-out log-likelihood drop, not be masked by the very
        # update it should trigger on.
        prequential_ll = mean_ll
        for _ in range(config.refine_max_iter):
            cand_base_stats = [
                self._base_stats[f].blend(
                    GMMStats.from_responsibilities(rows[f], lp[:, f * k : (f + 1) * k]), rho
                )
                for f in range(self.alpha)
            ]
            cand_ens_stats = self._ensemble_stats.blend(
                BernoulliStats.from_responsibilities(one_hot, posterior), rho
            )
            base_params = [stats.params(self._variance_floor) for stats in cand_base_stats]
            ens_params = cand_ens_stats.params(_ENSEMBLE_PARAM_FLOOR)
            previous_posterior = posterior
            lp, one_hot, posterior, mean_ll = self._score_batch(rows, base_params, ens_params)
            if np.abs(posterior - previous_posterior).max() < config.refine_tol:
                break

        self._base_stats, self._ensemble_stats = cand_base_stats, cand_ens_stats
        self._base_params, self._ensemble_params = base_params, ens_params
        self._ewma_ll = (
            1.0 - config.drift_alpha
        ) * self._ewma_ll + config.drift_alpha * prequential_ll
        self.n_batches += 1
        self.n_absorbed += int(posterior.shape[0])
        self._m_steps.inc(tenant=self.tenant)
        self._m_rows.inc(int(posterior.shape[0]), tenant=self.tenant)
        return apply_mapping(posterior, self.mapping)

    # ------------------------------------------------------------------
    # Drift / escalation state machine
    # ------------------------------------------------------------------
    @property
    def drift(self) -> float:
        """Nats/row the prequential log-likelihood EWMA sits below baseline."""
        return self._baseline_ll - self._ewma_ll

    def mapping_stable(self) -> bool:
        """Whether the dev set still votes for the frozen cluster→class map."""
        if self._dev_rows is None:
            return True
        _, _, posterior, _ = self._score_batch(self._dev_rows, self._base_params, self._ensemble_params)
        local = DevSet(indices=np.arange(self.dev_set.size), labels=self.dev_set.labels)
        fresh = map_clusters_to_classes(posterior, local, self.n_classes)
        return bool(np.array_equal(fresh.cluster_to_class, self.mapping.cluster_to_class))

    def should_refit(self) -> bool:
        """Escalation predicate: schedule, drift, or an unstable mapping."""
        if self.config.refit_every and self._step >= self.config.refit_every:
            return True
        if self.drift > self.config.drift_threshold:
            return True
        return not self.mapping_stable()

    # ------------------------------------------------------------------
    # The serving-loop entry point
    # ------------------------------------------------------------------
    def absorb(self, images: np.ndarray) -> np.ndarray:
        """Label a batch of arrival images online.

        Computes the batch's affinity rows against the frozen corpus
        (rows only — the corpus state is *not* extended; O(M·d) for the
        unavoidable feature computation, where d = n_seed is the frozen
        feature dimension), folds them in via :meth:`absorb_rows`
        (O(M·d) per refinement pass), then runs the escalation check:
        when it trips, the buffered arrivals are absorbed into the
        corpus by a full warm-started refit and the session re-freezes
        on the grown corpus.  Returns the class-aligned probabilistic
        labels for exactly this batch.
        """
        images = check_images(images)
        rows = self._arrival_rows(images)
        # Atomic with respect to the session: if anything below fails
        # (including an escalated refit — label_incremental already
        # rolls the corpus back on its own), the statistics, schedule,
        # drift state, and buffer are restored, so a failed batch can
        # simply be resubmitted without being double-counted.
        snapshot = self._snapshot()
        try:
            labels = self.absorb_rows(rows)
            self._buffer.append(images)
            while (
                sum(batch.shape[0] for batch in self._buffer) > self.config.buffer_cap
                and len(self._buffer) > 1
            ):
                dropped = int(self._buffer.pop(0).shape[0])
                self.n_buffer_dropped += dropped
                self._m_dropped.inc(dropped, tenant=self.tenant)
            if self.should_refit():
                labels = self._refit()[-images.shape[0] :]
        except Exception:
            self._restore(snapshot)
            raise
        self._persist()
        return labels

    def _arrival_rows(self, images: np.ndarray) -> list[np.ndarray]:
        """The batch's ``(M, n_seed)`` affinity rows to the frozen corpus.

        Sources that implement ``extend_rows`` (the VGG-prototype and
        feature-cosine backends) compute exactly these blocks — no new
        prototypes, no old-row columns, no (N+M)² assembly; otherwise
        fall back to a throwaway ``extend_state`` and slice it.  The
        engine's corpus state is never touched either way.
        """
        engine = self.goggles.engine
        assert engine.state is not None
        runtime = engine._runtime()
        if hasattr(engine.source, "extend_rows"):
            return engine.source.extend_rows(engine.state, images, runtime)
        extended = engine.source.extend_state(engine.state, images, runtime)
        return [
            np.array(extended.affinity.block(f)[self.n_seed :, : self.n_seed], copy=True)
            for f in range(self.alpha)
        ]

    def _snapshot(self) -> tuple:
        """The mutable online state (statistics are immutable — shallow is enough)."""
        return (
            list(self._base_stats),
            list(self._base_params),
            self._ensemble_stats,
            self._ensemble_params,
            self._step,
            self._ewma_ll,
            self.n_batches,
            self.n_absorbed,
            self.n_refits,
            self.n_buffer_dropped,
            list(self._buffer),
            list(self._replay_log),
        )

    def _restore(self, snapshot: tuple) -> None:
        (
            self._base_stats,
            self._base_params,
            self._ensemble_stats,
            self._ensemble_params,
            self._step,
            self._ewma_ll,
            self.n_batches,
            self.n_absorbed,
            self.n_refits,
            self.n_buffer_dropped,
            self._buffer,
            self._replay_log,
        ) = snapshot

    def _refit(self) -> np.ndarray:
        """Escalate: full warm-started refit over the buffered arrivals.

        Goes through ``Goggles.label_incremental`` — incremental
        affinity extension plus warm-started EM in the existing
        :class:`~repro.engine.inference.InferenceEngine` — permanently
        growing the corpus by the buffered rows, then re-freezes the
        session (new statistics, new baseline, step counter and EWMA
        reset).  Returns class-aligned labels for the whole corpus.
        """
        assert self._buffer, "refit requested with an empty arrival buffer"
        buffered = self._buffer[0] if len(self._buffer) == 1 else np.concatenate(self._buffer, axis=0)
        with span("online.refit", self.registry):
            result = self.goggles.label_incremental(buffered, self.dev_set, warm_start=True)
        self.n_refits += 1
        self._m_refits.inc(tenant=self.tenant)
        self._replay_log.append(buffered)
        self._persist_replay()
        self._freeze(result)
        return result.probabilistic_labels

    # ------------------------------------------------------------------
    # Persistence (kind "online" in the artifact cache)
    # ------------------------------------------------------------------
    def _persist(self) -> None:
        """Write the mutable online state as one ``online-*.npz`` entry."""
        if self._session_key is None:
            return
        cache = self.goggles.engine.cache
        assert cache is not None
        arrays: dict[str, np.ndarray] = {
            "step": np.int64(self._step),
            "ewma_ll": np.float64(self._ewma_ll),
            "baseline_ll": np.float64(self._baseline_ll),
            "n_seed": np.int64(self.n_seed),
            "n_refits": np.int64(self.n_refits),
            "n_absorbed": np.int64(self.n_absorbed),
            "n_batches": np.int64(self.n_batches),
            "n_buffer_dropped": np.int64(self.n_buffer_dropped),
            "mapping": self.mapping.cluster_to_class,
        }
        arrays.update(self._ensemble_stats.arrays("ens"))
        for f, stats in enumerate(self._base_stats):
            arrays.update(stats.arrays(f"f{f:03d}"))
        cache.save_arrays("online", self._session_key, arrays)

    def _persist_replay(self) -> None:
        """Write the refit batches as one ``online-replay-*.npz`` entry.

        Keyed by the *seed* session key (fixed across refits — it is
        the session's lineage address), so a restarted process finds
        the log from the seed fit alone, before any replaying.
        """
        if self._session_key is None:
            return
        cache = self.goggles.engine.cache
        assert cache is not None
        arrays: dict[str, np.ndarray] = {"n_entries": np.int64(len(self._replay_log))}
        for i, batch in enumerate(self._replay_log):
            arrays[f"entry_{i:03d}"] = batch
        cache.save_arrays("online-replay", self._session_key, arrays)

    def _try_replay(self) -> None:
        """Re-absorb persisted refit batches into the corpus.

        A previous life of this session may have refit onto a grown
        corpus; this process starts from the seed fit, so without the
        replay the persisted online state (whose statistics live in the
        grown feature space) is unusable and the session cold-starts.
        Replaying each refit's buffered batch through
        ``label_incremental`` — cache hits make it a bit-identical,
        cheap re-derivation — regrows the corpus to where the previous
        life left it, after which :meth:`_try_resume` succeeds.

        Silently a no-op on any problem: no cache, no log, or a replay
        failure (the corpus is restored to the seed state so the
        session still serves, just cold).
        """
        if self._session_key is None:
            return
        cache = self.goggles.engine.cache
        assert cache is not None
        stored = cache.load_arrays("online-replay", self._session_key)
        if stored is None:
            return
        if "n_entries" not in stored:
            cache.evict("online-replay", self._session_key)
            return
        batches: list[np.ndarray] = []
        for i in range(int(stored["n_entries"])):
            batch = stored.get(f"entry_{i:03d}")
            if batch is None or batch.ndim != 4:
                cache.evict("online-replay", self._session_key)
                return
            batches.append(batch)
        if not batches:
            return
        engine = self.goggles.engine
        saved_state, saved_key = engine.state, engine.state_key
        result = None
        try:
            for batch in batches:
                result = self.goggles.label_incremental(batch, self.dev_set, warm_start=True)
        except Exception:
            # A failed replay must not leave a half-grown corpus: the
            # failing call rolled itself back, restore the rest.
            engine.restore_state(saved_state, saved_key)
            return
        assert result is not None
        self.n_refits = len(batches)
        self._freeze(result)
        self._replay_log = batches
        self.replayed = len(batches)

    def _try_resume(self) -> None:
        """Restore persisted accumulators/step/EWMA for this seed fit.

        Silently a no-op when there is nothing usable: no cache, no
        entry, or an entry whose shapes no longer line up.  A previous
        process that refit onto a grown corpus is handled by
        :meth:`_try_replay` (which re-derives that corpus from the
        persisted refit batches before this method runs).
        """
        if self._session_key is None:
            return
        cache = self.goggles.engine.cache
        assert cache is not None
        stored = cache.load_arrays("online", self._session_key)
        if stored is None:
            return
        required = {"step", "ewma_ll", "baseline_ll", "n_seed", "mapping", "ens_nk", "ens_sx", "ens_n"}
        if not required.issubset(stored):
            cache.evict("online", self._session_key)
            return
        if int(stored["n_seed"]) != self.n_seed:
            # The previous session refit onto a corpus this one does not
            # hold — normally prevented by the refit-buffer replay in
            # _try_replay (resume=False, a failed replay, or an evicted
            # replay log land here).
            return
        if not np.array_equal(stored["mapping"], self.mapping.cluster_to_class):
            return
        try:
            base_stats = [GMMStats.from_arrays(stored, f"f{f:03d}") for f in range(self.alpha)]
        except KeyError:
            cache.evict("online", self._session_key)
            return
        k = self.n_classes
        if any(s.sx.shape != (k, self.n_seed) or s.nk.shape != (k,) for s in base_stats):
            return
        ensemble_stats = BernoulliStats.from_arrays(stored, "ens")
        if ensemble_stats.sx.shape != (k, self.alpha * k):
            return
        self._base_stats = base_stats
        self._base_params = [s.params(self._variance_floor) for s in base_stats]
        self._ensemble_stats = ensemble_stats
        self._ensemble_params = ensemble_stats.params(_ENSEMBLE_PARAM_FLOOR)
        self._step = int(stored["step"])
        self._ewma_ll = float(stored["ewma_ll"])
        self._baseline_ll = float(stored["baseline_ll"])
        self.n_refits = int(stored.get("n_refits", 0))
        self.n_absorbed = int(stored.get("n_absorbed", 0))
        self.n_batches = int(stored.get("n_batches", 0))
        self.n_buffer_dropped = int(stored.get("n_buffer_dropped", 0))
        self.resumed = True

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-serialisable snapshot for healthz / the CLI demo."""
        return {
            "step": self._step,
            "batches": self.n_batches,
            "absorbed": self.n_absorbed,
            "refits": self.n_refits,
            "buffered_rows": int(sum(batch.shape[0] for batch in self._buffer)),
            "buffer_dropped": self.n_buffer_dropped,
            "drift": round(self.drift, 6),
            "drift_threshold": self.config.drift_threshold,
            "ewma_log_likelihood": round(self._ewma_ll, 6),
            "baseline_log_likelihood": round(self._baseline_ll, 6),
            "n_seed": self.n_seed,
            "resumed": self.resumed,
            "replayed": self.replayed,
            "persisted": self._session_key is not None,
        }
