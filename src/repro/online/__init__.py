"""The online labeling subsystem (see ENGINE.md, "Online stages").

Sits between the batch inference engine and the serving loop: the
finished seed fit is summarised as O(K·d) sufficient statistics
(:mod:`repro.online.stats`), arrivals are folded in by stepwise
mini-batch EM at O(batch) per step, and a drift monitor escalates to a
full warm-started refit through the existing engines when the online
approximation stops being trustworthy (:mod:`repro.online.session`).
"""

from repro.online.session import OnlineConfig, OnlineSession
from repro.online.stats import BernoulliStats, GMMStats, step_size

__all__ = [
    "OnlineConfig",
    "OnlineSession",
    "BernoulliStats",
    "GMMStats",
    "step_size",
]
