"""Sufficient-statistics accumulators for the mixture models.

Both layers of the hierarchical model (paper §4.1) are exponential-family
mixtures, so a fitted model is fully described by its expected
sufficient statistics — per-component responsibility mass and weighted
first (and, for the Gaussians, second) moments.  Summarising a fit this
way costs O(K·d) memory regardless of how many rows produced it, which
is what lets the online serving loop absorb arrivals without holding —
or revisiting — the corpus.

Two combination rules are provided:

* :meth:`merge` — exact additive pooling: merging the statistics of two
  batches equals computing the statistics of the concatenated data
  (the property test hammers this).  Used to seed a session from a
  finished fit.
* :meth:`blend` — the stepwise-EM update of Cappé & Moulines (2009):
  ``s ← (1-ρ_t)·s + ρ_t·ŝ_batch`` over *per-row-normalised* statistics,
  with a decaying step size ``ρ_t = (t₀+t)^{-κ}``, κ ∈ (0.5, 1].  Each
  mini-batch moves the parameters O(ρ_t), so the update cost per step
  is O(batch·d) — independent of the corpus size.

Statistics are stored per-row-normalised (``nk`` sums to 1): the M-step
formulas are scale-invariant, and normalised statistics make the blend
a plain convex combination.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.inference.base_gmm import GMMParams
from repro.core.inference.bernoulli import BernoulliParams

__all__ = ["GMMStats", "BernoulliStats", "step_size"]


def step_size(step: int, decay: float, delay: float) -> float:
    """Cappé–Moulines step size ``ρ_t = (t₀ + t)^{-κ}`` for step ``t >= 1``."""
    if step < 1:
        raise ValueError(f"step must be >= 1, got {step}")
    return float((delay + step) ** (-decay))


def _check_responsibilities(x: np.ndarray, resp: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64)
    resp = np.asarray(resp, dtype=np.float64)
    if x.ndim != 2 or resp.ndim != 2 or x.shape[0] != resp.shape[0]:
        raise ValueError(f"rows {x.shape} and responsibilities {resp.shape} do not align")
    if x.shape[0] == 0:
        raise ValueError("need at least one row")
    return x, resp


@dataclass(frozen=True)
class GMMStats:
    """Per-row-normalised sufficient statistics of a diagonal GMM.

    Attributes:
        nk: ``(K,)`` mean responsibility mass per component (sums to 1).
        sx: ``(K, D)`` mean responsibility-weighted rows ``E[γ_k·x]``.
        sxx: ``(K, D)`` mean responsibility-weighted squares ``E[γ_k·x²]``.
        n: rows that contributed (bookkeeping; the statistics are
            already normalised, so ``n`` never enters the M-step).
    """

    nk: np.ndarray
    sx: np.ndarray
    sxx: np.ndarray
    n: float

    @classmethod
    def from_responsibilities(cls, x: np.ndarray, resp: np.ndarray) -> "GMMStats":
        """Statistics of ``x`` under soft assignments ``resp`` (one E-step's output)."""
        x, resp = _check_responsibilities(x, resp)
        n = x.shape[0]
        return cls(
            nk=resp.sum(axis=0) / n,
            sx=(resp.T @ x) / n,
            sxx=(resp.T @ np.square(x)) / n,
            n=float(n),
        )

    def merge(self, other: "GMMStats") -> "GMMStats":
        """Exact pooling: equals the statistics of the concatenated data."""
        total = self.n + other.n
        a, b = self.n / total, other.n / total
        return GMMStats(
            nk=a * self.nk + b * other.nk,
            sx=a * self.sx + b * other.sx,
            sxx=a * self.sxx + b * other.sxx,
            n=total,
        )

    def blend(self, batch: "GMMStats", rho: float) -> "GMMStats":
        """Stepwise-EM update: ``s ← (1-ρ)·s + ρ·ŝ_batch``."""
        if not 0.0 < rho <= 1.0:
            raise ValueError(f"rho must be in (0, 1], got {rho}")
        return GMMStats(
            nk=(1.0 - rho) * self.nk + rho * batch.nk,
            sx=(1.0 - rho) * self.sx + rho * batch.sx,
            sxx=(1.0 - rho) * self.sxx + rho * batch.sxx,
            n=self.n + batch.n,
        )

    def params(self, variance_floor: float) -> GMMParams:
        """The M-step: parameters maximising the expected log-likelihood.

        Identical to :meth:`repro.core.inference.base_gmm.DiagonalGMM`'s
        M-step (the ``Σγ(x-μ)²`` form there equals ``sxx/nk - μ²`` here
        algebraically), so a fit summarised by its statistics and a fit
        on the raw data produce the same parameters.
        """
        nk = np.maximum(self.nk, 1e-10)
        means = self.sx / nk[:, None]
        variances = np.maximum(self.sxx / nk[:, None] - np.square(means), variance_floor)
        weights = nk / nk.sum()
        return GMMParams(weights=weights, means=means, variances=variances)

    def arrays(self, prefix: str) -> dict[str, np.ndarray]:
        """Flat npz-serialisable view (see ``OnlineSession`` persistence)."""
        return {
            f"{prefix}_nk": self.nk,
            f"{prefix}_sx": self.sx,
            f"{prefix}_sxx": self.sxx,
            f"{prefix}_n": np.float64(self.n),
        }

    @classmethod
    def from_arrays(cls, stored: dict[str, np.ndarray], prefix: str) -> "GMMStats":
        return cls(
            nk=np.asarray(stored[f"{prefix}_nk"], dtype=np.float64),
            sx=np.asarray(stored[f"{prefix}_sx"], dtype=np.float64),
            sxx=np.asarray(stored[f"{prefix}_sxx"], dtype=np.float64),
            n=float(stored[f"{prefix}_n"]),
        )


@dataclass(frozen=True)
class BernoulliStats:
    """Per-row-normalised sufficient statistics of a Bernoulli mixture.

    Attributes:
        nk: ``(K,)`` mean responsibility mass per component (sums to 1).
        sx: ``(K, D)`` mean responsibility-weighted one-hot rows.
        n: rows that contributed (bookkeeping only).
    """

    nk: np.ndarray
    sx: np.ndarray
    n: float

    @classmethod
    def from_responsibilities(cls, x: np.ndarray, resp: np.ndarray) -> "BernoulliStats":
        x, resp = _check_responsibilities(x, resp)
        n = x.shape[0]
        return cls(nk=resp.sum(axis=0) / n, sx=(resp.T @ x) / n, n=float(n))

    def merge(self, other: "BernoulliStats") -> "BernoulliStats":
        """Exact pooling: equals the statistics of the concatenated data."""
        total = self.n + other.n
        a, b = self.n / total, other.n / total
        return BernoulliStats(nk=a * self.nk + b * other.nk, sx=a * self.sx + b * other.sx, n=total)

    def blend(self, batch: "BernoulliStats", rho: float) -> "BernoulliStats":
        """Stepwise-EM update: ``s ← (1-ρ)·s + ρ·ŝ_batch``."""
        if not 0.0 < rho <= 1.0:
            raise ValueError(f"rho must be in (0, 1], got {rho}")
        return BernoulliStats(
            nk=(1.0 - rho) * self.nk + rho * batch.nk,
            sx=(1.0 - rho) * self.sx + rho * batch.sx,
            n=self.n + batch.n,
        )

    def params(self, param_floor: float) -> BernoulliParams:
        """The M-step (Eq. 11), with the same clamp as ``BernoulliMixture``."""
        nk = np.maximum(self.nk, 1e-10)
        probs = np.clip(self.sx / nk[:, None], param_floor, 1.0 - param_floor)
        return BernoulliParams(weights=nk / nk.sum(), probs=probs)

    def arrays(self, prefix: str) -> dict[str, np.ndarray]:
        return {
            f"{prefix}_nk": self.nk,
            f"{prefix}_sx": self.sx,
            f"{prefix}_n": np.float64(self.n),
        }

    @classmethod
    def from_arrays(cls, stored: dict[str, np.ndarray], prefix: str) -> "BernoulliStats":
        return cls(
            nk=np.asarray(stored[f"{prefix}_nk"], dtype=np.float64),
            sx=np.asarray(stored[f"{prefix}_sx"], dtype=np.float64),
            n=float(stored[f"{prefix}_n"]),
        )
