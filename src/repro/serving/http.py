"""Minimal HTTP front-end for the streaming labeling service.

Stdlib-only (``http.server``): a :class:`LabelingHTTPServer` exposes a
running :class:`~repro.serving.service.LabelingService` on three
routes —

* ``POST /submit`` — body is a batch of ``(M, C, H, W)`` images, either
  a raw ``.npy``/``.npz`` payload (``np.save``/``np.savez`` bytes; an
  npz must hold an ``"images"`` entry) or JSON ``{"images": [...]}``.
  Replies ``202 {"ticket": ...}``, or **429 with a ``Retry-After``
  header** when the service's queued pixels would exceed the
  configurable back-pressure bound — clients shed load instead of the
  service's memory absorbing an unbounded backlog.
* ``GET /poll/<ticket>`` — non-blocking status: ``pending``, ``done``
  (with the class-aligned probabilistic labels and hard predictions),
  or ``failed`` (with the error).  Unknown tickets are 404 — including
  old ones the service already expired per ``ticket_retention``.
* ``GET /healthz`` — liveness plus the service's *queue depth*
  (``queued_pixels`` against the bound, ``tickets_outstanding``) and
  load counters (corpus size, batches run), so a load balancer can
  shed before the 429 path engages; in online mode the online
  session's step/drift snapshot rides along under ``"online"``, and
  the HTTP layer's own request/shed totals ride along under ``"http"``
  (a scrape between polls can tell whether traffic is flowing).
* ``GET /metrics`` — the process metrics registry in Prometheus text
  exposition format: serving, online, engine/cache, and distributed
  metric families (see ENGINE.md, "Observability").

Every submission gets a **trace id** (minted here, or the client's
``X-Trace-Id`` header), returned in the 202 payload and response
header and threaded through the service worker into the online/
incremental/inference spans, so one request's path across threads is
reconstructable from ``repro.obs.recent_spans``.

Each request is handled on its own thread (``ThreadingHTTPServer``);
all actual labeling still funnels through the service's single
background worker, so the HTTP layer adds concurrency only where it is
safe — parsing, queueing, and polling.
"""

from __future__ import annotations

import io
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.obs import MetricsRegistry, new_trace_id
from repro.serving.service import BackPressureError, LabelingService, TicketStatus

__all__ = ["LabelingHTTPServer", "serve_http"]


class LabelingHTTPServer(ThreadingHTTPServer):
    """HTTP wrapper around a started :class:`LabelingService`.

    Parameters:
        service: the (already started) service to expose.
        address: ``(host, port)`` to bind; port 0 picks an ephemeral
            port (read it back from :attr:`port` / :attr:`url`).
        max_queued_pixels: back-pressure bound — a submission whose
            pixels would push the service's queued total above this
            returns 429; ``None`` disables shedding.
        retry_after: value of the 429 ``Retry-After`` header (seconds).
        registry: metrics registry backing ``/metrics`` and the HTTP
            request counters; defaults to the service's (which itself
            defaults to the process-wide registry).
    """

    daemon_threads = True

    def __init__(
        self,
        service: LabelingService,
        address: tuple[str, int] = ("127.0.0.1", 0),
        *,
        max_queued_pixels: int | None = None,
        retry_after: float = 1.0,
        registry: MetricsRegistry | None = None,
    ):
        if max_queued_pixels is not None and max_queued_pixels < 1:
            raise ValueError(f"max_queued_pixels must be >= 1, got {max_queued_pixels}")
        if retry_after <= 0:
            raise ValueError(f"retry_after must be > 0, got {retry_after}")
        self.service = service
        self.max_queued_pixels = max_queued_pixels
        self.retry_after = retry_after
        self.registry = registry or service.registry
        self.m_requests = self.registry.counter(
            "goggles_http_requests_total",
            "HTTP requests handled, by normalised route and status code.",
            labelnames=("route", "status"),
        )
        self.m_request_seconds = self.registry.histogram(
            "goggles_http_request_seconds",
            "HTTP request handling wall time, by normalised route.",
            labelnames=("route",),
        )
        self.m_shed = self.registry.counter(
            "goggles_http_shed_total",
            "Submissions shed with 429 by the HTTP back-pressure bound.",
        )
        super().__init__(tuple(address), _Handler)

    @property
    def port(self) -> int:
        return int(self.server_address[1])

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    def serve_in_background(self) -> threading.Thread:
        """Run ``serve_forever`` on a daemon thread; returns the thread."""
        thread = threading.Thread(target=self.serve_forever, name="goggles-http", daemon=True)
        thread.start()
        return thread


def serve_http(
    service: LabelingService,
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs: object,
) -> LabelingHTTPServer:
    """Build a :class:`LabelingHTTPServer` and start it in the background."""
    server = LabelingHTTPServer(service, (host, port), **kwargs)
    server.serve_in_background()
    return server


def _status_payload(status: TicketStatus) -> dict:
    payload: dict = {"ticket": status.ticket, "state": status.state}
    if status.state == "done":
        assert status.probabilistic_labels is not None
        payload["probabilistic_labels"] = status.probabilistic_labels.tolist()
        payload["predictions"] = status.predictions.tolist()
    elif status.state == "failed":
        payload["error"] = status.error
    return payload


def _parse_images(body: bytes, content_type: str) -> np.ndarray:
    if "application/json" in content_type:
        document = json.loads(body.decode("utf-8"))
        if not isinstance(document, dict) or "images" not in document:
            raise ValueError('JSON body must be an object with an "images" key')
        return np.asarray(document["images"], dtype=np.float64)
    loaded = np.load(io.BytesIO(body), allow_pickle=False)
    if isinstance(loaded, np.lib.npyio.NpzFile):
        with loaded:
            if "images" not in loaded.files:
                raise ValueError('npz body must hold an "images" entry')
            return np.asarray(loaded["images"], dtype=np.float64)
    return np.asarray(loaded, dtype=np.float64)


def _route_of(method: str, path: str) -> str:
    """Normalise a request path to a bounded route-label set."""
    if method == "GET":
        if path == "/healthz":
            return "/healthz"
        if path == "/metrics":
            return "/metrics"
        if path.startswith("/poll/"):
            return "/poll"
    elif method == "POST" and path == "/submit":
        return "/submit"
    return "other"


class _Handler(BaseHTTPRequestHandler):
    server: LabelingHTTPServer

    # Quiet by default: a labeling benchmark should not spam stderr.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    # ------------------------------------------------------------------
    # Replies
    # ------------------------------------------------------------------
    def _reply(self, code: int, payload: dict, headers: dict[str, str] | None = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send(code, body, "application/json", headers)

    def _send(
        self,
        code: int,
        body: bytes,
        content_type: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        self._status_code = code
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _timed(self, method: str, handler) -> None:
        """Run a route handler, recording request count and wall time."""
        route = _route_of(method, self.path)
        self._status_code = 0
        started = time.monotonic()
        try:
            handler()
        finally:
            self.server.m_request_seconds.observe(time.monotonic() - started, route=route)
            self.server.m_requests.inc(route=route, status=str(self._status_code or 500))

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._timed("GET", self._get)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._timed("POST", self._post)

    def _get(self) -> None:
        service = self.server.service
        if self.path == "/healthz":
            queued = service.queued_pixels
            bound = self.server.max_queued_pixels
            self._reply(
                200,
                {
                    "status": "ok" if service.running else "stopped",
                    "mode": service.mode,
                    "corpus_size": service.corpus_size,
                    "queued_pixels": queued,
                    "max_queued_pixels": bound,
                    "queue_fill": None if bound is None else round(queued / bound, 4),
                    "tickets_outstanding": service.tickets_outstanding,
                    "n_batches": service.n_batches,
                    "n_labeled": service.n_labeled,
                    "online": service.online_stats,
                    "http": {
                        "requests_total": int(self.server.m_requests.total()),
                        "shed_total": int(self.server.m_shed.total()),
                    },
                },
            )
            return
        if self.path == "/metrics":
            body = self.server.registry.render().encode("utf-8")
            self._send(200, body, "text/plain; version=0.0.4; charset=utf-8")
            return
        if self.path.startswith("/poll/"):
            ticket = self.path[len("/poll/"):]
            try:
                status = service.poll(ticket)
            except KeyError:
                self._reply(404, {"error": f"unknown ticket {ticket!r}"})
                return
            self._reply(200, _status_payload(status))
            return
        self._reply(404, {"error": f"no route {self.path!r}"})

    def _post(self) -> None:
        if self.path != "/submit":
            self._reply(404, {"error": f"no route {self.path!r}"})
            return
        service = self.server.service
        try:
            length = int(self.headers.get("Content-Length", "0"))
            body = self.rfile.read(length)
            images = _parse_images(body, self.headers.get("Content-Type", ""))
            if images.ndim != 4 or images.shape[0] == 0:
                raise ValueError(f"expected a non-empty (M, C, H, W) batch, got shape {images.shape}")
        except Exception as error:  # noqa: BLE001 - malformed input is the client's fault
            self._reply(400, {"error": f"{type(error).__name__}: {error}"})
            return
        trace_id = self.headers.get("X-Trace-Id") or new_trace_id()
        try:
            # The bound is enforced *inside* submit, under the service
            # lock — concurrent handler threads cannot jointly overshoot.
            ticket = service.submit(
                images,
                max_queued_pixels=self.server.max_queued_pixels,
                trace_id=trace_id,
            )
        except BackPressureError as error:
            self.server.m_shed.inc()
            self._reply(
                429,
                {
                    "error": "labeling queue is full, retry later",
                    "queued_pixels": error.queued_pixels,
                    "max_queued_pixels": error.bound,
                },
                headers={"Retry-After": f"{self.server.retry_after:g}"},
            )
            return
        except RuntimeError as error:  # not started / stopping
            self._reply(503, {"error": str(error)})
            return
        self._reply(
            202,
            {"ticket": ticket, "trace_id": trace_id},
            headers={"X-Trace-Id": trace_id},
        )
