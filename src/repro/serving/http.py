"""Versioned, tenant-scoped HTTP front-end for the labeling service.

Stdlib-only (``http.server``): a :class:`LabelingHTTPServer` exposes a
:class:`~repro.serving.registry.TenantRegistry` — or a single started
:class:`~repro.serving.service.LabelingService`, adopted as its default
tenant — through one declarative **route table** (method, pattern,
handler).  Dispatch, the bounded Prometheus ``route`` label, and the
404 fall-through all derive from the same table, so there is exactly
one place a route exists.

The ``/v1`` API:

* ``POST /v1/tenants`` — register a tenant: JSON body with
  ``tenant_id``, ``images`` (the seed corpus), ``dev_indices`` +
  ``dev_labels`` (the cluster→class dev set), and optional config
  fields (``mode``, ``n_classes``, ``max_queued_pixels``,
  ``retry_after``).  Fits synchronously; replies ``201`` with the
  tenant row, ``409 tenant_exists`` on a duplicate id.
* ``GET /v1/tenants`` — list every tenant's state row.
* ``POST /v1/tenants/<id>/submit`` — submit an ``(M, C, H, W)`` batch
  (JSON ``{"images": ...}`` or raw ``.npy``/``.npz`` bytes) to one
  tenant; ``202 {"ticket": ...}``, or ``429 backpressure`` with a
  ``Retry-After`` header when *that tenant's* queue bound is hit —
  other tenants' traffic is never shed by it.
* ``GET /v1/tenants/<id>/poll/<ticket>`` — non-blocking ticket status.
* ``DELETE /v1/tenants/<id>`` — evict (drain + drop the fitted state,
  keep the registration; the next submit transparently reloads it
  bit-identically).  ``?forget=true`` removes the registration too.
* ``GET /healthz`` — per-tenant queue/drift sections plus the legacy
  top-level default-tenant fields; ``?tenant=<id>`` narrows to one
  tenant's section.  When the registry carries distributed telemetry
  (merged worker counters, shard timelines) a ``distributed`` section
  summarises it.
* ``GET /metrics`` — Prometheus text exposition; ``?tenant=<id>``
  keeps only that tenant's series.
* ``GET /v1/traces/<trace-id>`` — the cross-process span timeline of
  one trace, assembled from the in-process span ring (worker-side
  spans land there through the telemetry merger); 404
  ``unknown_trace`` when no span carries the id.

**Error envelope**: every error path answers JSON
``{"error": {"code", "message", "trace_id", ...}}`` with the request's
trace id echoed in the ``X-Trace-Id`` header — codes are
``unknown_route``, ``unknown_tenant``, ``unknown_ticket``,
``bad_request``, ``payload_too_large`` (413, bodies above
``max_body_bytes``), ``backpressure`` (429), ``tenant_exists`` (409),
``tenant_unavailable`` / ``service_unavailable`` (503).

**Deprecation policy**: the unversioned routes (``POST /submit``,
``GET /poll/<ticket>``) remain as aliases onto the default tenant and
answer with a ``Deprecation: true`` header; new clients must use the
``/v1`` forms (see ENGINE.md, "Multi-tenant serving").

Each request is handled on its own thread (``ThreadingHTTPServer``);
all actual labeling still funnels through each tenant service's single
background worker, so the HTTP layer adds concurrency only where it is
safe — parsing, queueing, and polling.
"""

from __future__ import annotations

import io
import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import NamedTuple
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.datasets.base import DevSet
from repro.obs import MetricsRegistry, filter_exposition, new_trace_id, recent_spans
from repro.serving.registry import (
    DEFAULT_TENANT,
    TenantConfig,
    TenantExistsError,
    TenantRegistry,
    TenantUnavailableError,
    UnknownTenantError,
)
from repro.serving.service import BackPressureError, LabelingService, TicketStatus

__all__ = ["LabelingHTTPServer", "ROUTES", "Route", "serve_http"]

#: Bodies above this many bytes answer 413 without being read.
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024


class Route(NamedTuple):
    """One row of the route table: dispatch + metrics label, together."""

    method: str
    pattern: re.Pattern
    label: str  # bounded-cardinality Prometheus route label
    handler: str  # _Handler method name
    deprecated: bool = False


#: The single source of routing truth: dispatch, the ``route`` metric
#: label, and 404 fall-through all read this table.
ROUTES: tuple[Route, ...] = (
    Route("GET", re.compile(r"^/healthz$"), "/healthz", "_handle_healthz"),
    Route("GET", re.compile(r"^/metrics$"), "/metrics", "_handle_metrics"),
    Route(
        "GET",
        re.compile(r"^/v1/traces/(?P<trace>[^/]+)$"),
        "/v1/traces/{id}",
        "_handle_trace",
    ),
    Route("GET", re.compile(r"^/v1/tenants$"), "/v1/tenants", "_handle_tenants_list"),
    Route("POST", re.compile(r"^/v1/tenants$"), "/v1/tenants", "_handle_tenants_register"),
    Route(
        "POST",
        re.compile(r"^/v1/tenants/(?P<tenant>[^/]+)/submit$"),
        "/v1/tenants/{id}/submit",
        "_handle_submit",
    ),
    Route(
        "GET",
        re.compile(r"^/v1/tenants/(?P<tenant>[^/]+)/poll/(?P<ticket>[^/]+)$"),
        "/v1/tenants/{id}/poll/{ticket}",
        "_handle_poll",
    ),
    Route(
        "DELETE",
        re.compile(r"^/v1/tenants/(?P<tenant>[^/]+)$"),
        "/v1/tenants/{id}",
        "_handle_tenants_evict",
    ),
    # Legacy unversioned aliases onto the default tenant (Deprecation
    # header; see the deprecation policy in ENGINE.md).
    Route("POST", re.compile(r"^/submit$"), "/submit", "_handle_submit", deprecated=True),
    Route("GET", re.compile(r"^/poll/(?P<ticket>[^/]+)$"), "/poll", "_handle_poll", deprecated=True),
)


def match_route(method: str, path: str) -> tuple[Route | None, re.Match | None]:
    """The first table row whose method and pattern match, or ``(None, None)``."""
    for route in ROUTES:
        if route.method != method:
            continue
        match = route.pattern.match(path)
        if match is not None:
            return route, match
    return None, None


def _route_of(method: str, path: str) -> str:
    """Normalise a request path to the table's bounded route-label set."""
    route, _ = match_route(method, path.partition("?")[0])
    return route.label if route is not None else "other"


class LabelingHTTPServer(ThreadingHTTPServer):
    """HTTP front-end over a tenant registry (or one adopted service).

    Parameters:
        service: either a :class:`TenantRegistry` (serves every
            registered tenant) or a started :class:`LabelingService` —
            which is adopted as the ``default`` tenant of an internal
            registry, preserving the original single-tenant contract.
        address: ``(host, port)`` to bind; port 0 picks an ephemeral
            port (read it back from :attr:`port` / :attr:`url`).
        max_queued_pixels: back-pressure bound for the *adopted* default
            tenant (ignored when a registry is passed — each tenant's
            bound lives in its :class:`TenantConfig`); ``None`` disables
            shedding.
        retry_after: 429 ``Retry-After`` header for the adopted default
            tenant (per-tenant via :class:`TenantConfig` otherwise).
        registry: metrics registry backing ``/metrics`` and the HTTP
            request counters; defaults to the service's / tenant
            registry's.
        max_body_bytes: request bodies above this answer ``413
            payload_too_large`` without being read.
        default_tenant: the tenant the legacy unversioned routes alias
            (registry form only; an adopted service always aliases its
            own tenant).  Defaults to ``"default"``.
    """

    daemon_threads = True

    def __init__(
        self,
        service: LabelingService | TenantRegistry,
        address: tuple[str, int] = ("127.0.0.1", 0),
        *,
        max_queued_pixels: int | None = None,
        retry_after: float = 1.0,
        registry: MetricsRegistry | None = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        default_tenant: str | None = None,
    ):
        if max_queued_pixels is not None and max_queued_pixels < 1:
            raise ValueError(f"max_queued_pixels must be >= 1, got {max_queued_pixels}")
        if retry_after <= 0:
            raise ValueError(f"retry_after must be > 0, got {retry_after}")
        if max_body_bytes < 1:
            raise ValueError(f"max_body_bytes must be >= 1, got {max_body_bytes}")
        self.max_queued_pixels = max_queued_pixels
        self.retry_after = retry_after
        self.max_body_bytes = max_body_bytes
        if isinstance(service, TenantRegistry):
            self.tenants = service
            self.service = None
            self.default_tenant = default_tenant or DEFAULT_TENANT
            self.registry = registry or service.metrics
        else:
            # Single-service form: adopt it as the default tenant so the
            # legacy routes and the /v1 ones serve the same state.
            self.service = service
            self.registry = registry or service.registry
            self.tenants = TenantRegistry(metrics=self.registry)
            self.default_tenant = service.tenant
            self.tenants.adopt(
                service.tenant,
                service,
                config=TenantConfig(
                    mode=service.mode,
                    max_queued_pixels=max_queued_pixels,
                    retry_after=retry_after,
                ),
            )
        self.m_requests = self.registry.counter(
            "goggles_http_requests_total",
            "HTTP requests handled, by normalised route, status code, and tenant.",
            labelnames=("route", "status", "tenant"),
        )
        self.m_request_seconds = self.registry.histogram(
            "goggles_http_request_seconds",
            "HTTP request handling wall time, by normalised route and tenant.",
            labelnames=("route", "tenant"),
        )
        self.m_shed = self.registry.counter(
            "goggles_http_shed_total",
            "Submissions shed with 429 by the HTTP back-pressure bound, by tenant.",
            labelnames=("tenant",),
        )
        super().__init__(tuple(address), _Handler)

    @property
    def port(self) -> int:
        return int(self.server_address[1])

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    def serve_in_background(self) -> threading.Thread:
        """Run ``serve_forever`` on a daemon thread; returns the thread."""
        thread = threading.Thread(target=self.serve_forever, name="goggles-http", daemon=True)
        thread.start()
        return thread


def serve_http(
    service: LabelingService | TenantRegistry,
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs: object,
) -> LabelingHTTPServer:
    """Build a :class:`LabelingHTTPServer` and start it in the background."""
    server = LabelingHTTPServer(service, (host, port), **kwargs)
    server.serve_in_background()
    return server


def _status_payload(status: TicketStatus) -> dict:
    payload: dict = {"ticket": status.ticket, "state": status.state}
    if status.state == "done":
        assert status.probabilistic_labels is not None
        payload["probabilistic_labels"] = status.probabilistic_labels.tolist()
        payload["predictions"] = status.predictions.tolist()
    elif status.state == "failed":
        payload["error"] = status.error
    return payload


def _parse_images(body: bytes, content_type: str) -> np.ndarray:
    if "application/json" in content_type:
        document = json.loads(body.decode("utf-8"))
        if not isinstance(document, dict) or "images" not in document:
            raise ValueError('JSON body must be an object with an "images" key')
        return np.asarray(document["images"], dtype=np.float64)
    loaded = np.load(io.BytesIO(body), allow_pickle=False)
    if isinstance(loaded, np.lib.npyio.NpzFile):
        with loaded:
            if "images" not in loaded.files:
                raise ValueError('npz body must hold an "images" entry')
            return np.asarray(loaded["images"], dtype=np.float64)
    return np.asarray(loaded, dtype=np.float64)


def _check_batch(images: np.ndarray) -> np.ndarray:
    if images.ndim != 4 or images.shape[0] == 0:
        raise ValueError(f"expected a non-empty (M, C, H, W) batch, got shape {images.shape}")
    return images


def _distributed_summary(registry: MetricsRegistry) -> dict | None:
    """The ``/healthz`` section summarising merged distributed telemetry.

    Present only when the registry carries distributed series (a
    coordinator or :class:`~repro.distributed.pool.WorkerPool` sharing
    the server's registry); ``None`` keeps the section out of
    single-process deployments' payloads.
    """
    workers = registry.get("goggles_worker_shards_completed_total")
    coordinator = registry.get("goggles_coordinator_shards_completed_total")
    if workers is None and coordinator is None:
        return None
    section: dict = {}
    if workers is not None:
        series = workers.series()
        section["workers"] = {key[0]: int(value) for key, value in sorted(series.items())}
        section["worker_shards_completed_total"] = int(sum(series.values()))
    if coordinator is not None:
        section["coordinator_shards_completed_total"] = int(coordinator.total())
    for field, name in (
        ("stragglers_total", "goggles_stragglers_total"),
        ("telemetry_frames_merged_total", "goggles_telemetry_frames_merged_total"),
        ("telemetry_frames_skipped_total", "goggles_telemetry_frames_skipped_total"),
        ("telemetry_merge_conflicts_total", "goggles_telemetry_merge_conflicts_total"),
    ):
        metric = registry.get(name)
        if metric is not None:
            section[field] = int(metric.total())
    return section


def _registration_config(document: dict) -> TenantConfig:
    """The TenantConfig encoded in a POST /v1/tenants body."""
    fields = {}
    for name in ("mode", "n_classes", "max_queued_pixels", "retry_after",
                 "warm_start", "ticket_retention", "max_batch"):
        if document.get(name) is not None:
            fields[name] = document[name]
    return TenantConfig(**fields)


class _Handler(BaseHTTPRequestHandler):
    server: LabelingHTTPServer

    # Quiet by default: a labeling benchmark should not spam stderr.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    # ------------------------------------------------------------------
    # Dispatch: every verb funnels through the route table
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        split = urlsplit(self.path)
        route, match = match_route(method, split.path)
        self._route_label = route.label if route is not None else "other"
        self._tenant_label = ""  # set by tenant-scoped handlers
        self._deprecated = route is not None and route.deprecated
        self._trace_id = self.headers.get("X-Trace-Id") or new_trace_id()
        self._status_code = 0
        started = time.monotonic()
        try:
            if route is None:
                self._error(404, "unknown_route", f"no route {method} {split.path!r}")
            else:
                query = parse_qs(split.query)
                getattr(self, route.handler)(match, query)
        finally:
            self.server.m_request_seconds.observe(
                time.monotonic() - started, route=self._route_label, tenant=self._tenant_label
            )
            self.server.m_requests.inc(
                route=self._route_label,
                status=str(self._status_code or 500),
                tenant=self._tenant_label,
            )

    def _match_tenant(self, match: re.Match | None) -> str:
        """The tenant a route addresses (legacy routes -> the default)."""
        groups = match.groupdict() if match is not None else {}
        tenant_id = groups.get("tenant") or self.server.default_tenant
        self._tenant_label = tenant_id
        return tenant_id

    # ------------------------------------------------------------------
    # Replies
    # ------------------------------------------------------------------
    def _reply(self, code: int, payload: dict, headers: dict[str, str] | None = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send(code, body, "application/json", headers)

    def _error(self, code: int, error_code: str, message: str,
               headers: dict[str, str] | None = None, **details: object) -> None:
        """The uniform error envelope every error path answers with."""
        envelope = {"code": error_code, "message": message, "trace_id": self._trace_id, **details}
        self._reply(code, {"error": envelope}, headers)

    def _send(
        self,
        code: int,
        body: bytes,
        content_type: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        self._status_code = code
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Trace-Id", self._trace_id)
        if self._deprecated:
            self.send_header("Deprecation", "true")
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes | None:
        """The request body, or ``None`` after an already-sent 413."""
        length = int(self.headers.get("Content-Length", "0") or 0)
        if length > self.server.max_body_bytes:
            self._error(
                413, "payload_too_large",
                f"request body of {length} bytes exceeds the {self.server.max_body_bytes}-byte bound",
                max_body_bytes=self.server.max_body_bytes,
            )
            return None
        return self.rfile.read(length)

    # ------------------------------------------------------------------
    # Handlers (reached only through the route table)
    # ------------------------------------------------------------------
    def _handle_healthz(self, match: re.Match | None, query: dict[str, list[str]]) -> None:
        tenants = self.server.tenants
        rows = {row["id"]: row for row in tenants.describe()}
        wanted = query.get("tenant", [None])[0]
        if wanted is not None:
            row = rows.get(wanted)
            if row is None:
                self._error(404, "unknown_tenant", f"unknown tenant {wanted!r}")
                return
            self._tenant_label = wanted
            self._reply(200, {"status": "ok" if row.get("running", True) else "stopped",
                              "tenant": wanted, **row})
            return
        stopped = any(row["state"] == "active" and not row.get("running") for row in rows.values())
        payload: dict = {"status": "stopped" if stopped else "ok"}
        # Back-compat: the default tenant's queue-depth fields stay at
        # the top level, exactly where single-tenant clients read them.
        default = rows.get(self.server.default_tenant)
        if default is not None and default["state"] == "active":
            for key in ("mode", "corpus_size", "queued_pixels", "max_queued_pixels",
                        "queue_fill", "tickets_outstanding", "n_batches", "n_labeled", "online"):
                payload[key] = default.get(key)
        payload["tenants"] = rows
        payload["registry"] = {
            "registered": len(rows),
            "active": sum(1 for row in rows.values() if row["state"] == "active"),
            "resident_bytes": tenants.resident_bytes(),
            "memory_budget_bytes": tenants.memory_budget_bytes,
        }
        payload["http"] = {
            "requests_total": int(self.server.m_requests.total()),
            "shed_total": int(self.server.m_shed.total()),
        }
        distributed = _distributed_summary(self.server.registry)
        if distributed is not None:
            payload["distributed"] = distributed
        self._reply(200, payload)

    def _handle_metrics(self, match: re.Match | None, query: dict[str, list[str]]) -> None:
        text = self.server.registry.render()
        wanted = query.get("tenant", [None])[0]
        if wanted is not None:
            self._tenant_label = wanted
            text = filter_exposition(text, tenant=wanted)
        self._send(200, text.encode("utf-8"), "text/plain; version=0.0.4; charset=utf-8")

    def _handle_trace(self, match: re.Match | None, query: dict[str, list[str]]) -> None:
        assert match is not None
        trace_id = match.group("trace")
        records = sorted(recent_spans(trace_id=trace_id), key=lambda r: r.started_at)
        if not records:
            self._error(404, "unknown_trace", f"no spans recorded for trace {trace_id!r}")
            return
        base = records[0].started_at
        spans = [
            {
                "name": record.name,
                "worker": record.worker,
                "seconds": record.seconds,
                "outcome": record.outcome,
                "started_at": record.started_at,
                "offset_seconds": max(record.started_at - base, 0.0),
            }
            for record in records
        ]
        self._reply(200, {"trace_id": trace_id, "spans": spans})

    def _handle_tenants_list(self, match: re.Match | None, query: dict[str, list[str]]) -> None:
        self._reply(200, {"tenants": self.server.tenants.describe()})

    def _handle_tenants_register(self, match: re.Match | None, query: dict[str, list[str]]) -> None:
        body = self._read_body()
        if body is None:
            return
        try:
            document = json.loads(body.decode("utf-8"))
            if not isinstance(document, dict):
                raise ValueError("body must be a JSON object")
            tenant_id = document.get("tenant_id")
            if not isinstance(tenant_id, str) or not tenant_id:
                raise ValueError('body must carry a string "tenant_id"')
            images = _check_batch(np.asarray(document["images"], dtype=np.float64))
            dev = DevSet(
                indices=np.asarray(document["dev_indices"], dtype=np.int64),
                labels=np.asarray(document["dev_labels"], dtype=np.int64),
            )
            config = _registration_config(document)
        except KeyError as error:
            self._error(400, "bad_request", f"missing field {error.args[0]!r}")
            return
        except Exception as error:  # noqa: BLE001 - malformed input is the client's fault
            self._error(400, "bad_request", f"{type(error).__name__}: {error}")
            return
        self._tenant_label = tenant_id
        try:
            handle = self.server.tenants.register(tenant_id, images, dev, config)
        except TenantExistsError:
            self._error(409, "tenant_exists", f"tenant {tenant_id!r} is already registered")
            return
        except ValueError as error:
            self._error(400, "bad_request", str(error))
            return
        self._reply(201, {"tenant": handle.describe(), "trace_id": self._trace_id})

    def _handle_tenants_evict(self, match: re.Match | None, query: dict[str, list[str]]) -> None:
        assert match is not None
        tenant_id = self._match_tenant(match)
        forget = query.get("forget", ["false"])[0].lower() in ("1", "true", "yes")
        try:
            if forget:
                self.server.tenants.remove(tenant_id)
            else:
                self.server.tenants.evict(tenant_id)
        except UnknownTenantError:
            self._error(404, "unknown_tenant", f"unknown tenant {tenant_id!r}")
            return
        self._reply(200, {"tenant": tenant_id, "state": "removed" if forget else "evicted"})

    def _handle_submit(self, match: re.Match | None, query: dict[str, list[str]]) -> None:
        tenant_id = self._match_tenant(match)
        tenants = self.server.tenants
        try:
            handle = tenants.get(tenant_id)
        except UnknownTenantError:
            self._error(404, "unknown_tenant", f"unknown tenant {tenant_id!r}")
            return
        body = self._read_body()
        if body is None:
            return
        try:
            images = _check_batch(_parse_images(body, self.headers.get("Content-Type", "")))
        except Exception as error:  # noqa: BLE001 - malformed input is the client's fault
            self._error(400, "bad_request", f"{type(error).__name__}: {error}")
            return
        try:
            # The bound is enforced *inside* the tenant service's submit,
            # under its lock — concurrent handler threads cannot jointly
            # overshoot, and only this tenant's traffic is ever shed.
            ticket = tenants.submit(tenant_id, images, trace_id=self._trace_id)
        except BackPressureError as error:
            self.server.m_shed.inc(tenant=tenant_id)
            self._error(
                429, "backpressure", "labeling queue is full, retry later",
                headers={"Retry-After": f"{handle.config.retry_after:g}"},
                queued_pixels=error.queued_pixels,
                max_queued_pixels=error.bound,
            )
            return
        except UnknownTenantError:  # raced a concurrent remove
            self._error(404, "unknown_tenant", f"unknown tenant {tenant_id!r}")
            return
        except TenantUnavailableError as error:
            self._error(503, "tenant_unavailable", str(error))
            return
        except RuntimeError as error:  # not started / stopping
            self._error(503, "service_unavailable", str(error))
            return
        self._reply(202, {"ticket": ticket, "tenant": tenant_id, "trace_id": self._trace_id})

    def _handle_poll(self, match: re.Match | None, query: dict[str, list[str]]) -> None:
        assert match is not None
        tenant_id = self._match_tenant(match)
        ticket = match.group("ticket")
        try:
            status = self.server.tenants.poll(tenant_id, ticket)
        except UnknownTenantError:
            self._error(404, "unknown_tenant", f"unknown tenant {tenant_id!r}")
            return
        except KeyError:
            self._error(404, "unknown_ticket", f"unknown ticket {ticket!r}")
            return
        self._reply(200, {**_status_payload(status), "tenant": tenant_id})
