"""Streaming labeling service (see ENGINE.md, "The serving loop").

Wraps :class:`~repro.core.goggles.Goggles` behind a long-lived
``submit(images) -> ticket`` / ``poll(ticket)`` interface whose
background worker batches arrivals through warm-started incremental
inference.
"""

from repro.serving.http import LabelingHTTPServer, serve_http
from repro.serving.service import SERVICE_MODES, BackPressureError, LabelingService, TicketStatus

__all__ = [
    "BackPressureError",
    "LabelingHTTPServer",
    "LabelingService",
    "SERVICE_MODES",
    "TicketStatus",
    "serve_http",
]
