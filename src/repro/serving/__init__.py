"""Streaming labeling service (see ENGINE.md, "The serving loop").

Wraps :class:`~repro.core.goggles.Goggles` behind a long-lived
``submit(images) -> ticket`` / ``poll(ticket)`` interface whose
background worker batches arrivals through warm-started incremental
inference.  The :class:`TenantRegistry` hosts many such services —
one fitted hierarchy per tenant — behind the versioned ``/v1``
tenant-scoped HTTP API (see ENGINE.md, "Multi-tenant serving").
"""

from repro.serving.http import ROUTES, LabelingHTTPServer, Route, serve_http
from repro.serving.registry import (
    DEFAULT_TENANT,
    TenantConfig,
    TenantExistsError,
    TenantHandle,
    TenantRegistry,
    TenantUnavailableError,
    UnknownTenantError,
)
from repro.serving.service import SERVICE_MODES, BackPressureError, LabelingService, TicketStatus

__all__ = [
    "BackPressureError",
    "DEFAULT_TENANT",
    "LabelingHTTPServer",
    "LabelingService",
    "ROUTES",
    "Route",
    "SERVICE_MODES",
    "TenantConfig",
    "TenantExistsError",
    "TenantHandle",
    "TenantRegistry",
    "TenantUnavailableError",
    "TicketStatus",
    "UnknownTenantError",
    "serve_http",
]
