"""Multi-tenant model registry: one process, many labeling tasks.

GOGGLES' premise is that affinity coding generalises across domains,
yet one ``serve`` process historically hosted exactly one fitted
hierarchy.  The :class:`TenantRegistry` lifts that restriction: it maps
``tenant_id -> TenantHandle`` where each handle owns a fitted corpus
(its own :class:`~repro.core.goggles.Goggles`), a running
:class:`~repro.serving.service.LabelingService` (and, in online mode,
that service's :class:`~repro.online.OnlineSession`), and a per-tenant
:class:`TenantConfig` — queue bound, 429 ``Retry-After``, serving mode.

Lifecycle verbs:

* :meth:`TenantRegistry.register` — fit a new tenant from its seed
  corpus + dev set and start serving it;
* :meth:`TenantRegistry.adopt` — wrap an externally built, already
  *started* service (the legacy single-tenant HTTP path and the CLI
  both adopt);
* :meth:`TenantRegistry.activate` — transparent reload of an evicted
  tenant.  The rebuild goes through ``goggles.label`` on the retained
  seed corpus: with a cache directory every stage is a content-addressed
  disk hit (affinity, corpus state, inference params, ``online-*.npz``
  state), and without one the pipeline is still fully seeded — either
  way the reloaded tenant's posteriors are **bit-identical** to the
  pre-eviction ones (tests prove this);
* :meth:`TenantRegistry.evict` — drain and drop the service + corpus
  state while keeping the registration (the reload recipe);
* :meth:`TenantRegistry.remove` — evict and forget.

Idle tenants are lazily evicted under a global ``memory_budget_bytes``:
whenever the resident corpus bytes of all active tenants exceed the
budget, the least-recently-requested reloadable tenants are evicted
until it fits (the tenant that triggered enforcement is exempt).  The
next request to an evicted tenant reloads it transparently.

Isolation contract: every tenant has its own ``LabelingService`` (own
queue, own worker thread, own ticket table) and its own queue-depth
bound, so one tenant saturating its bound sheds *its* traffic with 429
while every other tenant's submissions proceed.  Tickets are namespaced
``<tenant>-t<counter>`` by the service, so a ticket can never resolve
under the wrong tenant.  The shared :class:`~repro.engine.cache.
ArtifactCache` directory stays global — content addressing already
prevents cross-tenant collisions — but its metrics carry a ``tenant``
label (the registry stamps each tenant's cache instance).
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.goggles import Goggles, GogglesConfig
from repro.datasets.base import DevSet
from repro.obs import MetricsRegistry, default_registry
from repro.online import OnlineConfig
from repro.serving.service import SERVICE_MODES, LabelingService, TicketStatus

__all__ = [
    "DEFAULT_TENANT",
    "TENANT_ID_RE",
    "TenantConfig",
    "TenantExistsError",
    "TenantHandle",
    "TenantRegistry",
    "TenantUnavailableError",
    "UnknownTenantError",
]

#: The tenant legacy unversioned routes and single-service setups map to.
DEFAULT_TENANT = "default"

#: URL-safe tenant ids: they appear verbatim in ``/v1/tenants/<id>/...``
#: paths and as Prometheus label values.
TENANT_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")


class UnknownTenantError(KeyError):
    """The tenant id is not registered."""

    def __init__(self, tenant_id: str):
        self.tenant_id = tenant_id
        super().__init__(f"unknown tenant {tenant_id!r}")


class TenantExistsError(ValueError):
    """The tenant id is already registered."""

    def __init__(self, tenant_id: str):
        self.tenant_id = tenant_id
        super().__init__(f"tenant {tenant_id!r} is already registered")


class TenantUnavailableError(RuntimeError):
    """The tenant is evicted and holds no reload recipe (adopted without
    seed images), so it cannot be transparently reloaded."""

    def __init__(self, tenant_id: str):
        self.tenant_id = tenant_id
        super().__init__(
            f"tenant {tenant_id!r} is evicted and not reloadable (adopted without a seed recipe)"
        )


@dataclass(frozen=True)
class TenantConfig:
    """Per-tenant serving knobs.

    Attributes:
        mode: ``"batch"`` or ``"online"`` (see :class:`LabelingService`).
        n_classes: label-space size; ``None`` inherits the registry's
            base pipeline config.
        max_queued_pixels: this tenant's back-pressure bound — its
            submissions shed with 429 when *its own* queue would exceed
            the bound; other tenants are unaffected.  ``None`` disables
            shedding for this tenant.
        retry_after: the 429 ``Retry-After`` header value (seconds).
        warm_start: warm-start inference on each incremental batch.
        ticket_retention: resolved tickets kept before expiry.
        max_batch: cap on submissions coalesced per incremental run.
        online: online-loop knobs for ``mode="online"``.
    """

    mode: str = "batch"
    n_classes: int | None = None
    max_queued_pixels: int | None = None
    retry_after: float = 1.0
    warm_start: bool = True
    ticket_retention: int = 1024
    max_batch: int | None = None
    online: OnlineConfig | None = None

    def __post_init__(self) -> None:
        if self.mode not in SERVICE_MODES:
            raise ValueError(f"mode must be one of {SERVICE_MODES}, got {self.mode!r}")
        if self.n_classes is not None and self.n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {self.n_classes}")
        if self.max_queued_pixels is not None and self.max_queued_pixels < 1:
            raise ValueError(f"max_queued_pixels must be >= 1, got {self.max_queued_pixels}")
        if self.retry_after <= 0:
            raise ValueError(f"retry_after must be > 0, got {self.retry_after}")
        if self.ticket_retention < 1:
            raise ValueError(f"ticket_retention must be >= 1, got {self.ticket_retention}")
        if self.max_batch is not None and self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")


@dataclass
class TenantHandle:
    """One tenant's registration: live state plus the reload recipe.

    ``service``/``goggles`` are ``None`` while evicted; ``seed_images``
    + ``dev_set`` + ``goggles_config`` are the recipe :meth:`TenantRegistry.
    activate` rebuilds from (``None`` for adopted tenants without one).
    """

    tenant_id: str
    config: TenantConfig
    service: LabelingService | None = None
    goggles: Goggles | None = None
    goggles_config: GogglesConfig | None = None
    seed_images: np.ndarray | None = None
    dev_set: DevSet | None = None
    owns_goggles: bool = True
    last_request: float = field(default_factory=time.monotonic)
    n_reloads: int = 0
    n_evictions: int = 0
    lock: threading.RLock = field(default_factory=threading.RLock, repr=False)

    @property
    def active(self) -> bool:
        return self.service is not None

    @property
    def reloadable(self) -> bool:
        return (
            self.seed_images is not None
            and self.dev_set is not None
            and self.goggles_config is not None
        )

    def touch(self) -> None:
        self.last_request = time.monotonic()

    def resident_bytes(self) -> int:
        """Estimated bytes of this tenant's resident corpus state
        (affinity values + retained per-layer arrays); 0 while evicted."""
        goggles = self.goggles or (self.service.goggles if self.service is not None else None)
        if goggles is None:
            return 0
        state = goggles.engine.state
        if state is None:
            return 0
        total = sum(int(array.nbytes) for array in state.arrays.values())
        values = getattr(state.affinity, "values", None)
        if isinstance(values, np.ndarray):
            total += int(values.nbytes)
        return total

    def describe(self) -> dict:
        """JSON-serialisable snapshot for ``GET /v1/tenants`` / healthz."""
        service = self.service
        row: dict = {
            "id": self.tenant_id,
            "state": "active" if service is not None else "evicted",
            "mode": self.config.mode if service is None else service.mode,
            "reloadable": self.reloadable,
            "max_queued_pixels": self.config.max_queued_pixels,
            "retry_after": self.config.retry_after,
            "reloads": self.n_reloads,
            "evictions": self.n_evictions,
            "resident_bytes": self.resident_bytes(),
            "last_request_age_seconds": round(time.monotonic() - self.last_request, 3),
        }
        if service is not None:
            queued = service.queued_pixels
            bound = self.config.max_queued_pixels
            row.update(
                {
                    "running": service.running,
                    "corpus_size": service.corpus_size,
                    "queued_pixels": queued,
                    "queue_fill": None if bound is None else round(queued / bound, 4),
                    "tickets_outstanding": service.tickets_outstanding,
                    "n_batches": service.n_batches,
                    "n_labeled": service.n_labeled,
                    "online": service.online_stats,
                }
            )
        return row


class TenantRegistry:
    """``tenant_id -> TenantHandle`` with lifecycle + budget enforcement.

    Parameters:
        base_config: pipeline config template for :meth:`register` (a
            tenant overrides ``n_classes``/``online`` via its
            :class:`TenantConfig`; ``keep_corpus_state`` is forced on).
            ``None`` falls back to ``GogglesConfig()`` defaults.
        model: shared backbone passed to every tenant's ``Goggles`` —
            the VGG surrogate is tenant-agnostic, so sharing it avoids
            one backbone per tenant.  ``None`` lets each tenant build
            its own from ``base_config.vgg``.
        memory_budget_bytes: global bound on the summed resident corpus
            bytes of *active* tenants; exceeded -> LRU-idle reloadable
            tenants are evicted (see :meth:`_enforce_budget`).
        metrics: registry for the ``goggles_tenant_*`` families and
            every tenant service's instruments; defaults process-wide.

    Locking: the registry dict is guarded by one lock; slow operations
    (fits, reloads, drains) run under the *handle's* lock only, so one
    tenant's reload never stalls another tenant's submits.
    """

    def __init__(
        self,
        base_config: GogglesConfig | None = None,
        model: object | None = None,
        *,
        memory_budget_bytes: int | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        if memory_budget_bytes is not None and memory_budget_bytes < 1:
            raise ValueError(f"memory_budget_bytes must be >= 1, got {memory_budget_bytes}")
        self.base_config = base_config
        self.model = model
        self.memory_budget_bytes = memory_budget_bytes
        self.metrics = metrics or default_registry()
        self._handles: dict[str, TenantHandle] = {}
        self._registering: set[str] = set()
        self._lock = threading.RLock()
        self._m_evictions = self.metrics.counter(
            "goggles_tenant_evictions_total",
            "Tenant evictions (explicit or memory-budget LRU), by tenant.",
            labelnames=("tenant",),
        )
        self._m_reloads = self.metrics.counter(
            "goggles_tenant_reloads_total",
            "Transparent tenant reloads after eviction, by tenant.",
            labelnames=("tenant",),
        )
        self.metrics.gauge(
            "goggles_tenants_registered", "Tenants currently registered."
        ).set_function(lambda: len(self._handles))
        self.metrics.gauge(
            "goggles_tenants_active", "Registered tenants with a live service."
        ).set_function(lambda: sum(1 for h in list(self._handles.values()) if h.active))
        self.metrics.gauge(
            "goggles_tenants_resident_bytes",
            "Estimated resident corpus bytes across active tenants.",
        ).set_function(self.resident_bytes)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, tenant_id: str) -> TenantHandle:
        with self._lock:
            handle = self._handles.get(tenant_id)
        if handle is None:
            raise UnknownTenantError(tenant_id)
        return handle

    def __contains__(self, tenant_id: str) -> bool:
        with self._lock:
            return tenant_id in self._handles

    def tenant_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._handles)

    def describe(self) -> list[dict]:
        """One :meth:`TenantHandle.describe` row per tenant, sorted."""
        with self._lock:
            handles = [self._handles[tid] for tid in sorted(self._handles)]
        return [handle.describe() for handle in handles]

    def resident_bytes(self) -> int:
        with self._lock:
            handles = list(self._handles.values())
        return sum(handle.resident_bytes() for handle in handles)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _reserve(self, tenant_id: str) -> None:
        if not TENANT_ID_RE.match(tenant_id):
            raise ValueError(
                f"invalid tenant id {tenant_id!r}: must match {TENANT_ID_RE.pattern}"
            )
        with self._lock:
            if tenant_id in self._handles or tenant_id in self._registering:
                raise TenantExistsError(tenant_id)
            self._registering.add(tenant_id)

    def _tenant_goggles_config(self, config: TenantConfig) -> GogglesConfig:
        base = self.base_config or GogglesConfig()
        return replace(
            base,
            n_classes=config.n_classes if config.n_classes is not None else base.n_classes,
            online=config.online if config.online is not None else base.online,
            keep_corpus_state=True,  # incremental serving extends the retained state
        )

    def _build_service(
        self,
        tenant_id: str,
        goggles_config: GogglesConfig,
        seed_images: np.ndarray,
        dev_set: DevSet,
        config: TenantConfig,
    ) -> tuple[Goggles, LabelingService]:
        goggles = Goggles(goggles_config, model=self.model)
        if goggles.engine.cache is not None:
            # The cache directory is shared (content addressing keeps
            # tenants from colliding); the metric label is per-tenant.
            goggles.engine.cache.tenant = tenant_id
        service = LabelingService(
            goggles,
            dev_set,
            tenant=tenant_id,
            mode=config.mode,
            warm_start=config.warm_start,
            ticket_retention=config.ticket_retention,
            max_batch=config.max_batch,
            online=config.online,
            registry=self.metrics,
        )
        service.start(seed_images)
        return goggles, service

    def register(
        self,
        tenant_id: str,
        images: np.ndarray,
        dev_set: DevSet,
        config: TenantConfig | None = None,
    ) -> TenantHandle:
        """Fit a new tenant on its seed corpus and start serving it.

        The fit runs outside the registry lock (only the id is reserved
        under it), so registering one tenant never blocks traffic to the
        others.  Raises :class:`TenantExistsError` on a duplicate id and
        ``ValueError`` on an invalid one.
        """
        config = config or TenantConfig()
        self._reserve(tenant_id)
        try:
            seed_images = np.asarray(images)
            goggles_config = self._tenant_goggles_config(config)
            goggles, service = self._build_service(
                tenant_id, goggles_config, seed_images, dev_set, config
            )
        except BaseException:
            with self._lock:
                self._registering.discard(tenant_id)
            raise
        handle = TenantHandle(
            tenant_id=tenant_id,
            config=config,
            service=service,
            goggles=goggles,
            goggles_config=goggles_config,
            seed_images=seed_images,
            dev_set=dev_set,
        )
        with self._lock:
            self._registering.discard(tenant_id)
            self._handles[tenant_id] = handle
        self._enforce_budget(keep=tenant_id)
        return handle

    def adopt(
        self,
        tenant_id: str,
        service: LabelingService,
        *,
        config: TenantConfig | None = None,
        seed_images: np.ndarray | None = None,
        dev_set: DevSet | None = None,
    ) -> TenantHandle:
        """Wrap an externally built, already *started* service.

        Supplying ``seed_images`` (+ optionally ``dev_set``, defaulting
        to the service's) makes the tenant reloadable after eviction;
        without them eviction is permanent for this tenant
        (:class:`TenantUnavailableError` on the next request).  The
        adopted ``Goggles`` stays caller-owned: the registry never
        closes it.
        """
        config = config or TenantConfig(mode=service.mode)
        self._reserve(tenant_id)
        if service.goggles.engine.cache is not None:
            service.goggles.engine.cache.tenant = tenant_id
        handle = TenantHandle(
            tenant_id=tenant_id,
            config=config,
            service=service,
            goggles=service.goggles,
            goggles_config=service.goggles.config if seed_images is not None else None,
            seed_images=None if seed_images is None else np.asarray(seed_images),
            dev_set=dev_set if dev_set is not None else service.dev_set,
            owns_goggles=False,
        )
        with self._lock:
            self._registering.discard(tenant_id)
            self._handles[tenant_id] = handle
        return handle

    # ------------------------------------------------------------------
    # Eviction / reload
    # ------------------------------------------------------------------
    def activate(self, tenant_id: str) -> TenantHandle:
        """Ensure the tenant is live, transparently reloading if evicted.

        The reload replays the seed fit through the engines — with a
        cache directory every stage is a content-addressed disk hit, and
        the pipeline is fully seeded regardless, so the reloaded state
        is bit-identical to the pre-eviction one.  In online mode the
        session additionally resumes its persisted ``online-*.npz``
        accumulators.
        """
        handle = self.get(tenant_id)
        with handle.lock:
            if handle.service is not None:
                return handle
            if not handle.reloadable:
                raise TenantUnavailableError(tenant_id)
            assert handle.goggles_config is not None
            assert handle.seed_images is not None and handle.dev_set is not None
            goggles, service = self._build_service(
                tenant_id, handle.goggles_config, handle.seed_images, handle.dev_set, handle.config
            )
            handle.goggles = goggles
            handle.service = service
            handle.owns_goggles = True
            handle.n_reloads += 1
        self._m_reloads.inc(tenant=tenant_id)
        return handle

    def evict(self, tenant_id: str, *, wait: bool = True) -> bool:
        """Drain and drop the tenant's service + corpus state, keeping
        the registration.  Returns whether anything was evicted.
        Outstanding tickets are dropped with the service — post-eviction
        polls answer 404, as after ticket expiry."""
        handle = self.get(tenant_id)
        with handle.lock:
            service, goggles = handle.service, handle.goggles
            handle.service = None
            handle.goggles = None
            if service is None:
                return False
            owns = handle.owns_goggles
            handle.n_evictions += 1
            service.stop(wait=wait)
            if owns and goggles is not None:
                goggles.close()
        self._m_evictions.inc(tenant=tenant_id)
        return True

    def reload(self, tenant_id: str) -> TenantHandle:
        """Force an evict + rebuild round trip (no-op eviction if already
        evicted)."""
        self.evict(tenant_id)
        return self.activate(tenant_id)

    def remove(self, tenant_id: str, *, wait: bool = True) -> None:
        """Evict and forget the tenant entirely."""
        self.evict(tenant_id, wait=wait)
        with self._lock:
            self._handles.pop(tenant_id, None)

    def _enforce_budget(self, keep: str | None = None) -> None:
        """Evict least-recently-requested tenants past the memory budget.

        Only *reloadable* tenants are candidates (evicting one without a
        recipe would permanently kill it to save memory), and ``keep`` —
        the tenant that triggered enforcement — is exempt so serving one
        request can never evict its own tenant.
        """
        budget = self.memory_budget_bytes
        if budget is None:
            return
        with self._lock:
            handles = list(self._handles.values())
        active = [h for h in handles if h.active]
        total = sum(h.resident_bytes() for h in active)
        for handle in sorted(active, key=lambda h: h.last_request):
            if total <= budget:
                break
            if handle.tenant_id == keep or not handle.reloadable:
                continue
            size = handle.resident_bytes()
            if self.evict(handle.tenant_id):
                total -= size

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def submit(self, tenant_id: str, images: np.ndarray, trace_id: str | None = None) -> str:
        """Submit to one tenant, transparently reloading it if evicted.

        The tenant's own ``max_queued_pixels`` bound applies — a full
        queue raises :class:`~repro.serving.service.BackPressureError`
        for *this* tenant only.
        """
        handle = self.activate(tenant_id)
        handle.touch()
        assert handle.service is not None
        ticket = handle.service.submit(
            images, max_queued_pixels=handle.config.max_queued_pixels, trace_id=trace_id
        )
        self._enforce_budget(keep=tenant_id)
        return ticket

    def poll(self, tenant_id: str, ticket: str) -> TicketStatus:
        """Poll one tenant's ticket (no reload: an evicted tenant's
        tickets died with its service, so the poll is a ``KeyError``
        just like an expired ticket)."""
        handle = self.get(tenant_id)
        handle.touch()
        if handle.service is None:
            raise KeyError(f"unknown ticket {ticket!r} (tenant {tenant_id!r} is evicted)")
        return handle.service.poll(ticket)

    def result(self, tenant_id: str, ticket: str, timeout: float | None = None) -> TicketStatus:
        """Block until one tenant's ticket resolves."""
        handle = self.get(tenant_id)
        handle.touch()
        if handle.service is None:
            raise KeyError(f"unknown ticket {ticket!r} (tenant {tenant_id!r} is evicted)")
        return handle.service.result(ticket, timeout=timeout)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, *, wait: bool = True) -> None:
        """Stop every tenant's service (drain) and release owned state.

        Registrations survive (a closed registry could activate again),
        but normal callers simply drop the registry afterwards."""
        for tenant_id in self.tenant_ids():
            try:
                self.evict(tenant_id, wait=wait)
            except UnknownTenantError:  # pragma: no cover - concurrent remove
                continue

    def __enter__(self) -> "TenantRegistry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
