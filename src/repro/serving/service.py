"""A long-lived streaming labeling service over the staged engines.

GOGGLES as batch code labels a corpus and exits; a production labeler
faces a *stream*: images keep arriving and each wants a probabilistic
label soon, without refitting the world per arrival.  The
:class:`LabelingService` wraps one :class:`~repro.core.goggles.Goggles`
instance behind ``submit(images) -> ticket`` / ``poll(ticket)``
semantics:

* ``submit`` enqueues images and returns immediately with a ticket;
* a single background worker drains the queue, coalescing every
  submission that arrived while the previous batch was running into
  one :meth:`~repro.core.goggles.Goggles.label_incremental` call
  (incremental affinity extension + warm-started EM — the marginal
  cost of an arrival, not a rebuild);
* ``poll``/``result`` return class-aligned probabilistic labels for
  exactly the submitted rows.

The worker is the only thread that touches the underlying ``Goggles``
object, so the engines need no internal locking; the service's own
bookkeeping is guarded by one condition variable.  Each processed
batch permanently extends the corpus, and later posteriors absorb all
earlier arrivals — the streaming analogue of the paper's "unlabeled +
dev images together" protocol (§2.2).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.goggles import Goggles, GogglesResult
from repro.datasets.base import DevSet
from repro.obs import MetricsRegistry, default_registry, span, trace_context
from repro.online import OnlineConfig, OnlineSession

__all__ = ["BackPressureError", "LabelingService", "TicketStatus", "SERVICE_MODES"]

SERVICE_MODES = ("batch", "online")


class BackPressureError(RuntimeError):
    """A submission was shed because the queue is at its pixel bound."""

    def __init__(self, queued_pixels: int, incoming: int, bound: int):
        self.queued_pixels = queued_pixels
        self.incoming = incoming
        self.bound = bound
        super().__init__(
            f"labeling queue is full: {queued_pixels} pixels queued + {incoming} "
            f"incoming would exceed the bound of {bound}; retry later"
        )


@dataclass(frozen=True)
class TicketStatus:
    """Snapshot of one submission's progress.

    Attributes:
        ticket: the ticket id returned by :meth:`LabelingService.submit`.
        state: ``"pending"`` (queued or in flight), ``"done"``, or
            ``"failed"``.
        probabilistic_labels: ``(M, K)`` class-aligned labels for the
            submitted rows, once ``done``.
        error: the failure description, once ``failed``.
    """

    ticket: str
    state: str
    probabilistic_labels: np.ndarray | None = None
    error: str | None = None

    @property
    def done(self) -> bool:
        return self.state == "done"

    @property
    def predictions(self) -> np.ndarray:
        """Hard labels (argmax); only valid once ``done``."""
        if self.probabilistic_labels is None:
            raise RuntimeError(f"ticket {self.ticket} is {self.state}, labels not available")
        return self.probabilistic_labels.argmax(axis=1)


@dataclass
class _Submission:
    ticket: str
    images: np.ndarray | None  # released once the batch is processed
    trace_id: str | None = None  # threaded from the HTTP front-end
    submitted_at: float = 0.0
    resolved: threading.Event = field(default_factory=threading.Event)
    status: TicketStatus | None = None


class LabelingService:
    """Streaming ``submit``/``poll`` front-end over incremental labeling.

    Parameters:
        goggles: the pipeline to serve.  The service owns it from
            :meth:`start` on; no other code should drive it concurrently.
        dev_set: the development set used for cluster→class mapping.
            Its indices must refer to the *initial* corpus passed to
            :meth:`start` (they stay valid as the corpus grows, since
            arrivals append after the existing rows).
        max_batch: cap on submissions coalesced into one incremental
            run; ``None`` drains everything queued.
        warm_start: warm-start inference on each batch (default); the
            escape hatch mirrors ``Goggles.label_incremental``.
        ticket_retention: resolved tickets kept for ``poll``/``result``
            before the oldest are expired (a long-lived service must
            not accumulate every result ever produced; submitted images
            are already released as soon as their batch is processed).
        mode: ``"batch"`` (each coalesced batch is a full
            ``label_incremental`` run that grows the corpus) or
            ``"online"`` (batches are absorbed by the O(batch)
            mini-batch EM of an :class:`~repro.online.OnlineSession`,
            which only escalates to a full refit on drift or schedule —
            see ENGINE.md, "Online stages").
        online: online-loop knobs for ``mode="online"``; defaults to
            ``goggles.config.online`` and then :class:`OnlineConfig`.
        tenant: tenant id this service serves under.  Tickets are
            namespaced ``<tenant>-t<counter>`` and every serving metric
            carries the id as a ``tenant`` label, so a multi-tenant
            process (:class:`~repro.serving.registry.TenantRegistry`)
            can attribute queue depth, sheds, and latency per tenant.
    """

    def __init__(
        self,
        goggles: Goggles,
        dev_set: DevSet,
        *,
        max_batch: int | None = None,
        warm_start: bool = True,
        ticket_retention: int = 1024,
        mode: str = "batch",
        online: OnlineConfig | None = None,
        registry: MetricsRegistry | None = None,
        tenant: str = "default",
    ):
        if max_batch is not None and max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if mode not in SERVICE_MODES:
            raise ValueError(f"mode must be one of {SERVICE_MODES}, got {mode!r}")
        if ticket_retention < 1:
            raise ValueError(f"ticket_retention must be >= 1, got {ticket_retention}")
        if not tenant:
            raise ValueError("tenant must be a non-empty id")
        if not goggles.config.keep_corpus_state:
            raise ValueError(
                "LabelingService needs keep_corpus_state=True: incremental "
                "labeling extends the retained corpus state"
            )
        self.goggles = goggles
        self.dev_set = dev_set
        self.max_batch = max_batch
        self.warm_start = warm_start
        self.ticket_retention = ticket_retention
        self.mode = mode
        self.tenant = tenant
        self._online_config = online
        self.session: OnlineSession | None = None
        self._cond = threading.Condition()
        self._queue: list[_Submission] = []
        self._tickets: dict[str, _Submission] = {}
        self._resolved_order: list[str] = []
        self._counter = 0
        self._worker: threading.Thread | None = None
        self._stopping = False
        self._n_batches = 0
        self._n_labeled = 0
        self._inflight_pixels = 0
        self.registry = registry or default_registry()
        self._init_metrics()

    def _init_metrics(self) -> None:
        """Declare the serving metric family (see ENGINE.md catalogue).

        Every family carries a ``tenant`` label so one registry can
        host many tenants' services without the series colliding.
        """
        reg = self.registry
        self._m_submits = reg.counter(
            "goggles_service_submits_total", "Submissions accepted by LabelingService.submit.",
            labelnames=("tenant",),
        )
        self._m_shed = reg.counter(
            "goggles_service_shed_total",
            "Submissions shed by the back-pressure bound (BackPressureError).",
            labelnames=("tenant",),
        )
        self._m_batches = reg.counter(
            "goggles_service_batches_total", "Coalesced batches executed, by mode.",
            labelnames=("mode", "tenant"),
        )
        self._m_labeled = reg.counter(
            "goggles_service_labeled_rows_total", "Streamed rows labeled (seed corpus excluded).",
            labelnames=("tenant",),
        )
        self._m_resolved = reg.counter(
            "goggles_service_tickets_resolved_total", "Tickets resolved, by final state.",
            labelnames=("state", "tenant"),
        )
        self._m_expired = reg.counter(
            "goggles_service_tickets_expired_total",
            "Resolved tickets expired past ticket_retention.",
            labelnames=("tenant",),
        )
        self._m_batch_seconds = reg.histogram(
            "goggles_service_batch_seconds",
            "Wall time of one coalesced labeling batch, by mode.",
            labelnames=("mode", "tenant"),
        )
        self._m_ticket_seconds = reg.histogram(
            "goggles_service_ticket_seconds",
            "Submit-to-resolution latency of individual tickets.",
            labelnames=("tenant",),
        )
        # Queue-depth gauges read live service state at scrape time, so
        # the hot path never updates them; a later service for the same
        # tenant re-binds its own series.
        reg.gauge(
            "goggles_service_queued_pixels",
            "Array elements of submissions queued or in flight.",
            labelnames=("tenant",),
        ).set_function(lambda: self.queued_pixels, tenant=self.tenant)
        reg.gauge(
            "goggles_service_tickets_outstanding",
            "Submitted tickets not yet resolved.",
            labelnames=("tenant",),
        ).set_function(lambda: self.tickets_outstanding, tenant=self.tenant)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, corpus_images: np.ndarray) -> GogglesResult:
        """Build the initial corpus and start the background worker.

        Returns the initial labeling result (the same object a direct
        ``goggles.label`` call would have produced), so callers can
        read labels for the seed corpus without a ticket.
        """
        if self._worker is not None:
            raise RuntimeError("LabelingService.start may only be called once")
        result = self.goggles.label(corpus_images, self.dev_set)
        if self.mode == "online":
            config = self._online_config or self.goggles.config.online or OnlineConfig()
            self.session = OnlineSession(
                self.goggles, self.dev_set, result, config,
                registry=self.registry, tenant=self.tenant,
            )
        self._worker = threading.Thread(target=self._run, name="labeling-service-worker", daemon=True)
        self._worker.start()
        return result

    def stop(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) wait for the worker.

        Already-queued submissions are still processed before the
        worker exits — stop is a drain, not an abort.  Idempotent.
        """
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        if wait and self._worker is not None:
            self._worker.join()

    def __enter__(self) -> "LabelingService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._worker is not None and self._worker.is_alive()

    @property
    def corpus_size(self) -> int:
        """Instances the underlying corpus currently holds."""
        state = self.goggles.engine.state
        return 0 if state is None else state.n_images

    @property
    def n_batches(self) -> int:
        """Incremental runs executed so far (arrivals coalesce)."""
        return self._n_batches

    @property
    def n_labeled(self) -> int:
        """Streamed instances labeled so far (excludes the seed corpus)."""
        return self._n_labeled

    @property
    def tickets_outstanding(self) -> int:
        """Submitted tickets not yet resolved (queued or in flight) — the
        queue-depth signal a load balancer should watch next to
        :attr:`queued_pixels`."""
        with self._cond:
            return sum(1 for s in self._tickets.values() if s.status is None)

    @property
    def online_stats(self) -> dict | None:
        """The online session's drift/step snapshot (``None`` in batch mode)."""
        return None if self.session is None else self.session.stats()

    @property
    def queued_pixels(self) -> int:
        """Array elements of every submission not yet labeled (queued or
        in flight) — the quantity the HTTP front-end's back-pressure
        bound is measured in."""
        with self._cond:
            queued = sum(s.images.size for s in self._queue if s.images is not None)
            return queued + self._inflight_pixels

    # ------------------------------------------------------------------
    # Submit / poll
    # ------------------------------------------------------------------
    def submit(
        self,
        images: np.ndarray,
        max_queued_pixels: int | None = None,
        trace_id: str | None = None,
    ) -> str:
        """Enqueue ``(M, C, H, W)`` images; returns a ticket id.

        ``max_queued_pixels`` makes the call shed load instead: when the
        currently queued + in-flight pixels plus this batch would exceed
        the bound, :class:`BackPressureError` is raised.  The check and
        the enqueue happen under one lock, so concurrent submitters
        (e.g. the threaded HTTP front-end) cannot jointly overshoot.
        ``trace_id`` tags the submission so spans recorded while its
        batch executes can be tied back to the originating request.
        """
        images = np.asarray(images)
        if images.ndim != 4 or images.shape[0] == 0:
            raise ValueError(f"expected a non-empty (M, C, H, W) batch, got shape {images.shape}")
        with self._cond:
            if self._worker is None:
                raise RuntimeError("call start() before submit()")
            if self._stopping:
                raise RuntimeError("LabelingService is stopped")
            if max_queued_pixels is not None:
                backlog = self._inflight_pixels + sum(
                    s.images.size for s in self._queue if s.images is not None
                )
                if backlog + images.size > max_queued_pixels:
                    self._m_shed.inc(tenant=self.tenant)
                    raise BackPressureError(backlog, images.size, max_queued_pixels)
            self._counter += 1
            # Tenant-namespaced: a ticket id can never resolve under a
            # different tenant's service, even with equal counters.
            ticket = f"{self.tenant}-t{self._counter:06d}"
            submission = _Submission(
                ticket=ticket, images=images, trace_id=trace_id, submitted_at=time.monotonic()
            )
            self._queue.append(submission)
            self._tickets[ticket] = submission
            self._cond.notify_all()
        self._m_submits.inc(tenant=self.tenant)
        return ticket

    def poll(self, ticket: str) -> TicketStatus:
        """Non-blocking status snapshot for a ticket."""
        with self._cond:
            submission = self._tickets.get(ticket)
        if submission is None:
            raise KeyError(f"unknown ticket {ticket!r}")
        if submission.status is None:
            return TicketStatus(ticket=ticket, state="pending")
        return submission.status

    def result(self, ticket: str, timeout: float | None = None) -> TicketStatus:
        """Block until a ticket resolves; raises TimeoutError on expiry."""
        with self._cond:
            submission = self._tickets.get(ticket)
        if submission is None:
            raise KeyError(f"unknown ticket {ticket!r}")
        if not submission.resolved.wait(timeout):
            raise TimeoutError(f"ticket {ticket} did not resolve within {timeout}s")
        assert submission.status is not None
        return submission.status

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stopping:
                    self._cond.wait()
                if not self._queue and self._stopping:
                    return
                take = len(self._queue) if self.max_batch is None else self.max_batch
                batch, self._queue = self._queue[:take], self._queue[take:]
                self._inflight_pixels = sum(s.images.size for s in batch if s.images is not None)
            try:
                self._process(batch)
            finally:
                with self._cond:
                    self._inflight_pixels = 0

    def _process(self, batch: list[_Submission]) -> None:
        sizes = [s.images.shape[0] for s in batch]
        # A coalesced batch may merge several submissions; the first
        # submission's trace id names the batch (its span ring records
        # which tickets rode along via the resolution counters).
        batch_trace = next((s.trace_id for s in batch if s.trace_id is not None), None)
        started = time.perf_counter()
        try:
            images = (
                batch[0].images
                if len(batch) == 1
                else np.concatenate([s.images for s in batch], axis=0)
            )
            with trace_context(batch_trace), span("service.batch", self.registry):
                if self.session is not None:
                    # Online mode: O(batch) absorb; the session only runs a
                    # full (corpus-growing) refit when its drift monitor or
                    # refit schedule escalates.
                    labels = self.session.absorb(images)
                else:
                    # label_incremental is atomic: on failure the corpus rolls
                    # back, so a failed ticket's images are truly not absorbed
                    # and the submission can simply be retried.
                    labels = self.goggles.label_incremental(
                        images, self.dev_set, warm_start=self.warm_start
                    ).probabilistic_labels[-images.shape[0] :]
        except Exception as error:  # noqa: BLE001 - a bad batch must not kill the worker
            self._m_batch_seconds.observe(
                time.perf_counter() - started, mode=self.mode, tenant=self.tenant
            )
            self._m_batches.inc(mode=self.mode, tenant=self.tenant)
            self._resolve(
                batch,
                [TicketStatus(ticket=s.ticket, state="failed", error=str(error)) for s in batch],
            )
            return
        self._m_batch_seconds.observe(
            time.perf_counter() - started, mode=self.mode, tenant=self.tenant
        )
        offset = 0
        statuses = []
        for submission, rows in zip(batch, sizes):
            statuses.append(
                TicketStatus(
                    ticket=submission.ticket,
                    state="done",
                    probabilistic_labels=labels[offset : offset + rows],
                )
            )
            offset += rows
        self._resolve(batch, statuses)
        self._n_batches += 1
        self._n_labeled += int(labels.shape[0])
        self._m_batches.inc(mode=self.mode, tenant=self.tenant)
        self._m_labeled.inc(int(labels.shape[0]), tenant=self.tenant)

    def _resolve(self, batch: list[_Submission], statuses: list[TicketStatus]) -> None:
        """Publish statuses, release the submitted pixels, expire old tickets."""
        now = time.monotonic()
        with self._cond:
            for submission, status in zip(batch, statuses):
                submission.status = status
                submission.images = None  # the corpus/state hold what is needed
                submission.resolved.set()
                self._resolved_order.append(submission.ticket)
                self._m_resolved.inc(state=status.state, tenant=self.tenant)
                if submission.submitted_at:
                    self._m_ticket_seconds.observe(now - submission.submitted_at, tenant=self.tenant)
            while len(self._resolved_order) > self.ticket_retention:
                self._tickets.pop(self._resolved_order.pop(0), None)
                self._m_expired.inc(tenant=self.tenant)
