"""Synthetic stand-ins for the two chest X-ray datasets.

* **TB-Xray** (Shenzhen Hospital set): normal lungs vs. manifestations
  of tuberculosis — typically *focal* findings (nodular opacities and
  cavities, predominantly in the upper lung zones).
* **PN-Xray** (pediatric pneumonia set): normal vs. pneumonia —
  typically *diffuse* findings (hazy consolidations in the mid/lower
  zones), which are subtler; the paper reports lower accuracy on
  PN-Xray than TB-Xray.

Both generators share a chest-radiograph renderer (dark background,
bright mediastinum/torso, dark lung fields, rib shadows, heart shadow,
film grain) and differ in the pathology overlay, mirroring the relative
difficulty of the two real datasets.
"""

from __future__ import annotations

import numpy as np

from repro.datasets._render import finish_image, new_canvas
from repro.datasets.base import LabeledImageDataset
from repro.utils.rng import spawn_rng
from repro.vision.draw import draw_line, fill_disk, fill_ellipse, fill_ring
from repro.vision.image import gaussian_blur
from repro.vision.texture import speckle, vignette

__all__ = ["make_tbxray", "make_pnxray"]


def _render_chest(size: int, rng: np.random.Generator) -> tuple[np.ndarray, dict]:
    """Render a normal chest radiograph; return canvas + lung geometry."""
    h = w = size
    canvas = new_canvas(1, h, w, fill=0.04)
    scale = size / 64.0
    cx = w / 2 + rng.uniform(-2, 2) * scale
    torso_cy = h * 0.55
    # Soft-tissue torso.
    fill_ellipse(canvas, torso_cy, cx, h * 0.46, w * 0.40, 0.42, opacity=0.95)
    # Mediastinum: bright central band.
    fill_ellipse(canvas, torso_cy, cx, h * 0.40, w * rng.uniform(0.07, 0.10), 0.62, opacity=0.9)
    # Lung fields: darker air-filled regions.
    lung_ry = h * rng.uniform(0.24, 0.28)
    lung_rx = w * rng.uniform(0.13, 0.16)
    lung_cy = h * rng.uniform(0.44, 0.50)
    lung_dx = w * rng.uniform(0.17, 0.21)
    lungs = {"cy": lung_cy, "dx": lung_dx, "cx": cx, "ry": lung_ry, "rx": lung_rx}
    for side in (-1, 1):
        fill_ellipse(
            canvas,
            lung_cy,
            cx + side * lung_dx,
            lung_ry,
            lung_rx,
            0.16,
            angle=side * rng.uniform(-0.05, 0.12),
            opacity=0.92,
        )
    # Rib shadows: faint bright near-horizontal arcs across the lungs.
    n_ribs = 5
    for i in range(n_ribs):
        y = lung_cy - lung_ry + (2 * lung_ry) * (i + 0.5) / n_ribs
        sag = rng.uniform(2.0, 4.5) * scale
        for side in (-1, 1):
            x0 = cx + side * (lung_dx - lung_rx)
            x1 = cx + side * (lung_dx + lung_rx)
            draw_line(canvas, y + sag, x0, y - sag, x1, 1.6 * scale, 0.34, opacity=0.45)
    # Heart shadow: bright blob at the lower-left lung border.
    fill_ellipse(
        canvas,
        torso_cy + h * 0.06,
        cx - w * 0.06,
        h * 0.12,
        w * 0.11,
        0.55,
        opacity=0.8,
    )
    # Clavicles.
    for side in (-1, 1):
        draw_line(
            canvas,
            h * 0.22,
            cx + side * w * 0.05,
            h * 0.18,
            cx + side * w * 0.32,
            1.8 * scale,
            0.5,
            opacity=0.5,
        )
    canvas[0] *= vignette(h, w, strength=rng.uniform(0.15, 0.3))
    return canvas, lungs


def _finish_xray(canvas: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    mono = finish_image(
        canvas,
        rng,
        brightness_range=(0.92, 1.08),
        blur_sigma_range=(0.1, 0.3),
        pixel_noise=0.02,
        grain=0.1,
    )
    return np.repeat(mono, 3, axis=0)


def _add_tb_findings(canvas: np.ndarray, lungs: dict, rng: np.random.Generator, severity: float) -> None:
    """Focal TB findings: clustered upper-zone nodules, occasionally a cavity.

    Real TB produces *many* nodular opacities that change the texture of
    entire upper lung zones; we render a dense cluster per affected side
    so the finding registers at feature-map resolution.
    """
    size = canvas.shape[1]
    scale = size / 64.0
    affected_sides = [-1, 1] if rng.random() < 0.5 else [(-1 if rng.random() < 0.5 else 1)]
    for side in affected_sides:
        n_nodules = rng.integers(6, 14)
        for _ in range(n_nodules):
            # Upper lung zone bias.
            y = lungs["cy"] - lungs["ry"] * rng.uniform(0.1, 0.9)
            x = lungs["cx"] + side * (lungs["dx"] + lungs["rx"] * rng.uniform(-0.75, 0.75))
            fill_disk(
                canvas, y, x, rng.uniform(1.2, 3.0) * scale, 0.58, opacity=severity * rng.uniform(0.55, 0.95)
            )
        if rng.random() < 0.4:
            y = lungs["cy"] - lungs["ry"] * rng.uniform(0.3, 0.7)
            x = lungs["cx"] + side * lungs["dx"]
            fill_ring(canvas, y, x, rng.uniform(3.0, 5.0) * scale, 1.4 * scale, 0.55, opacity=severity * 0.85)


def _add_pneumonia_findings(
    canvas: np.ndarray, lungs: dict, rng: np.random.Generator, severity: float
) -> None:
    """Diffuse pneumonia findings: interstitial infiltrates over the lungs.

    Pediatric pneumonia typically shows widespread hazy/patchy
    infiltrates rather than a single focal lesion; we brighten the lung
    interiors with a patchy texture field, stronger toward the bases.
    """
    size = canvas.shape[1]
    scale = size / 64.0
    affected_sides = [-1, 1] if rng.random() < 0.7 else [(-1 if rng.random() < 0.5 else 1)]
    overlay = new_canvas(1, size, size, fill=0.0)
    for side in affected_sides:
        # Patchy alveolar consolidations: many soft mid-size blobs
        # scattered over the mid/lower lung, denser toward the base.
        n_blobs = rng.integers(8, 16)
        for _ in range(n_blobs):
            # Basal bias: blobs concentrate in the lower two thirds.
            frac = np.sqrt(rng.random())
            y = lungs["cy"] - lungs["ry"] * (1 - 2 * frac) * 0.9
            x = lungs["cx"] + side * (lungs["dx"] + lungs["rx"] * rng.uniform(-0.8, 0.8))
            fill_disk(overlay, y, x, rng.uniform(2.0, 4.5) * scale, 1.0, opacity=rng.uniform(0.5, 1.0))
    hazy = gaussian_blur(overlay[None], sigma=0.8 * scale)[0]
    # Air bronchograms give consolidations a patchy texture, which is
    # what distinguishes them from a globally brighter exposure.
    patchiness = speckle(size, size, rng, grain=1.0, sigma=1.0 * scale)
    canvas += hazy * patchiness * severity * rng.uniform(0.35, 0.55)


def _make_xray_dataset(
    name: str,
    class_names: tuple[str, str],
    add_findings,
    n_per_class: int,
    image_size: int,
    seed: int,
    pair_seed: int,
    severity: float,
    confuser_rate: float,
) -> LabeledImageDataset:
    if n_per_class < 1:
        raise ValueError(f"n_per_class must be >= 1, got {n_per_class}")
    rng = spawn_rng(seed, f"{name}-render", pair_seed)
    images: list[np.ndarray] = []
    labels: list[int] = []
    for label in (0, 1):
        for _ in range(n_per_class):
            canvas, lungs = _render_chest(image_size, rng)
            if label == 1:
                add_findings(canvas, lungs, rng, severity)
            elif rng.random() < confuser_rate:
                # Normals occasionally show borderline shadows, making
                # the boundary fuzzy like in real radiographs.
                add_findings(canvas, lungs, rng, severity * 0.35)
            images.append(_finish_xray(canvas, rng))
            labels.append(label)
    order = spawn_rng(seed, f"{name}-shuffle", pair_seed).permutation(len(images))
    return LabeledImageDataset(
        name=name,
        images=np.stack(images)[order],
        labels=np.asarray(labels, dtype=np.int64)[order],
        class_names=class_names,
    )


def make_tbxray(
    n_per_class: int = 60,
    image_size: int = 64,
    seed: int = 0,
    pair_seed: int = 0,
    severity: float = 0.95,
    confuser_rate: float = 0.15,
) -> LabeledImageDataset:
    """Binary normal-vs-tuberculosis chest X-ray task (focal findings)."""
    return _make_xray_dataset(
        "tbxray",
        ("normal", "tuberculosis"),
        _add_tb_findings,
        n_per_class,
        image_size,
        seed,
        pair_seed,
        severity,
        confuser_rate,
    )


def make_pnxray(
    n_per_class: int = 60,
    image_size: int = 64,
    seed: int = 0,
    pair_seed: int = 0,
    severity: float = 1.4,
    confuser_rate: float = 0.35,
) -> LabeledImageDataset:
    """Binary normal-vs-pneumonia chest X-ray task (diffuse findings)."""
    return _make_xray_dataset(
        "pnxray",
        ("normal", "pneumonia"),
        _add_pneumonia_findings,
        n_per_class,
        image_size,
        seed,
        pair_seed,
        severity,
        confuser_rate,
    )
