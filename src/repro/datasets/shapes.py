"""Multi-class geometric shapes dataset (extension beyond the paper).

The paper evaluates binary tasks only, but nothing in affinity coding
is binary-specific: the hierarchical model, the Bernoulli ensemble, and
the assignment-problem mapping all support K classes.  This generator
provides a clean K-way task (coloured geometric shapes on textured
backgrounds) used by the multi-class integration tests and available to
library users who need more than two classes.
"""

from __future__ import annotations

import numpy as np

from repro.datasets._render import finish_image, jitter_colour, new_canvas
from repro.datasets.base import LabeledImageDataset
from repro.utils.rng import spawn_rng
from repro.vision.draw import fill_disk, fill_polygon, fill_rectangle
from repro.vision.texture import fractal_noise

__all__ = ["SHAPE_CLASSES", "make_shapes"]

# (name, colour); shapes cycle through disk/square/triangle/diamond.
SHAPE_CLASSES: tuple[tuple[str, tuple[float, float, float]], ...] = (
    ("red_disk", (0.85, 0.15, 0.12)),
    ("blue_square", (0.20, 0.35, 0.80)),
    ("yellow_triangle", (0.92, 0.82, 0.15)),
    ("green_diamond", (0.20, 0.60, 0.25)),
    ("white_disk", (0.95, 0.95, 0.95)),
    ("orange_square", (0.90, 0.55, 0.10)),
)


def _draw_shape(canvas: np.ndarray, kind: int, cy: float, cx: float, r: float, colour) -> None:
    if kind == 0:
        fill_disk(canvas, cy, cx, r, colour)
    elif kind == 1:
        fill_rectangle(canvas, cy - r, cx - r, cy + r, cx + r, colour)
    elif kind == 2:
        fill_polygon(canvas, np.array([[cy - r, cx], [cy + r, cx - r], [cy + r, cx + r]]), colour)
    else:
        fill_polygon(
            canvas,
            np.array([[cy - r, cx], [cy, cx + r], [cy + r, cx], [cy, cx - r]]),
            colour,
        )


def make_shapes(
    n_classes: int = 3,
    n_per_class: int = 30,
    image_size: int = 64,
    seed: int = 0,
    noise: float = 0.3,
) -> LabeledImageDataset:
    """Generate a K-way shape classification task.

    Args:
        n_classes: number of classes (2..6).
        n_per_class: images per class.
        image_size: square image side.
        seed: rendering seed.
        noise: background clutter strength in [0, 1].
    """
    if not 2 <= n_classes <= len(SHAPE_CLASSES):
        raise ValueError(f"n_classes must be in [2, {len(SHAPE_CLASSES)}], got {n_classes}")
    if n_per_class < 1:
        raise ValueError(f"n_per_class must be >= 1, got {n_per_class}")
    rng = spawn_rng(seed, "shapes-render")
    images: list[np.ndarray] = []
    labels: list[int] = []
    for label in range(n_classes):
        name, colour = SHAPE_CLASSES[label]
        for _ in range(n_per_class):
            h = w = image_size
            canvas = new_canvas(3, h, w)
            tint = rng.uniform(0.25, 0.5, size=3)
            background = fractal_noise(h, w, rng, octaves=3, base_cells=2)
            canvas[:] = tint[:, None, None] * (1.0 - noise + noise * background)[None]
            scale = image_size / 64.0
            _draw_shape(
                canvas,
                label % 4,
                h / 2 + rng.uniform(-8, 8) * scale,
                w / 2 + rng.uniform(-8, 8) * scale,
                rng.uniform(10, 16) * scale,
                jitter_colour(colour, rng),
            )
            images.append(
                finish_image(
                    canvas,
                    rng,
                    brightness_range=(0.85, 1.1),
                    blur_sigma_range=(0.0, 0.5),
                    pixel_noise=0.02 * (1 + noise),
                )
            )
            labels.append(label)
    order = spawn_rng(seed, "shapes-shuffle").permutation(len(images))
    return LabeledImageDataset(
        name=f"shapes(K={n_classes})",
        images=np.stack(images)[order],
        labels=np.asarray(labels, dtype=np.int64)[order],
        class_names=tuple(SHAPE_CLASSES[i][0] for i in range(n_classes)),
    )
