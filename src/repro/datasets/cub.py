"""Synthetic stand-in for the Caltech-UCSD Birds (CUB-200-2011) tasks.

The paper samples 10 random class-pairs from CUB's 200 species and
labels each pair as a binary task (§5.1.1).  CUB additionally provides
per-image binary attribute annotations ("white head", "grey wing", ...)
that the authors turn into Snorkel labeling functions (§5.1.2).

This generator renders cartoon birds over sky backgrounds.  A *species*
is a combination of part colours and markings drawn from a fixed
palette; a *class pair* (selected by ``pair_seed``) picks two distinct
species, mirroring the paper's random class-pairs.  Per-image attribute
annotations are derived from the species' true attribute vector with a
small flip rate, modelling imperfect human annotation and per-image
visibility.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets._render import finish_image, jitter_colour
from repro.datasets.base import LabeledImageDataset
from repro.utils.rng import spawn_rng
from repro.vision.draw import draw_line, fill_disk, fill_ellipse, fill_polygon
from repro.vision.texture import value_noise

__all__ = ["SPECIES_PALETTE", "make_cub", "cub_attribute_vocabulary"]

# Named colours used by species definitions and the attribute vocabulary.
_COLOURS: dict[str, tuple[float, float, float]] = {
    "red": (0.85, 0.15, 0.12),
    "yellow": (0.92, 0.82, 0.15),
    "blue": (0.20, 0.35, 0.80),
    "black": (0.08, 0.08, 0.08),
    "white": (0.95, 0.95, 0.95),
    "brown": (0.45, 0.30, 0.15),
    "grey": (0.55, 0.55, 0.55),
    "green": (0.20, 0.55, 0.25),
    "orange": (0.90, 0.55, 0.10),
}


@dataclass(frozen=True)
class Species:
    """A bird species: part colours plus binary markings."""

    name: str
    body: str
    head: str
    wing: str
    beak: str
    has_crest: bool
    has_wing_stripe: bool
    long_tail: bool


SPECIES_PALETTE: tuple[Species, ...] = (
    Species("cardinal", "red", "red", "black", "orange", True, False, True),
    Species("goldfinch", "yellow", "black", "black", "orange", False, True, False),
    Species("bluejay", "blue", "white", "blue", "black", True, True, True),
    Species("crow", "black", "black", "black", "black", False, False, True),
    Species("dove", "grey", "white", "grey", "orange", False, False, False),
    Species("robin", "brown", "grey", "brown", "yellow", False, False, False),
    Species("parakeet", "green", "yellow", "green", "orange", False, True, True),
    Species("oriole", "orange", "black", "black", "grey", False, True, False),
    Species("gull", "white", "white", "grey", "yellow", False, False, False),
    Species("bunting", "blue", "blue", "black", "grey", False, True, False),
    Species("tanager", "red", "red", "black", "grey", False, True, False),
    Species("magpie", "black", "white", "black", "black", False, True, True),
)


def cub_attribute_vocabulary() -> tuple[str, ...]:
    """The global attribute vocabulary (mirrors CUB's part::colour style)."""
    names: list[str] = []
    for part in ("body", "head", "wing", "beak"):
        for colour in _COLOURS:
            names.append(f"has_{part}::{colour}")
    names.extend(["has_crest", "has_wing_stripe", "has_long_tail"])
    return tuple(names)


def _species_attributes(species: Species) -> np.ndarray:
    """True binary attribute vector of a species under the vocabulary."""
    vocabulary = cub_attribute_vocabulary()
    values = np.zeros(len(vocabulary), dtype=np.int64)
    lookup = {name: i for i, name in enumerate(vocabulary)}
    for part in ("body", "head", "wing", "beak"):
        colour = getattr(species, part)
        values[lookup[f"has_{part}::{colour}"]] = 1
    values[lookup["has_crest"]] = int(species.has_crest)
    values[lookup["has_wing_stripe"]] = int(species.has_wing_stripe)
    values[lookup["has_long_tail"]] = int(species.long_tail)
    return values


def _render_bird(species: Species, size: int, rng: np.random.Generator) -> np.ndarray:
    """Render one bird image of ``species`` with pose/photometric nuisance."""
    h = w = size
    # Sky background: vertical gradient plus soft clouds.
    sky_top = np.array([0.45, 0.65, 0.92])
    sky_bottom = np.array([0.75, 0.85, 0.98])
    t = np.linspace(0.0, 1.0, h)[None, :, None]
    canvas = (sky_top[:, None, None] * (1 - t) + sky_bottom[:, None, None] * t) * np.ones((3, h, w))
    clouds = value_noise(h, w, cells=3, rng=rng)
    cloud_mask = np.clip(clouds - 0.55, 0.0, None) * 2.0
    canvas += cloud_mask[None] * 0.5
    np.clip(canvas, 0.0, 1.0, out=canvas)

    # Branch for the bird to perch on.
    branch_y = h * rng.uniform(0.78, 0.88)
    draw_line(canvas, branch_y, 0, branch_y + rng.uniform(-3, 3), w, 2.5, _COLOURS["brown"], opacity=0.9)

    scale = rng.uniform(0.85, 1.15) * size / 64.0
    cy = h * rng.uniform(0.45, 0.62)
    cx = w * rng.uniform(0.40, 0.60)
    facing = 1.0 if rng.random() < 0.5 else -1.0

    body_colour = jitter_colour(_COLOURS[species.body], rng)
    head_colour = jitter_colour(_COLOURS[species.head], rng)
    wing_colour = jitter_colour(_COLOURS[species.wing], rng)
    beak_colour = jitter_colour(_COLOURS[species.beak], rng)

    # Tail (drawn first so the body overlaps its base).
    tail_len = (16.0 if species.long_tail else 9.0) * scale
    tail_base_x = cx - facing * 11.0 * scale
    fill_polygon(
        canvas,
        np.array(
            [
                [cy - 2.5 * scale, tail_base_x],
                [cy + 2.5 * scale, tail_base_x],
                [cy + rng.uniform(2, 6) * scale, tail_base_x - facing * tail_len],
                [cy - rng.uniform(0, 4) * scale, tail_base_x - facing * tail_len],
            ]
        ),
        body_colour,
    )
    # Body.
    fill_ellipse(canvas, cy, cx, 8.5 * scale, 12.5 * scale, body_colour, angle=rng.uniform(-0.15, 0.15))
    # Wing on the body.
    fill_ellipse(
        canvas,
        cy - 1.0 * scale,
        cx - facing * 2.0 * scale,
        4.5 * scale,
        8.0 * scale,
        wing_colour,
        angle=facing * rng.uniform(0.15, 0.35),
    )
    if species.has_wing_stripe:
        stripe_colour = _COLOURS["white"] if species.wing != "white" else _COLOURS["black"]
        for offset in (-1.6, 1.6):
            draw_line(
                canvas,
                cy - 1.0 * scale + offset * scale,
                cx - facing * 8.0 * scale,
                cy - 1.0 * scale + offset * scale,
                cx + facing * 4.0 * scale,
                1.2 * scale,
                stripe_colour,
                opacity=0.9,
            )
    # Head.
    head_cy = cy - 8.0 * scale
    head_cx = cx + facing * 9.0 * scale
    fill_disk(canvas, head_cy, head_cx, 5.0 * scale, head_colour)
    if species.has_crest:
        fill_polygon(
            canvas,
            np.array(
                [
                    [head_cy - 3.0 * scale, head_cx - facing * 2.0 * scale],
                    [head_cy - 9.0 * scale, head_cx - facing * 1.0 * scale],
                    [head_cy - 3.5 * scale, head_cx + facing * 2.0 * scale],
                ]
            ),
            head_colour,
        )
    # Eye and beak.
    fill_disk(canvas, head_cy - 1.0 * scale, head_cx + facing * 1.8 * scale, 0.9 * scale, _COLOURS["black"])
    beak_tip_x = head_cx + facing * 9.0 * scale
    fill_polygon(
        canvas,
        np.array(
            [
                [head_cy - 1.2 * scale, head_cx + facing * 4.0 * scale],
                [head_cy + 1.2 * scale, head_cx + facing * 4.0 * scale],
                [head_cy, beak_tip_x],
            ]
        ),
        beak_colour,
    )
    # Legs.
    for leg_dx in (-3.0, 3.0):
        draw_line(
            canvas,
            cy + 7.0 * scale,
            cx + leg_dx * scale,
            branch_y,
            cx + leg_dx * scale + rng.uniform(-1, 1),
            1.0,
            _COLOURS["grey"],
        )

    return finish_image(
        canvas,
        rng,
        brightness_range=(0.9, 1.05),
        blur_sigma_range=(0.0, 0.5),
        pixel_noise=0.015,
    )


def make_cub(
    n_per_class: int = 60,
    image_size: int = 64,
    seed: int = 0,
    pair_seed: int = 0,
    attribute_flip_rate: float = 0.28,
) -> LabeledImageDataset:
    """Generate a binary CUB-style task for one random species pair.

    Args:
        n_per_class: images per class.
        image_size: square image side in pixels.
        seed: random seed for rendering / annotation noise.
        pair_seed: selects which two species form the class pair
            (the paper averages over 10 random pairs).
        attribute_flip_rate: probability that a per-image attribute
            annotation disagrees with the species' true attribute
            (real CUB per-image attribute labels disagree with the
            class-level majority at roughly this rate).
    """
    if n_per_class < 1:
        raise ValueError(f"n_per_class must be >= 1, got {n_per_class}")
    pair_rng = spawn_rng(pair_seed, "cub-pair")
    # Resample until the two species are visually distinct: they must
    # differ in at least two part colours, and the bodies must not both
    # be achromatic (bird species pairs in CUB are distinguished by
    # plumage colour; two dark monochrome birds would not represent the
    # paper's sampled tasks, where labeling accuracy averages ~98%).
    chromatic = {"red", "yellow", "blue", "green", "orange", "brown"}
    for _ in range(100):
        first, second = pair_rng.choice(len(SPECIES_PALETTE), size=2, replace=False)
        a, b = SPECIES_PALETTE[first], SPECIES_PALETTE[second]
        colour_diffs = sum(getattr(a, part) != getattr(b, part) for part in ("body", "head", "wing", "beak"))
        bodies_distinct = a.body != b.body and (a.body in chromatic or b.body in chromatic)
        if colour_diffs >= 2 and bodies_distinct:
            break
    species_pair = (SPECIES_PALETTE[first], SPECIES_PALETTE[second])

    rng = spawn_rng(seed, "cub-render", pair_seed)
    vocabulary = cub_attribute_vocabulary()
    class_attributes = np.stack([_species_attributes(s) for s in species_pair])

    images: list[np.ndarray] = []
    labels: list[int] = []
    attributes: list[np.ndarray] = []
    for label, species in enumerate(species_pair):
        true_attrs = class_attributes[label]
        for _ in range(n_per_class):
            images.append(_render_bird(species, image_size, rng))
            labels.append(label)
            flips = rng.random(true_attrs.size) < attribute_flip_rate
            attributes.append(np.where(flips, 1 - true_attrs, true_attrs))

    order = spawn_rng(seed, "cub-shuffle", pair_seed).permutation(len(images))
    return LabeledImageDataset(
        name=f"cub(pair={species_pair[0].name}|{species_pair[1].name})",
        images=np.stack(images)[order],
        labels=np.asarray(labels, dtype=np.int64)[order],
        class_names=(species_pair[0].name, species_pair[1].name),
        attributes=np.stack(attributes)[order],
        attribute_names=vocabulary,
        class_attributes=class_attributes,
    )
