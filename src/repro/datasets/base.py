"""Dataset container and split/dev-set utilities.

The GOGGLES evaluation protocol (§5.1) needs, per dataset: a train split
whose *labels are hidden* (the system must produce them), a held-out
test split for end-model evaluation, and a tiny labeled development set
(default 5 images per class) drawn from the train split.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.utils.rng import spawn_rng
from repro.utils.validation import check_images, check_labels

__all__ = ["LabeledImageDataset", "DevSet"]


@dataclass(frozen=True)
class DevSet:
    """A small labeled development set: indices into a dataset plus labels."""

    indices: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.indices.shape != self.labels.shape:
            raise ValueError(
                f"indices and labels must align, got {self.indices.shape} vs {self.labels.shape}"
            )

    @property
    def size(self) -> int:
        return int(self.indices.size)

    def per_class_counts(self, n_classes: int) -> np.ndarray:
        return np.bincount(self.labels, minlength=n_classes)


@dataclass(frozen=True)
class LabeledImageDataset:
    """An image classification dataset with optional attribute metadata.

    Attributes:
        name: dataset identifier (e.g. ``"cub"``).
        images: ``(N, C, H, W)`` float array in [0, 1].
        labels: ``(N,)`` int ground-truth labels (hidden from GOGGLES;
            used only for the dev set and for evaluation).
        class_names: human-readable class names, length K.
        attributes: optional ``(N, A)`` binary per-image annotations
            (the CUB generator emits these; they feed Snorkel's LFs).
        attribute_names: names for the A attribute columns.
        class_attributes: optional ``(K, A)`` binary class-level table
            ("class A has white head" — §5.1.2).
    """

    name: str
    images: np.ndarray
    labels: np.ndarray
    class_names: tuple[str, ...]
    attributes: np.ndarray | None = None
    attribute_names: tuple[str, ...] = field(default_factory=tuple)
    class_attributes: np.ndarray | None = None

    def __post_init__(self) -> None:
        images = check_images(self.images)
        labels = check_labels(self.labels, n_classes=len(self.class_names))
        if images.shape[0] != labels.shape[0]:
            raise ValueError(f"images ({images.shape[0]}) and labels ({labels.shape[0]}) disagree on N")
        if self.attributes is not None:
            if self.attributes.shape[0] != images.shape[0]:
                raise ValueError("attributes must have one row per image")
            if self.class_attributes is not None and (
                self.class_attributes.shape != (len(self.class_names), self.attributes.shape[1])
            ):
                raise ValueError(
                    "class_attributes must be (n_classes, n_attributes), got "
                    f"{self.class_attributes.shape}"
                )
        object.__setattr__(self, "images", images)
        object.__setattr__(self, "labels", labels)

    # ------------------------------------------------------------------
    @property
    def n_examples(self) -> int:
        return int(self.images.shape[0])

    @property
    def n_classes(self) -> int:
        return len(self.class_names)

    @property
    def image_shape(self) -> tuple[int, int, int]:
        return tuple(self.images.shape[1:])  # type: ignore[return-value]

    def subset(self, indices: np.ndarray, name_suffix: str = "") -> "LabeledImageDataset":
        """A new dataset restricted to ``indices`` (order preserved)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            raise ValueError("cannot take an empty subset")
        if indices.min() < 0 or indices.max() >= self.n_examples:
            raise ValueError("subset indices out of range")
        return replace(
            self,
            name=self.name + name_suffix,
            images=self.images[indices],
            labels=self.labels[indices],
            attributes=None if self.attributes is None else self.attributes[indices],
        )

    def split(
        self, train_fraction: float = 0.6, seed: int | np.random.Generator = 0
    ) -> tuple["LabeledImageDataset", "LabeledImageDataset"]:
        """Stratified train/test split (per-class proportional)."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
        rng = spawn_rng(seed, "split", self.name)
        train_idx: list[np.ndarray] = []
        test_idx: list[np.ndarray] = []
        for k in range(self.n_classes):
            members = np.flatnonzero(self.labels == k)
            members = rng.permutation(members)
            n_train = max(1, int(round(train_fraction * members.size)))
            n_train = min(n_train, members.size - 1) if members.size > 1 else 1
            train_idx.append(members[:n_train])
            test_idx.append(members[n_train:])
        train = np.sort(np.concatenate(train_idx))
        test = np.sort(np.concatenate([t for t in test_idx if t.size]))
        if test.size == 0:
            raise ValueError("split produced an empty test set; use more examples")
        return self.subset(train, ":train"), self.subset(test, ":test")

    def sample_dev_set(self, per_class: int, seed: int | np.random.Generator = 0) -> DevSet:
        """Sample ``per_class`` labeled examples per class (§5.1.1).

        The paper uses "5 label annotations arbitrarily chosen from each
        class".  ``per_class=0`` returns an empty dev set (used by the
        Figure 8 sweep, where the mapping falls back to identity).
        """
        if per_class < 0:
            raise ValueError(f"per_class must be >= 0, got {per_class}")
        if per_class == 0:
            empty = np.empty(0, dtype=np.int64)
            return DevSet(indices=empty, labels=empty)
        rng = spawn_rng(seed, "dev-set", self.name)
        chosen: list[np.ndarray] = []
        for k in range(self.n_classes):
            members = np.flatnonzero(self.labels == k)
            if members.size < per_class:
                raise ValueError(
                    f"class {k} has only {members.size} examples, need {per_class} for the dev set"
                )
            chosen.append(rng.choice(members, size=per_class, replace=False))
        indices = np.concatenate(chosen)
        return DevSet(indices=indices, labels=self.labels[indices])

    def class_counts(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.n_classes)
