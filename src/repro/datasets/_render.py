"""Shared rendering helpers for the synthetic dataset generators."""

from __future__ import annotations

import numpy as np

from repro.vision.image import clip01, gaussian_blur
from repro.vision.texture import speckle

__all__ = ["new_canvas", "finish_image", "jitter_colour"]


def new_canvas(channels: int, height: int, width: int, fill: float | np.ndarray = 0.0) -> np.ndarray:
    """Create a ``(C, H, W)`` canvas filled with a scalar or per-channel colour."""
    canvas = np.empty((channels, height, width), dtype=np.float64)
    fill_arr = np.asarray(fill, dtype=np.float64).reshape(-1)
    if fill_arr.size == 1:
        canvas[:] = fill_arr[0]
    elif fill_arr.size == channels:
        canvas[:] = fill_arr[:, None, None]
    else:
        raise ValueError(f"fill must be scalar or length-{channels}, got {fill_arr.size}")
    return canvas


def finish_image(
    canvas: np.ndarray,
    rng: np.random.Generator,
    *,
    brightness_range: tuple[float, float] = (1.0, 1.0),
    blur_sigma_range: tuple[float, float] = (0.0, 0.0),
    pixel_noise: float = 0.0,
    grain: float = 0.0,
) -> np.ndarray:
    """Apply shared photometric nuisance: brightness, blur, noise, grain."""
    lo, hi = brightness_range
    if lo > hi:
        raise ValueError(f"brightness_range must be (lo <= hi), got {brightness_range}")
    image = canvas * rng.uniform(lo, hi)
    sigma = rng.uniform(*blur_sigma_range)
    if sigma > 1e-3:
        image = gaussian_blur(image[None], sigma)[0]
    if grain > 0:
        image = image * speckle(image.shape[1], image.shape[2], rng, grain=grain)
    if pixel_noise > 0:
        image = image + rng.normal(0.0, pixel_noise, size=image.shape)
    return clip01(image)


def jitter_colour(colour: np.ndarray | tuple, rng: np.random.Generator, amount: float = 0.05) -> np.ndarray:
    """Perturb an RGB colour by uniform noise, staying in [0, 1]."""
    base = np.asarray(colour, dtype=np.float64)
    return np.clip(base + rng.uniform(-amount, amount, size=base.shape), 0.0, 1.0)
