"""Synthetic stand-in for the German Traffic Sign Recognition Benchmark.

The paper samples 10 random class-pairs from GTSRB's 43 sign classes
(§5.1.1) and reports markedly lower labeling accuracy (~70%) than on
CUB.  GTSRB classes span several *sign families* — prohibition signs
(white disc, red ring), mandatory signs (blue disc, white glyph),
warning triangles, the stop octagon, end-of-restriction signs — and a
random pair may differ a lot (red octagon vs. blue disc) or very little
(two prohibition signs with different glyphs), which is exactly why the
per-pair accuracy varies and averages out mid-range.

This generator reproduces that structure: a *class* is a (sign family,
glyph) combination; ``pair_seed`` samples two distinct classes.
Nuisance includes brightness changes, blur, size variation, background
clutter, and partial occlusion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets._render import finish_image, new_canvas
from repro.datasets.base import LabeledImageDataset
from repro.utils.rng import spawn_rng
from repro.vision.draw import draw_line, fill_disk, fill_polygon, fill_rectangle, fill_ring
from repro.vision.texture import fractal_noise

__all__ = ["SIGN_CLASSES", "make_gtsrb"]

_RED = (0.75, 0.10, 0.10)
_BLUE = (0.15, 0.30, 0.70)
_WHITE = (0.95, 0.95, 0.95)
_BLACK = (0.10, 0.10, 0.10)


def _glyph_bar(canvas, cy, cx, r, colour):
    draw_line(canvas, cy - 0.55 * r, cx, cy + 0.55 * r, cx, 0.24 * r, colour)


def _glyph_slash(canvas, cy, cx, r, colour):
    draw_line(canvas, cy - 0.5 * r, cx + 0.5 * r, cy + 0.5 * r, cx - 0.5 * r, 0.24 * r, colour)


def _glyph_cross(canvas, cy, cx, r, colour):
    draw_line(canvas, cy - 0.5 * r, cx, cy + 0.5 * r, cx, 0.2 * r, colour)
    draw_line(canvas, cy, cx - 0.5 * r, cy, cx + 0.5 * r, 0.2 * r, colour)


def _glyph_dot(canvas, cy, cx, r, colour):
    fill_disk(canvas, cy, cx, 0.35 * r, colour)


def _glyph_hbar(canvas, cy, cx, r, colour):
    draw_line(canvas, cy, cx - 0.55 * r, cy, cx + 0.55 * r, 0.24 * r, colour)


def _glyph_chevron(canvas, cy, cx, r, colour):
    draw_line(canvas, cy + 0.35 * r, cx - 0.45 * r, cy - 0.35 * r, cx, 0.2 * r, colour)
    draw_line(canvas, cy - 0.35 * r, cx, cy + 0.35 * r, cx + 0.45 * r, 0.2 * r, colour)


def _glyph_ring(canvas, cy, cx, r, colour):
    fill_ring(canvas, cy, cx, 0.35 * r, 0.18 * r, colour)


def _glyph_double_bar(canvas, cy, cx, r, colour):
    draw_line(canvas, cy - 0.5 * r, cx - 0.25 * r, cy + 0.5 * r, cx - 0.25 * r, 0.17 * r, colour)
    draw_line(canvas, cy - 0.5 * r, cx + 0.25 * r, cy + 0.5 * r, cx + 0.25 * r, 0.17 * r, colour)


@dataclass(frozen=True)
class SignClass:
    """One traffic-sign class: a sign family plus an inner glyph."""

    name: str
    family: str  # "prohibition" | "mandatory" | "warning" | "stop" | "end"
    glyph: object


SIGN_CLASSES: tuple[SignClass, ...] = (
    SignClass("no_entry", "prohibition", _glyph_hbar),
    SignClass("no_overtake", "prohibition", _glyph_double_bar),
    SignClass("limit_bar", "prohibition", _glyph_bar),
    SignClass("no_stopping", "prohibition", _glyph_cross),
    SignClass("ahead_only", "mandatory", _glyph_bar),
    SignClass("roundabout", "mandatory", _glyph_ring),
    SignClass("keep_right", "mandatory", _glyph_chevron),
    SignClass("caution", "warning", _glyph_bar),
    SignClass("stop", "stop", _glyph_hbar),
    SignClass("end_restriction", "end", _glyph_slash),
)


def _draw_sign_face(canvas: np.ndarray, sign: SignClass, cy: float, cx: float, r: float) -> None:
    """Draw the family-specific plate and the class glyph."""
    if sign.family == "prohibition":
        fill_disk(canvas, cy, cx, r, _WHITE)
        fill_ring(canvas, cy, cx, r * 0.91, 0.18 * r, _RED)
        sign.glyph(canvas, cy, cx, r * 0.95, _BLACK)
    elif sign.family == "mandatory":
        fill_disk(canvas, cy, cx, r, _BLUE)
        sign.glyph(canvas, cy, cx, r * 0.95, _WHITE)
    elif sign.family == "warning":
        vertices = np.array([[cy - r, cx], [cy + 0.8 * r, cx - 0.95 * r], [cy + 0.8 * r, cx + 0.95 * r]])
        fill_polygon(canvas, vertices, _WHITE)
        # Red border drawn as three edges.
        border = 0.16 * r
        draw_line(canvas, cy - r, cx, cy + 0.8 * r, cx - 0.95 * r, border, _RED)
        draw_line(canvas, cy - r, cx, cy + 0.8 * r, cx + 0.95 * r, border, _RED)
        draw_line(canvas, cy + 0.8 * r, cx - 0.95 * r, cy + 0.8 * r, cx + 0.95 * r, border, _RED)
        sign.glyph(canvas, cy + 0.15 * r, cx, r * 0.6, _BLACK)
    elif sign.family == "stop":
        angles = np.pi / 8 + np.linspace(0, 2 * np.pi, 8, endpoint=False)
        vertices = np.stack([cy + r * np.sin(angles), cx + r * np.cos(angles)], axis=1)
        fill_polygon(canvas, vertices, _RED)
        sign.glyph(canvas, cy, cx, r * 0.8, _WHITE)
    elif sign.family == "end":
        fill_disk(canvas, cy, cx, r, _WHITE)
        fill_ring(canvas, cy, cx, r * 0.91, 0.1 * r, (0.4, 0.4, 0.4))
        sign.glyph(canvas, cy, cx, r * 0.95, _BLACK)
        # Extra thin parallel stripes characteristic of "end of limits".
        draw_line(canvas, cy - 0.55 * r, cx + 0.2 * r, cy + 0.45 * r, cx - 0.8 * r, 0.08 * r, _BLACK)
    else:  # pragma: no cover - guarded by the fixed class list
        raise ValueError(f"unknown sign family {sign.family!r}")


def _render_sign(
    sign: SignClass, size: int, rng: np.random.Generator, occlusion: float, blur_max: float
) -> np.ndarray:
    h = w = size
    # Street background: tinted fractal clutter plus building-ish blocks.
    tint = rng.uniform(0.35, 0.6, size=3)
    noise = fractal_noise(h, w, rng, octaves=3, base_cells=2)
    canvas = new_canvas(3, h, w)
    canvas[:] = tint[:, None, None] * (0.65 + 0.35 * noise)[None]
    for _ in range(rng.integers(1, 3)):
        top, left = rng.uniform(0, h, size=2)
        fill_rectangle(
            canvas,
            top,
            left,
            top + rng.uniform(8, 24),
            left + rng.uniform(8, 24),
            rng.uniform(0.3, 0.65, size=3),
            opacity=0.45,
        )

    scale = size / 64.0
    r = rng.uniform(16.0, 24.0) * scale
    cy = h / 2 + rng.uniform(-5, 5) * scale
    cx = w / 2 + rng.uniform(-5, 5) * scale
    # Pole.
    draw_line(canvas, cy, cx, h, cx + rng.uniform(-2, 2), 2.0 * scale, (0.35, 0.35, 0.38))
    _draw_sign_face(canvas, sign, cy, cx, r)
    # Partial occlusion by a foreground strip (branch, post, sticker).
    if rng.random() < occlusion:
        oc_w = rng.uniform(0.15, 0.4) * r
        angle = rng.uniform(0, np.pi)
        oy, ox = np.sin(angle), np.cos(angle)
        draw_line(
            canvas,
            cy - oy * 1.5 * r + rng.uniform(-r, r) * ox,
            cx - ox * 1.5 * r - rng.uniform(-r, r) * oy,
            cy + oy * 1.5 * r + rng.uniform(-r, r) * ox,
            cx + ox * 1.5 * r - rng.uniform(-r, r) * oy,
            oc_w,
            rng.uniform(0.15, 0.6, size=3),
        )
    return finish_image(
        canvas,
        rng,
        brightness_range=(0.6, 1.05),
        blur_sigma_range=(0.0, blur_max),
        pixel_noise=0.03,
        grain=0.12,
    )


def make_gtsrb(
    n_per_class: int = 60,
    image_size: int = 64,
    seed: int = 0,
    pair_seed: int = 0,
    occlusion: float = 0.6,
    blur_max: float = 0.8,
) -> LabeledImageDataset:
    """Generate a binary GTSRB-style task for one random sign-class pair.

    ``pair_seed`` selects the two sign classes; ``occlusion`` (the
    probability a sign is partially occluded) and ``blur_max`` (worst
    motion/defocus blur sigma) are the difficulty knobs.
    """
    if n_per_class < 1:
        raise ValueError(f"n_per_class must be >= 1, got {n_per_class}")
    pair_rng = spawn_rng(pair_seed, "gtsrb-pair")
    first, second = pair_rng.choice(len(SIGN_CLASSES), size=2, replace=False)
    pair = (SIGN_CLASSES[first], SIGN_CLASSES[second])

    rng = spawn_rng(seed, "gtsrb-render", pair_seed)
    images: list[np.ndarray] = []
    labels: list[int] = []
    for label, sign in enumerate(pair):
        for _ in range(n_per_class):
            images.append(_render_sign(sign, image_size, rng, occlusion, blur_max))
            labels.append(label)

    order = spawn_rng(seed, "gtsrb-shuffle", pair_seed).permutation(len(images))
    return LabeledImageDataset(
        name=f"gtsrb(pair={pair[0].name}|{pair[1].name})",
        images=np.stack(images)[order],
        labels=np.asarray(labels, dtype=np.int64)[order],
        class_names=(pair[0].name, pair[1].name),
    )
