"""Dataset registry: name -> generator, mirroring the paper's five tasks."""

from __future__ import annotations

from collections.abc import Callable

from repro.datasets.base import LabeledImageDataset
from repro.datasets.cub import make_cub
from repro.datasets.gtsrb import make_gtsrb
from repro.datasets.surface import make_surface
from repro.datasets.xray import make_pnxray, make_tbxray

__all__ = ["DATASET_NAMES", "make_dataset"]

_GENERATORS: dict[str, Callable[..., LabeledImageDataset]] = {
    "cub": make_cub,
    "gtsrb": make_gtsrb,
    "surface": make_surface,
    "tbxray": make_tbxray,
    "pnxray": make_pnxray,
}

# Ordered as in the paper's Table 1 (by domain overlap with ImageNet).
DATASET_NAMES: tuple[str, ...] = ("cub", "gtsrb", "surface", "tbxray", "pnxray")


def make_dataset(
    name: str,
    n_per_class: int = 60,
    image_size: int = 64,
    seed: int = 0,
    pair_seed: int = 0,
    **kwargs,
) -> LabeledImageDataset:
    """Instantiate one of the five benchmark datasets by name.

    ``pair_seed`` selects the class pair for the multi-class source
    datasets (CUB species, GTSRB glyphs); additional keyword arguments
    are forwarded to the specific generator (difficulty knobs).
    """
    key = name.lower()
    if key not in _GENERATORS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(_GENERATORS)}")
    return _GENERATORS[key](
        n_per_class=n_per_class, image_size=image_size, seed=seed, pair_seed=pair_seed, **kwargs
    )
