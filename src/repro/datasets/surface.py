"""Synthetic stand-in for the surface-finish inspection dataset.

The original dataset (Louhichi, 2019) contains photographs of machined
metallic parts labeled "good" (smooth finish) or "bad" (rough finish);
the two classes "look very similar to the untrained eye" (§5.1.1).

This generator renders brushed-metal patches.  Both classes share the
base appearance (grey tone, brushing grating, uneven illumination); the
"bad" class adds high-frequency speckle, scratches, and pits whose
strength is the difficulty knob.
"""

from __future__ import annotations

import numpy as np

from repro.datasets._render import finish_image, new_canvas
from repro.datasets.base import LabeledImageDataset
from repro.utils.rng import spawn_rng
from repro.vision.draw import draw_line, fill_disk
from repro.vision.texture import fractal_noise, grating, speckle

__all__ = ["make_surface"]


def _render_surface(rough: bool, size: int, rng: np.random.Generator, roughness: float) -> np.ndarray:
    h = w = size
    base = rng.uniform(0.45, 0.68)
    canvas = new_canvas(1, h, w, fill=base)

    # Brushing: a fine near-horizontal grating, present in both classes.
    angle = rng.uniform(-0.12, 0.12)
    wavelength = rng.uniform(2.5, 5.0)
    brush = grating(h, w, wavelength, angle, phase=rng.uniform(0, 2 * np.pi))
    canvas[0] += 0.05 * (brush - 0.5)

    # Uneven illumination shared by both classes.
    lighting = fractal_noise(h, w, rng, octaves=2, base_cells=2)
    canvas[0] *= 0.88 + 0.24 * lighting

    if rough:
        # High-frequency machining speckle.
        canvas[0] *= speckle(h, w, rng, grain=roughness)
        # Scratch/pit prominence scales with the defect level, so
        # borderline parts are genuinely borderline.
        prominence = float(np.clip(roughness / 0.5, 0.2, 1.0))
        n_scratches = max(1, int(rng.integers(3, 9) * prominence))
        for _ in range(n_scratches):
            y0, x0 = rng.uniform(0, h), rng.uniform(0, w)
            length = rng.uniform(6, 22)
            theta = rng.uniform(0, np.pi)
            shade = base + rng.choice([-1.0, 1.0]) * rng.uniform(0.15, 0.3) * prominence
            draw_line(
                canvas,
                y0,
                x0,
                y0 + length * np.sin(theta),
                x0 + length * np.cos(theta),
                rng.uniform(0.8, 1.6),
                float(np.clip(shade, 0.0, 1.0)),
                opacity=0.8 * prominence,
            )
        # Pits: small dark craters.
        for _ in range(rng.integers(1, 5)):
            fill_disk(
                canvas,
                rng.uniform(0, h),
                rng.uniform(0, w),
                rng.uniform(0.8, 2.0),
                float(np.clip(base - 0.25 * prominence, 0.0, 1.0)),
                opacity=0.85 * prominence,
            )
    else:
        # Smooth finish still has faint fine grain.
        canvas[0] *= speckle(h, w, rng, grain=0.25 * roughness)

    mono = finish_image(
        canvas,
        rng,
        brightness_range=(0.9, 1.08),
        blur_sigma_range=(0.0, 0.4),
        pixel_noise=0.01,
    )
    return np.repeat(mono, 3, axis=0)


def make_surface(
    n_per_class: int = 60,
    image_size: int = 64,
    seed: int = 0,
    pair_seed: int = 0,
    roughness: float = 0.5,
    ambiguity: float = 0.17,
) -> LabeledImageDataset:
    """Generate the binary good/bad surface-finish task.

    ``pair_seed`` only reseeds the renderer (the task has a single fixed
    class pair, like the original dataset); ``roughness`` scales the
    defect strength of the "bad" class; ``ambiguity`` is the fraction of
    borderline parts — bad parts with only mild defects and good parts
    with incipient ones — which "look very similar to the untrained
    eye" (§5.1.1) and bound the achievable accuracy.
    """
    if n_per_class < 1:
        raise ValueError(f"n_per_class must be >= 1, got {n_per_class}")
    if not 0.0 <= ambiguity <= 1.0:
        raise ValueError(f"ambiguity must be in [0, 1], got {ambiguity}")
    rng = spawn_rng(seed, "surface-render", pair_seed)
    images: list[np.ndarray] = []
    labels: list[int] = []
    for label, rough in enumerate((False, True)):
        for _ in range(n_per_class):
            strength = roughness
            if rng.random() < ambiguity:
                # Borderline part: defect level near the class boundary.
                strength = roughness * (0.45 if rough else 1.6)
            images.append(_render_surface(rough, image_size, rng, strength))
            labels.append(label)
    order = spawn_rng(seed, "surface-shuffle", pair_seed).permutation(len(images))
    return LabeledImageDataset(
        name="surface",
        images=np.stack(images)[order],
        labels=np.asarray(labels, dtype=np.int64)[order],
        class_names=("good", "bad"),
    )
