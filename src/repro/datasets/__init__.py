"""Synthetic stand-ins for the paper's five image-labeling datasets.

Each generator reproduces the *structure* of its real counterpart
(class-conditional visual features, nuisance variation, metadata
availability) so every code path of GOGGLES and its baselines is
exercised; see DESIGN.md for the substitution rationale.
"""

from repro.datasets.base import DevSet, LabeledImageDataset
from repro.datasets.cub import make_cub
from repro.datasets.gtsrb import make_gtsrb
from repro.datasets.registry import DATASET_NAMES, make_dataset
from repro.datasets.shapes import make_shapes
from repro.datasets.surface import make_surface
from repro.datasets.xray import make_pnxray, make_tbxray

__all__ = [
    "DevSet",
    "LabeledImageDataset",
    "make_cub",
    "make_gtsrb",
    "make_shapes",
    "make_surface",
    "make_tbxray",
    "make_pnxray",
    "make_dataset",
    "DATASET_NAMES",
]
