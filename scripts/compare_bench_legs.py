#!/usr/bin/env python
"""Cross-interpreter benchmark leg comparison: flags must agree.

The ``tests`` matrix job uploads one ``BENCH-inference-py3.x`` artifact
per interpreter, each holding that leg's ``BENCH_inference.json``.  The
``compare-legs`` job downloads them side by side and runs this script,
which enforces one invariant and prints one report:

* **equality-flag agreement** — every boolean metric
  (``posterior_agreement_ok``, ``labels_exact``, ``bit_identical``,
  ...) must hold the *same* value on every interpreter.  The numeric
  pipeline is supposed to be bit-identical across 3.10/3.11/3.12; a
  flag that is true on one interpreter and false on another means the
  divergence is interpreter-dependent — the worst kind of correctness
  bug, invisible to any single-leg gate.
* **merged latency table** — every ``*_seconds`` metric printed with
  all legs side by side.  Informational only: absolute timings differ
  across interpreters and runners, so no wall-clock bound applies
  here (that is ``check_bench.py``'s job, per leg).

Usage (CI downloads artifacts into ``<dir>/BENCH-inference-py3.x/``)::

    python scripts/compare_bench_legs.py --root bench-legs \
        --pattern 'BENCH-inference-py*' \
        --file BENCH_inference.json --file BENCH_serving.json

``--file`` repeats: every named trajectory found inside a leg's
artifact directory is merged into that leg (keys prefixed with the
file's stem, so ``BENCH_serving.json``'s ``smoke`` section compares as
``BENCH_serving:smoke...``).  A file missing from *every* leg is
skipped; present on some legs but not others, its flags count as
divergences like any other missing flag.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def flatten(node: object, path: str, out: dict[str, object]) -> None:
    """Flatten a JSON tree into ``{dotted.path[i]: scalar}``."""
    if isinstance(node, dict):
        for key in sorted(node):
            flatten(node[key], f"{path}.{key}" if path else key, out)
    elif isinstance(node, list):
        for index, item in enumerate(node):
            flatten(item, f"{path}[{index}]", out)
    else:
        out[path] = node


def load_legs(root: Path, pattern: str, file_names: list[str]) -> dict[str, dict[str, object]]:
    """``{leg label: flattened trajectories}`` for every matching artifact dir.

    With several ``file_names``, each file's flattened keys are prefixed
    with its stem (``BENCH_serving:smoke...``) so trajectories merge
    without colliding; a leg joins the comparison when it holds at
    least one of the named files.
    """
    legs: dict[str, dict[str, object]] = {}
    for artifact_dir in sorted(root.glob(pattern)):
        label = artifact_dir.name.rsplit("-", 1)[-1]  # BENCH-inference-py3.12 -> py3.12
        flat: dict[str, object] = {}
        for file_name in file_names:
            trajectory = artifact_dir / file_name
            if not trajectory.is_file():
                continue
            prefix = "" if len(file_names) == 1 else f"{Path(file_name).stem}:"
            scoped: dict[str, object] = {}
            flatten(json.loads(trajectory.read_text()), "", scoped)
            flat.update({f"{prefix}{key}": value for key, value in scoped.items()})
        if flat:
            legs[label] = flat
    return legs


def flag_divergences(legs: dict[str, dict[str, object]]) -> list[str]:
    """Boolean metrics that do not agree across every leg."""
    issues: list[str] = []
    paths = sorted({p for flat in legs.values() for p in flat if isinstance(flat[p], bool)})
    for path in paths:
        values = {label: flat.get(path) for label, flat in legs.items()}
        if len({json.dumps(v) for v in values.values()}) > 1:
            rendered = ", ".join(f"{label}={json.dumps(v)}" for label, v in sorted(values.items()))
            issues.append(f"{path}: equality flag diverges across interpreters ({rendered})")
    return issues


def latency_table(legs: dict[str, dict[str, object]]) -> str:
    """Merged ``*_seconds`` table, one column per interpreter leg."""
    labels = sorted(legs)
    paths = sorted(
        {
            p
            for flat in legs.values()
            for p in flat
            if p.rsplit(".", 1)[-1].endswith("_seconds")
            and isinstance(flat[p], (int, float))
            and not isinstance(flat[p], bool)
        }
    )
    if not paths:
        return "(no *_seconds metrics found)"
    width = max(len(p) for p in paths)
    lines = ["  ".join([f"{'metric':<{width}}"] + [f"{label:>10}" for label in labels])]
    for path in paths:
        cells = []
        for label in labels:
            value = legs[label].get(path)
            cells.append(f"{value:10.4f}" if isinstance(value, (int, float)) else f"{'—':>10}")
        lines.append("  ".join([f"{path:<{width}}"] + cells))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=Path, default=Path("."),
        help="directory the per-interpreter artifacts were downloaded into",
    )
    parser.add_argument(
        "--pattern", default="BENCH-inference-py*",
        help="glob matching one artifact directory per interpreter leg",
    )
    parser.add_argument(
        "--file", action="append", dest="file_names", default=None,
        help="trajectory file name inside each artifact directory; repeatable "
        "(default: BENCH_inference.json)",
    )
    parser.add_argument(
        "--min-legs", type=int, default=2,
        help="fail when fewer legs are found (a missing artifact must not "
        "silently shrink the comparison to a self-agreement; default 2)",
    )
    args = parser.parse_args(argv)
    file_names = args.file_names or ["BENCH_inference.json"]

    legs = load_legs(args.root, args.pattern, file_names)
    print(f"legs: {', '.join(sorted(legs)) or '(none)'}")
    if len(legs) < args.min_legs:
        print(
            f"\ncompare-legs: only {len(legs)} leg(s) matched "
            f"{args.pattern!r}/{'|'.join(file_names)} under {args.root} "
            f"(need >= {args.min_legs})"
        )
        return 1

    print("\nmerged latency table (informational):")
    print(latency_table(legs))

    issues = flag_divergences(legs)
    if issues:
        print(f"\ncompare-legs: {len(issues)} equality-flag divergence(s)")
        for issue in issues:
            print(f"    {issue}")
        return 1
    print("\ncompare-legs: all equality flags agree across interpreters")
    return 0


if __name__ == "__main__":
    sys.exit(main())
