#!/usr/bin/env python
"""Benchmark regression gate: freshly emitted trajectories vs baselines.

CI snapshots the *committed* repo-root ``BENCH_*.json`` trajectories
before the benchmark steps overwrite them, then runs this gate on the
pair.  Two classes of change fail the build:

* **wall-clock regression** — any ``*_seconds`` metric that grew by
  more than ``--max-regression`` (default 25%) over its baseline.
  Getting *faster* is always fine.  Metrics whose baseline is below
  ``--min-seconds`` (default 0.5s) are exempt from the wall-clock
  check: sub-second single-round timings are dominated by runner
  jitter, and a gate that flakes gets deleted — the bound bites on the
  multi-second cluster/pipeline metrics where a real regression shows.
  When the benchmark environment changes (new runner class, new
  BLAS), refresh the committed baselines from a green run's uploaded
  ``BENCH-trajectories`` artifact rather than from a laptop.
* **equality flag flip** — any boolean metric (``bit_identical``,
  ``features_bit_identical``, ...) that was ``true`` in the baseline
  and is no longer.  These flags encode the distributed runtime's
  bit-identity acceptance contract; a flip means correctness, not
  performance, regressed.  Flips from ``false`` to ``true`` are
  improvements and pass.
* **lost crossover** — a ``crossover_n`` entry (smallest N where the
  warm distributed path beats serial, per worker count) that was a
  measured N in the baseline and is ``null`` in the fresh run:
  distributed stopped winning everywhere, which is a regression even
  when no individual timing tripped the wall-clock bound.
* **speedup-ratio regression** — a ``speedup`` metric (e.g. the
  sparse-vs-dense ratio in the ``sparse`` section) that fell more than
  ``--max-regression`` below its baseline.  Ratios are jitter-robust
  (numerator and denominator ride the same runner), so no
  ``--min-seconds`` floor applies; growing is always fine.
* **tail-latency regression** — any ``*_p99_seconds`` metric (the
  serving load benchmark's tail percentiles) that grew by more than
  ``--max-regression``.  Tail latencies are legitimate sub-second
  signal, so they get their own much lower ``--min-latency-seconds``
  floor (default 0.05) instead of the generic ``--min-seconds`` one.
* **shed-rate increase** — a ``shed_rate`` metric (fraction of
  submissions shed with 429 at a fixed offered load) that rose more
  than ``--max-shed-increase`` (absolute, default 0.10) above its
  baseline: the service started refusing work it used to absorb.

The ``telemetry`` section of ``BENCH_distributed.json`` (cluster-wide
telemetry reconciliation) is gated by the rules above without any
bespoke code: its ``reconciled`` flag — worker-shipped completion
counters summing exactly to the coordinator's completed-shard count —
is a correctness contract covered by the equality-flip rule, and its
``shard_queue_wait_p99_seconds`` tail is covered by the
``*_p99_seconds`` rule with the ``--min-latency-seconds`` floor.

Structure is compared recursively; a fresh file may *add* keys or rows
(new metrics, new worker counts), but dropping a baseline key or row
fails — silently shrinking coverage must look like a regression, not a
pass.  Other scalars (shard counts, iteration counts) are informational
and ignored: they legitimately change as the planner evolves.

Usage::

    python scripts/check_bench.py --baseline .bench-baseline --fresh . \
        BENCH_inference.json BENCH_distributed.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def compare(
    baseline: object,
    fresh: object,
    path: str,
    max_regression: float,
    min_seconds: float,
    min_latency_seconds: float = 0.05,
    max_shed_increase: float = 0.10,
) -> list[str]:
    """All gate violations between one baseline/fresh subtree pair."""

    def recurse(base_node: object, fresh_node: object, sub_path: str) -> list[str]:
        return compare(
            base_node, fresh_node, sub_path,
            max_regression, min_seconds, min_latency_seconds, max_shed_increase,
        )

    issues: list[str] = []
    if isinstance(baseline, dict):
        if not isinstance(fresh, dict):
            return [f"{path}: baseline is a mapping, fresh is {type(fresh).__name__}"]
        for key, value in baseline.items():
            if key not in fresh:
                issues.append(f"{path}.{key}: present in baseline, missing from fresh run")
            else:
                issues.extend(recurse(value, fresh[key], f"{path}.{key}"))
        return issues
    if isinstance(baseline, list):
        if not isinstance(fresh, list):
            return [f"{path}: baseline is a list, fresh is {type(fresh).__name__}"]
        if len(fresh) < len(baseline):
            issues.append(f"{path}: coverage shrank from {len(baseline)} to {len(fresh)} rows")
        for index, (base_row, fresh_row) in enumerate(zip(baseline, fresh)):
            issues.extend(recurse(base_row, fresh_row, f"{path}[{index}]"))
        return issues
    # bool before int/float: Python booleans are ints.
    if isinstance(baseline, bool):
        if baseline and not fresh:
            issues.append(
                f"{path}: equality flag flipped true -> {json.dumps(fresh)} "
                "(bit-identity contract broken)"
            )
        return issues
    if ".crossover_n" in path and baseline is not None and fresh is None:
        # A measured serial->distributed crossover that vanishes means
        # distributed stopped winning at every swept N — a perf
        # regression even if no single *_seconds metric tripped.
        issues.append(
            f"{path}: serial->distributed crossover disappeared "
            f"(was N={json.dumps(baseline)}, now null)"
        )
        return issues
    key = path.rsplit(".", 1)[-1]
    if isinstance(baseline, (int, float)) and key.endswith("_p99_seconds"):
        # Tail latency first: the generic _seconds rule's jitter floor
        # (0.5s) would exempt almost every real serving percentile.
        if not isinstance(fresh, (int, float)) or isinstance(fresh, bool):
            return [f"{path}: baseline is a number, fresh is {json.dumps(fresh)}"]
        if baseline < min_latency_seconds:
            return issues
        limit = baseline * (1.0 + max_regression)
        if fresh > limit:
            issues.append(
                f"{path}: p99 latency regressed {baseline:.4f}s -> {fresh:.4f}s "
                f"(+{100.0 * (fresh - baseline) / baseline:.1f}%, "
                f"limit +{100.0 * max_regression:.0f}%)"
            )
        return issues
    if isinstance(baseline, (int, float)) and key == "shed_rate":
        if not isinstance(fresh, (int, float)) or isinstance(fresh, bool):
            return [f"{path}: baseline is a number, fresh is {json.dumps(fresh)}"]
        limit = baseline + max_shed_increase
        if fresh > limit:
            issues.append(
                f"{path}: shed rate rose {baseline:.3f} -> {fresh:.3f} at the same "
                f"offered load (limit +{max_shed_increase:.2f} absolute)"
            )
        return issues
    if isinstance(baseline, (int, float)) and key.endswith("_seconds"):
        if not isinstance(fresh, (int, float)) or isinstance(fresh, bool):
            return [f"{path}: baseline is a number, fresh is {json.dumps(fresh)}"]
        if baseline < min_seconds:
            return issues  # sub-floor timings are runner jitter, not signal
        limit = baseline * (1.0 + max_regression)
        if fresh > limit:
            issues.append(
                f"{path}: wall clock regressed {baseline:.4f}s -> {fresh:.4f}s "
                f"(+{100.0 * (fresh - baseline) / baseline:.1f}%, "
                f"limit +{100.0 * max_regression:.0f}%)"
            )
        return issues
    if isinstance(baseline, (int, float)) and (key == "speedup" or key.endswith("_speedup")):
        if not isinstance(fresh, (int, float)) or isinstance(fresh, bool):
            return [f"{path}: baseline is a number, fresh is {json.dumps(fresh)}"]
        floor = baseline * (1.0 - max_regression)
        if fresh < floor:
            issues.append(
                f"{path}: speedup ratio regressed {baseline:.3f}x -> {fresh:.3f}x "
                f"(-{100.0 * (baseline - fresh) / baseline:.1f}%, "
                f"limit -{100.0 * max_regression:.0f}%)"
            )
        return issues
    return issues


def check_file(
    name: str,
    baseline_dir: Path,
    fresh_dir: Path,
    max_regression: float,
    min_seconds: float,
    min_latency_seconds: float = 0.05,
    max_shed_increase: float = 0.10,
) -> list[str]:
    baseline_path = baseline_dir / name
    fresh_path = fresh_dir / name
    if not baseline_path.exists():
        return [f"{name}: no committed baseline at {baseline_path}"]
    if not fresh_path.exists():
        return [f"{name}: benchmark step emitted no fresh trajectory at {fresh_path}"]
    try:
        baseline = json.loads(baseline_path.read_text())
    except ValueError as error:
        return [f"{name}: baseline is not valid JSON ({error})"]
    try:
        fresh = json.loads(fresh_path.read_text())
    except ValueError as error:
        return [f"{name}: fresh trajectory is not valid JSON ({error})"]
    return compare(
        baseline, fresh, name,
        max_regression, min_seconds, min_latency_seconds, max_shed_increase,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="trajectory file names present in both directories")
    parser.add_argument(
        "--baseline", type=Path, required=True,
        help="directory holding the committed baseline trajectories",
    )
    parser.add_argument(
        "--fresh", type=Path, default=Path("."),
        help="directory holding the freshly emitted trajectories (default: .)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.25,
        help="tolerated fractional wall-clock growth per metric (default 0.25)",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=0.5,
        help="baselines below this are exempt from the wall-clock check "
        "(sub-second single-round timings are runner jitter; default 0.5)",
    )
    parser.add_argument(
        "--min-latency-seconds", type=float, default=0.05,
        help="*_p99_seconds baselines below this are exempt from the tail-latency "
        "check (default 0.05)",
    )
    parser.add_argument(
        "--max-shed-increase", type=float, default=0.10,
        help="tolerated absolute shed_rate growth at the same offered load (default 0.10)",
    )
    args = parser.parse_args(argv)
    if args.max_regression < 0:
        parser.error(f"--max-regression must be >= 0, got {args.max_regression}")
    if args.max_shed_increase < 0:
        parser.error(f"--max-shed-increase must be >= 0, got {args.max_shed_increase}")

    failures: list[str] = []
    for name in args.files:
        issues = check_file(
            name, args.baseline, args.fresh, args.max_regression, args.min_seconds,
            args.min_latency_seconds, args.max_shed_increase,
        )
        status = "FAIL" if issues else "ok"
        print(f"[{status}] {name}")
        for issue in issues:
            print(f"    {issue}")
        failures.extend(issues)
    if failures:
        print(f"\nbenchmark gate: {len(failures)} violation(s)")
        return 1
    print("\nbenchmark gate: all trajectories within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
