#!/usr/bin/env python
"""Distributed soak: a 4-worker cluster under lease-expiry crash injection.

Runs the full labeling pipeline through ``executor="distributed"`` for
several rounds while a chaos thread repeatedly *steals leases*: it
leases shards from the coordinator's queue under a fake worker identity
and never reports back, so every stolen shard must be recovered by the
queue's deadline machinery (the existing ``lease_timeout`` /
``max_attempts`` knobs — no special test hooks).  Every round asserts
the distributed result is still **bit-identical** to a serial reference
run, and the run fails loudly if no lease was ever reassigned (i.e. the
chaos did not actually bite).

All rounds share one :class:`~repro.obs.MetricsRegistry`, so the
telemetry shipped over the wire by the spawned process workers
accumulates across rounds; the soak asserts the merged per-worker
``goggles_worker_shards_completed_total`` series stay **monotone
non-decreasing** round over round even while chaos steals leases
(lost frames lose their completions too — totals may lag, never
regress), and ``--metrics-dump PATH`` appends each round's merged
registry exposition to a file CI uploads as an artifact.

This is the scheduled (cron) CI soak job — deliberately outside the
PR-blocking path, with its log uploaded as an artifact.  Locally::

    PYTHONPATH=src python scripts/soak_distributed.py --workers 4 --rounds 3
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

import numpy as np

from repro.core import Goggles, GogglesConfig
from repro.datasets import make_dataset
from repro.distributed import Coordinator, DistributedConfig
from repro.nn.vgg import VGG16, VGGConfig
from repro.obs import MetricsRegistry


class LeaseThief(threading.Thread):
    """Chaos agent: leases shards under a doomed identity, never reports.

    Every theft forces the shard through the full crash-recovery path —
    the lease expires after ``lease_timeout`` and the queue requeues it
    for a live worker.  Throttled so the retry budget (``max_attempts``)
    is never exhausted by chaos alone.
    """

    def __init__(self, coordinator: Coordinator, interval: float):
        super().__init__(name="lease-thief", daemon=True)
        self.coordinator = coordinator
        self.interval = interval
        self.thefts = 0
        self._halt = threading.Event()

    def stop(self) -> None:
        self._halt.set()

    def run(self) -> None:
        while not self._halt.is_set():
            task = self.coordinator.queue.lease(f"doomed-{self.thefts}")
            if task is not None:
                self.thefts += 1
            self._halt.wait(self.interval)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4, help="spawned worker processes")
    parser.add_argument("--rounds", type=int, default=3, help="labeling rounds to soak")
    parser.add_argument("--n-per-class", type=int, default=24, help="corpus scale per round")
    parser.add_argument(
        "--lease-timeout",
        type=float,
        default=2.0,
        help="seconds before a stolen/stuck lease is reassigned (the knob under test)",
    )
    parser.add_argument(
        "--theft-interval",
        type=float,
        default=1.0,
        help="seconds between lease thefts by the chaos thread",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=6,
        help="retry budget per shard (headroom for chaos-induced expiries)",
    )
    parser.add_argument(
        "--metrics-dump",
        default=None,
        metavar="PATH",
        help="append each round's merged registry (Prometheus text) to this file "
        "(CI uploads it as an artifact)",
    )
    args = parser.parse_args(argv)

    print(
        f"soak: {args.workers} workers, {args.rounds} rounds, "
        f"n_per_class={args.n_per_class}, lease_timeout={args.lease_timeout}s, "
        f"theft every {args.theft_interval}s"
    )
    model = VGG16(VGGConfig(seed=0))
    # One registry across every round: worker-shipped telemetry merges
    # into it cumulatively, so per-worker counters must only ever grow.
    registry = MetricsRegistry()
    previous_worker_totals: dict[tuple[str, ...], float] = {}
    total_thefts = 0
    total_requeued = 0
    for round_index in range(args.rounds):
        dataset = make_dataset("surface", n_per_class=args.n_per_class, seed=round_index)
        dev = dataset.sample_dev_set(5, seed=round_index)
        serial = Goggles(
            GogglesConfig(n_classes=2, seed=0, executor="serial"), model=model
        ).label(dataset.images, dev)

        coordinator = Coordinator(
            DistributedConfig(
                n_workers=args.workers,
                lease_timeout=args.lease_timeout,
                max_attempts=args.max_attempts,
                run_timeout=900.0,
            ),
            registry=registry,
        )
        thief = LeaseThief(coordinator, interval=args.theft_interval)
        start = time.perf_counter()
        with Goggles(
            GogglesConfig(n_classes=2, seed=0, executor="distributed"),
            model=model,
            coordinator=coordinator,
        ) as goggles:
            thief.start()
            try:
                distributed = goggles.label(dataset.images, dev)
            finally:
                thief.stop()
                thief.join(timeout=10.0)
            elapsed = time.perf_counter() - start
            stats = coordinator.queue.stats()

        affinity_ok = np.array_equal(distributed.affinity.values, serial.affinity.values)
        labels_ok = np.array_equal(distributed.probabilistic_labels, serial.probabilistic_labels)
        total_thefts += thief.thefts
        total_requeued += stats["requeued"]
        print(
            f"round {round_index}: {elapsed:.1f}s, {stats['completed']} shards "
            f"completed, {thief.thefts} leases stolen, {stats['requeued']} requeued, "
            f"{stats['poisoned']} poisoned — affinity bit-identical: {affinity_ok}, "
            f"labels bit-identical: {labels_ok}"
        )
        if not (affinity_ok and labels_ok):
            print("FAIL: distributed result diverged from serial under crash injection")
            return 1
        if stats["poisoned"]:
            print("FAIL: chaos exhausted a shard's retry budget (tune knobs)")
            return 1

        if args.metrics_dump:
            with open(args.metrics_dump, "a", encoding="utf-8") as dump:
                dump.write(f"# soak round {round_index}\n{registry.render()}\n")
        workers = registry.get("goggles_worker_shards_completed_total")
        worker_totals = dict(workers.series()) if workers is not None else {}
        for key, value in previous_worker_totals.items():
            if worker_totals.get(key, 0.0) < value:
                print(
                    f"FAIL: worker-shipped counter regressed for {key}: "
                    f"{value} -> {worker_totals.get(key, 0.0)} (counters must be "
                    "monotone across rounds even under chaos)"
                )
                return 1
        shipped = int(sum(worker_totals.values()))
        print(
            f"round {round_index}: merged worker-shipped completions now {shipped} "
            f"across {len(worker_totals)} worker series (monotone ok)"
        )
        previous_worker_totals = worker_totals

    if total_thefts == 0 or total_requeued == 0:
        print(
            f"FAIL: chaos never bit (thefts={total_thefts}, requeued={total_requeued}) "
            "— the soak exercised nothing; lower --theft-interval"
        )
        return 1
    print(
        f"soak passed: {args.rounds} rounds bit-identical under {total_thefts} stolen "
        f"leases ({total_requeued} deadline-recovered requeues)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
