"""Table 1: labeling accuracy of GOGGLES vs all baselines on 5 datasets.

Paper reference (Table 1): GOGGLES averages 81.76% and beats Snuba
(58.88%) by ~23 points; GMM is the best clustering baseline (76.35%);
prototype affinities beat HOG (69.30%) and Logits (70.71%).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.harness import run_table1
from repro.eval.paper import TABLE1_METHODS, TABLE1_PAPER
from repro.eval.tables import format_comparison_table


@pytest.mark.benchmark(group="table1")
def test_table1_labeling_accuracy(benchmark, settings, record_result):
    table = benchmark.pedantic(lambda: run_table1(settings), rounds=1, iterations=1)
    record_result(
        format_comparison_table(
            table, TABLE1_PAPER, TABLE1_METHODS, "Table 1: labeling accuracy (%) on the train split"
        )
    )

    def mean_of(method: str) -> float:
        values = [row[method] for row in table.values() if row.get(method) is not None]
        return float(np.mean(values))

    # Shape checks mirroring the paper's headline claims.
    goggles = mean_of("goggles")
    assert goggles - mean_of("snuba") > 10, "GOGGLES should beat Snuba by a wide margin"
    assert goggles > mean_of("hog"), "prototype affinities should beat HOG on average"
    assert goggles > mean_of("logits"), "prototype affinities should beat Logits on average"
    # The clustering baselines receive the ORACLE cluster-to-class
    # mapping (§5.1.6) while GOGGLES must infer it from 10 dev labels
    # and occasionally flips (§4.4); allow that asymmetry a small slack.
    assert goggles >= mean_of("spectral") - 3, "GOGGLES should match spectral co-clustering"
    assert goggles >= mean_of("kmeans") - 3, "GOGGLES should match k-means"
    assert 65 <= goggles <= 100, "GOGGLES average should be in the paper's band"
