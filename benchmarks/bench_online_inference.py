"""Online absorb vs full warm refit: throughput and the accuracy contract.

The online subsystem claims (a) ``OnlineSession.absorb`` is O(batch)
per step — its wall-clock tracks the batch, not the corpus, so per-row
throughput stays roughly flat as N grows while a full refit's cost
grows with N — and (b) the online posteriors match a full warm-started
refit on the shapes corpora at ≥99% posterior agreement (1 − mean
total variation) with *exact* hard-label agreement.  This benchmark
enforces both at N ∈ {2·n_per_class, 4·n_per_class} (80 and 160 at the
default protocol scale) and merges an ``online`` section into the
``BENCH_inference.json`` trajectory the regression gate snapshots.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from bench_distributed import update_trajectory
from bench_incremental_inference import JSON_PATH

from repro.core import Goggles, GogglesConfig
from repro.core.inference.hierarchical import HierarchicalConfig
from repro.core.inference.mapping import apply_mapping, map_clusters_to_classes
from repro.datasets.base import DevSet
from repro.datasets.shapes import make_shapes
from repro.engine import InferenceEngine
from repro.eval.harness import shared_model
from repro.online import OnlineConfig, OnlineSession
from repro.utils.rng import derive_seed

MIN_POSTERIOR_AGREEMENT = 0.99  # documented online-vs-refit contract (ENGINE.md)
STREAM_BATCH = 4


def _dev_from_seed(labels: np.ndarray, n0: int, per_class: int, n_classes: int) -> DevSet:
    """A dev set drawn from the seed prefix only (shapes are shuffled,
    so ``sample_dev_set`` could pick indices beyond the seed corpus)."""
    rng = np.random.default_rng(derive_seed(0, "bench-online-dev"))
    chosen: list[int] = []
    for c in range(n_classes):
        pool = np.flatnonzero(labels[:n0] == c)
        assert pool.size >= per_class, f"seed corpus holds too few images of class {c}"
        chosen.extend(rng.choice(pool, size=per_class, replace=False).tolist())
    indices = np.array(sorted(chosen))
    return DevSet(indices=indices, labels=labels[indices])


@pytest.mark.benchmark(group="inference")
def test_online_absorb_vs_full_refit(benchmark, settings, record_result):
    model = shared_model(settings)
    rows: list[dict] = []

    def measure() -> list[dict]:
        rows.clear()
        for n_per_class in (settings.n_per_class, 2 * settings.n_per_class):
            dataset = make_shapes(n_classes=2, n_per_class=n_per_class, image_size=64, seed=0)
            n = dataset.n_examples
            arrivals = max(8, n // 5)
            n0 = n - arrivals
            dev = _dev_from_seed(dataset.labels, n0, settings.dev_per_class, 2)
            config = GogglesConfig(n_classes=2, seed=0, n_jobs=settings.n_jobs)

            # --- online path: seed fit, then absorb the arrivals in
            # stream batches.  Affinity rows are prebuilt once so the
            # timed loop isolates the O(batch·d) inference step (the
            # quantity the refit comparison is about).
            goggles = Goggles(config, model=model)
            seed_result = goggles.label(dataset.images[:n0], dev)
            session = OnlineSession(
                goggles, dev, seed_result, OnlineConfig(drift_threshold=100.0, refit_every=0)
            )
            extended_state = goggles.engine.source.extend_state(
                goggles.engine.state, dataset.images[n0:], goggles.engine._runtime()
            )
            online_labels: list[np.ndarray] = []
            absorb_s = 0.0
            n_steps = 0
            for b0 in range(0, arrivals, STREAM_BATCH):
                b1 = min(b0 + STREAM_BATCH, arrivals)
                blocks = [
                    np.array(extended_state.affinity.block(f)[n0 + b0 : n0 + b1, :n0], copy=True)
                    for f in range(session.alpha)
                ]
                start = time.perf_counter()
                online_labels.append(session.absorb_rows(blocks))
                absorb_s += time.perf_counter() - start
                n_steps += 1
            online = np.concatenate(online_labels, axis=0)

            # --- reference path: the same arrivals through a full
            # warm-started refit over the extended N×N matrix.
            reference = Goggles(config, model=model)
            reference.label(dataset.images[:n0], dev)
            warm_state = reference.inference.state
            extended = reference.engine.extend(dataset.images[n0:])
            hier = HierarchicalConfig(n_classes=2, seed=0)
            start = time.perf_counter()
            refit = InferenceEngine(hier, executor="serial").fit(extended, warm_start=warm_state)
            refit_s = time.perf_counter() - start
            mapping = map_clusters_to_classes(refit.posterior, dev, 2)
            refit_labels = apply_mapping(refit.posterior, mapping)[n0:]

            total_variation = 0.5 * np.abs(online - refit_labels).sum(axis=1)
            agreement = float(1.0 - total_variation.mean())
            labels_exact = bool((online.argmax(axis=1) == refit_labels.argmax(axis=1)).all())
            absorb_step_s = absorb_s / n_steps
            assert labels_exact, "online hard labels must match the full warm refit exactly"
            assert agreement >= MIN_POSTERIOR_AGREEMENT, (
                f"online posterior agreement {agreement:.4f} below the "
                f"{MIN_POSTERIOR_AGREEMENT:.0%} contract at N={n}"
            )
            assert absorb_step_s < refit_s, (
                f"an O(batch) absorb step ({absorb_step_s:.4f}s) must beat a full "
                f"warm refit ({refit_s:.4f}s) at N={n}"
            )
            rows.append(
                {
                    "n": n,
                    "n_arrivals": arrivals,
                    "stream_batch": STREAM_BATCH,
                    "absorb_total_seconds": round(absorb_s, 4),
                    "absorb_step_seconds": round(absorb_step_s, 4),
                    "absorb_rows_per_second": round(arrivals / absorb_s, 1),
                    "refit_seconds": round(refit_s, 4),
                    "posterior_agreement": round(agreement, 6),
                    "posterior_agreement_ok": True,
                    "labels_exact": labels_exact,
                }
            )
        return rows

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    update_trajectory(JSON_PATH, "online", measured)

    lines = []
    for row in measured:
        lines.append(
            f"N={row['n']} (+{row['n_arrivals']} arrivals in batches of "
            f"{row['stream_batch']}): absorb {row['absorb_step_seconds']:.4f}s/step "
            f"({row['absorb_rows_per_second']:.0f} rows/s) vs full warm refit "
            f"{row['refit_seconds']:.4f}s; posterior agreement "
            f"{row['posterior_agreement']:.4f}, labels exact"
        )
    throughputs = [row["absorb_rows_per_second"] for row in measured]
    lines.append(
        f"absorb throughput across N: {' vs '.join(f'{t:.0f}' for t in throughputs)} rows/s "
        "(flat = O(batch) per step)"
    )
    lines.append(f"trajectory artifact: {JSON_PATH.name} (section 'online')")
    record_result("Online absorb vs full warm refit\n" + "\n".join(lines))
