"""Table 2: end-model test accuracy trained on each system's labels.

Paper reference (Table 2): upper bound 89.14% > GOGGLES 82.03% >
FSL 77.23% > Snuba 60.60% on average; GOGGLES lands within ~7 points of
the fully supervised bound while using only 5 labels per class.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.harness import run_table2
from repro.eval.paper import TABLE2_METHODS, TABLE2_PAPER
from repro.eval.tables import format_comparison_table


@pytest.mark.benchmark(group="table2")
def test_table2_endmodel_accuracy(benchmark, settings, record_result):
    table = benchmark.pedantic(lambda: run_table2(settings), rounds=1, iterations=1)
    record_result(
        format_comparison_table(
            table, TABLE2_PAPER, TABLE2_METHODS, "Table 2: end-model accuracy (%) on the held-out test split"
        )
    )

    def mean_of(method: str) -> float:
        values = [row[method] for row in table.values() if row.get(method) is not None]
        return float(np.mean(values))

    upper = mean_of("upper_bound")
    goggles = mean_of("goggles")
    assert upper >= goggles, "supervision should upper-bound GOGGLES-trained end models"
    assert goggles > mean_of("snuba"), "GOGGLES end models should beat Snuba end models"
    assert upper - goggles < 25, "GOGGLES should stay within striking distance of the bound"
