"""Sparse top-k affinity vs dense: wall clock, peak memory, agreement.

The sparse path stores each affinity function block as uniform-row CSR
(top-k per row plus a per-row fill value) in float32 and densifies
blocks lazily — optionally through memory-mapped files so N can exceed
RAM.  Its acceptance contract (ENGINE.md) is accuracy-first: posterior
agreement ≥ 99% and *exact* label agreement with the dense float64
path, alongside a measured peak-memory reduction and wall-clock
speedup.  This benchmark checks the contract at N ∈ {2·n_per_class,
4·n_per_class} (80 and 160 at the default protocol scale) and writes a
``sparse`` section into ``BENCH_inference.json`` for the CI regression
gate (``scripts/check_bench.py`` fails the build if an agreement flag
flips or the speedup ratio shrinks by more than 25%).

Two memory numbers are recorded.  Whole-run peak heap comes from
:mod:`tracemalloc` (NumPy registers its allocations with it; a
portable peak-RSS proxy needing no extra dependency) — informational,
because at benchmark scale it is dominated by the backbone's pooled
feature maps, which both modes pay identically.  The *gated* reduction
is the affinity-resident footprint: the α·N² term the sparse path
shrinks to α·N·k CSR (and off-loads to file-backed memmaps), which is
what remains resident through inference and what grows quadratically
with corpus size.
"""

from __future__ import annotations

import time
import tracemalloc
from pathlib import Path

import numpy as np
import pytest
from bench_distributed import update_trajectory

from repro.core import Goggles, GogglesConfig
from repro.datasets import make_dataset
from repro.eval.harness import shared_model

# Trajectory artifacts live at the repo root so the BENCH_*.json series
# is tracked in one place across PRs (not buried under benchmarks/).
JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_inference.json"
MIN_POSTERIOR_AGREEMENT = 0.99  # documented sparse-path contract (ENGINE.md)


def _affinity_bytes(affinity) -> int:
    """Resident bytes of the affinity coding (dense values or CSR arrays)."""
    if hasattr(affinity, "values"):
        return affinity.values.nbytes
    return affinity.data.nbytes + affinity.indices.nbytes + affinity.fill.nbytes


def _run(config: GogglesConfig, model, images, dev):
    """One traced run for the heap peak, then an untraced timed run.

    tracemalloc taxes every allocation, and not uniformly across code
    paths — timing under it would distort the dense/sparse ratio — so
    the peak comes from a separate traced pass (which doubles as
    warmup) and the wall clock from a clean one.
    """
    tracemalloc.start()
    try:
        Goggles(config, model=model).label(images, dev)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    goggles = Goggles(config, model=model)
    start = time.perf_counter()
    result = goggles.label(images, dev)
    elapsed = time.perf_counter() - start
    return result, elapsed, peak


@pytest.mark.benchmark(group="inference")
def test_sparse_affinity_vs_dense(benchmark, settings, record_result):
    model = shared_model(settings)
    rows: list[dict] = []

    def measure() -> list[dict]:
        rows.clear()
        for n_per_class in (settings.n_per_class, 2 * settings.n_per_class):
            dataset = make_dataset("surface", n_per_class=n_per_class, seed=0)
            dev = dataset.sample_dev_set(settings.dev_per_class, seed=0)
            # keep_corpus_state off for both modes: the sparse path is
            # build-only, so the dense run must not carry corpus state
            # the sparse run cannot.
            base = dict(n_classes=2, seed=0, n_jobs=settings.n_jobs, keep_corpus_state=False)
            dense_result, dense_s, dense_peak = _run(
                GogglesConfig(**base), model, dataset.images, dev
            )
            sparse_result, sparse_s, sparse_peak = _run(
                GogglesConfig(**base, affinity_mode="sparse", memmap=True),
                model, dataset.images, dev,
            )

            # Posterior agreement: 1 − mean total-variation distance.
            dense_p = dense_result.probabilistic_labels.astype(np.float64)
            sparse_p = sparse_result.probabilistic_labels.astype(np.float64)
            agreement = float(1.0 - 0.5 * np.abs(dense_p - sparse_p).sum(axis=1).mean())
            labels_exact = bool(
                np.array_equal(dense_result.predictions, sparse_result.predictions)
            )
            agreement_ok = agreement >= MIN_POSTERIOR_AGREEMENT
            assert agreement_ok, (
                f"sparse posterior agreement {agreement:.6f} below the "
                f"{MIN_POSTERIOR_AGREEMENT:.0%} contract at N={dataset.n_examples}"
            )
            assert labels_exact, f"sparse labels diverged from dense at N={dataset.n_examples}"
            dense_bytes = _affinity_bytes(dense_result.affinity)
            sparse_bytes = _affinity_bytes(sparse_result.affinity)
            assert sparse_bytes < dense_bytes, (
                f"sparse coding must shrink the affinity footprint at N={dataset.n_examples} "
                f"({sparse_bytes / 2**20:.2f} MiB vs {dense_bytes / 2**20:.2f} MiB)"
            )
            rows.append(
                {
                    "n": dataset.n_examples,
                    "top_k": sparse_result.affinity.top_k,
                    "dense_seconds": round(dense_s, 4),
                    "sparse_seconds": round(sparse_s, 4),
                    "speedup": round(dense_s / sparse_s, 4),
                    "dense_affinity_mb": round(dense_bytes / 2**20, 3),
                    "sparse_affinity_mb": round(sparse_bytes / 2**20, 3),
                    "memory_ratio": round(sparse_bytes / dense_bytes, 4),
                    "dense_peak_mb": round(dense_peak / 2**20, 2),
                    "sparse_peak_mb": round(sparse_peak / 2**20, 2),
                    "posterior_agreement": round(agreement, 6),
                    "posterior_agreement_ok": agreement_ok,
                    "labels_exact": labels_exact,
                }
            )
        return rows

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    # Merge: BENCH_inference.json is shared with the other inference
    # benchmarks, so this one only rewrites its own "sparse" section.
    update_trajectory(JSON_PATH, "sparse", measured)

    lines = []
    for row in measured:
        lines.append(
            f"N={row['n']} (top_k={row['top_k']}): dense {row['dense_seconds']:.3f}s"
            f"/{row['dense_affinity_mb']:.2f} MiB affinity, sparse {row['sparse_seconds']:.3f}s"
            f"/{row['sparse_affinity_mb']:.2f} MiB ({row['speedup']:.2f}x, "
            f"{100 * (1 - row['memory_ratio']):.0f}% smaller affinity footprint), "
            f"posterior agreement {row['posterior_agreement']:.4%}, "
            f"labels {'exact' if row['labels_exact'] else 'DIVERGED'}"
        )
    record_result(
        "Sparse top-k affinity vs dense (accuracy contract + cost)\n"
        + "\n".join(lines)
        + f"\ntrajectory artifact: {JSON_PATH.name}"
    )
