"""Incremental inference: cold refit vs warm start vs process pool.

The staged inference engine claims (a) warm-started incremental
labeling beats a cold refit — fewer total EM iterations on the same
extended matrix — while agreeing within the ENGINE.md tolerance, and
(b) the process executor is value-neutral.  This benchmark checks both
at N ∈ {2·n_per_class, 4·n_per_class} (80 and 160 at the default
protocol scale) and emits a ``BENCH_inference.json`` trajectory
artifact for CI to archive.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np
import pytest
from bench_distributed import update_trajectory

from repro.core import Goggles, GogglesConfig
from repro.core.inference.hierarchical import HierarchicalConfig
from repro.datasets import make_dataset
from repro.engine import InferenceEngine
from repro.eval.harness import shared_model
from repro.eval.tables import format_curve

# Trajectory artifacts live at the repo root so the BENCH_*.json series
# is tracked in one place across PRs (not buried under benchmarks/).
JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_inference.json"
WARM_ATOL = 1e-3  # documented warm-vs-cold posterior tolerance (ENGINE.md)


def _hold_out(n: int) -> int:
    """Arrivals streamed after the initial corpus (~10%, at least 4)."""
    return max(4, n // 10)


@pytest.mark.benchmark(group="inference")
def test_incremental_inference_modes(benchmark, settings, record_result):
    model = shared_model(settings)
    rows: list[dict] = []

    def measure() -> list[dict]:
        rows.clear()
        for n_per_class in (settings.n_per_class, 2 * settings.n_per_class):
            dataset = make_dataset("surface", n_per_class=n_per_class, seed=0)
            n = dataset.n_examples
            n0 = n - _hold_out(n)
            dev = dataset.sample_dev_set(settings.dev_per_class, seed=0)
            assert dev.indices.max() < n0, "dev set must live in the seed corpus"
            config = GogglesConfig(n_classes=2, seed=0, n_jobs=settings.n_jobs)

            # Seed corpus + incremental extension (shared by both modes).
            goggles = Goggles(config, model=model)
            goggles.label(dataset.images[:n0], dev)
            state = goggles.inference.state
            extended = goggles.engine.extend(dataset.images[n0:])

            hier_config = HierarchicalConfig(n_classes=2, seed=config.seed)
            start = time.perf_counter()
            cold = InferenceEngine(hier_config, executor="serial").fit(extended)
            cold_s = time.perf_counter() - start
            start = time.perf_counter()
            warm = InferenceEngine(hier_config, executor="serial").fit(extended, warm_start=state)
            warm_s = time.perf_counter() - start
            start = time.perf_counter()
            process = InferenceEngine(hier_config, executor="process", n_jobs=4).fit(extended)
            process_s = time.perf_counter() - start

            assert np.array_equal(process.posterior, cold.posterior), (
                "process-pool fit must be bit-identical to serial"
            )
            assert np.allclose(warm.posterior, cold.posterior, atol=WARM_ATOL), (
                "warm start must stay within the documented tolerance"
            )
            assert warm.total_em_iterations < cold.total_em_iterations, (
                f"warm start must save EM iterations at N={n} "
                f"({warm.total_em_iterations} vs {cold.total_em_iterations})"
            )
            rows.append(
                {
                    "n": n,
                    "n_new": n - n0,
                    "cold_seconds": round(cold_s, 4),
                    "warm_seconds": round(warm_s, 4),
                    "process_seconds": round(process_s, 4),
                    "cold_em_iterations": cold.total_em_iterations,
                    "warm_em_iterations": warm.total_em_iterations,
                    "posterior_max_abs_diff": float(np.abs(warm.posterior - cold.posterior).max()),
                }
            )
        return rows

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    # Merge: BENCH_inference.json is shared with bench_online_inference.py
    # ("online" section), so each benchmark only rewrites its own rows.
    update_trajectory(JSON_PATH, "rows", measured)

    lines = []
    for row in measured:
        saved = 100 * (1 - row["warm_em_iterations"] / row["cold_em_iterations"])
        lines.append(
            f"N={row['n']} (+{row['n_new']} arrivals): cold {row['cold_seconds']:.3f}s"
            f"/{row['cold_em_iterations']} EM iters, warm {row['warm_seconds']:.3f}s"
            f"/{row['warm_em_iterations']} iters ({saved:.0f}% iterations saved), "
            f"process {row['process_seconds']:.3f}s (bit-identical)"
        )
    record_result(
        format_curve(
            {row["n"]: row["warm_em_iterations"] for row in measured},
            "Warm-started EM iterations vs N",
            "N",
            "EM iters",
        )
        + "\n" + "\n".join(lines)
        + f"\ntrajectory artifact: {JSON_PATH.name}"
    )
