"""Figure 5: block structure of the class-sorted affinity matrix.

The paper's heatmap shows that, for an informative function, the
within-class blocks of the (class-sorted) affinity matrix are visibly
brighter than the cross-class blocks, while a useless function shows no
block structure.  We reproduce the 2x2 block means for the best/median/
worst functions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.harness import run_fig5
from repro.eval.tables import format_matrix


def _block_contrast(block_means: np.ndarray) -> float:
    within = float(np.diag(block_means).mean())
    cross = float(block_means[~np.eye(block_means.shape[0], dtype=bool)].mean())
    return within - cross


@pytest.mark.benchmark(group="fig5")
def test_fig5_affinity_matrix_blocks(benchmark, settings, record_result):
    result = benchmark.pedantic(lambda: run_fig5(settings, "cub"), rounds=1, iterations=1)
    blocks = result["blocks"]
    pieces = ["Figure 5: class-sorted affinity block means on CUB"]
    for name in ("best", "median", "worst"):
        stat = result["picks"][name]
        pieces.append(
            format_matrix(blocks[name], f"{name} function f{stat.function_index:02d} (AUC {stat.auc:.3f})")
        )
        pieces.append(f"  within-minus-cross contrast: {_block_contrast(blocks[name]):.4f}")
    pieces.append("paper shape: informative functions show bright diagonal blocks; noise functions are flat")
    record_result("\n".join(pieces))

    assert _block_contrast(blocks["best"]) > 0.01, "best function must show diagonal block structure"
    assert _block_contrast(blocks["best"]) > _block_contrast(blocks["worst"]), (
        "block contrast must decrease from best to worst function"
    )
