"""Figure 8: labeling accuracy vs development-set size.

Paper shape: "As the development set size increases, the accuracy
increases initially, but finally converges ... A development set with
5 examples per class [is] enough for all datasets", and easier datasets
converge at smaller dev sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.harness import run_fig8
from repro.eval.tables import format_curve

DEV_SIZES = (0, 2, 4, 8, 12, 20, 30, 40)


@pytest.mark.benchmark(group="fig8")
def test_fig8_accuracy_vs_dev_set_size(benchmark, settings, record_result):
    def sweep():
        curves = {}
        for dataset in ("cub", "gtsrb", "surface", "tbxray", "pnxray"):
            per_seed = [
                run_fig8(settings, dataset, dev_sizes=DEV_SIZES, run_seed=s)
                for s in range(settings.n_seeds)
            ]
            curves[dataset] = {size: float(np.mean([run[size] for run in per_seed])) for size in DEV_SIZES}
        return curves

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1)
    pieces = []
    for dataset, curve in curves.items():
        pieces.append(format_curve(curve, f"Figure 8 — {dataset}", "dev size", "accuracy %"))
    pieces.append("paper shape: rises from ~chance at size 0, saturates by ~10 examples")
    record_result("\n".join(pieces))

    for dataset, curve in curves.items():
        small = curve[0]
        converged = np.mean([curve[20], curve[30], curve[40]])
        assert converged >= small - 1e-9, f"{dataset}: accuracy must not degrade with more dev labels"
        late_spread = max(curve[20], curve[30], curve[40]) - min(curve[20], curve[30], curve[40])
        assert late_spread < 15, f"{dataset}: accuracy must saturate for large dev sets"
    assert np.mean([c[40] for c in curves.values()]) > np.mean([c[0] for c in curves.values()]) + 5, (
        "dev labels must add substantial accuracy on average"
    )
