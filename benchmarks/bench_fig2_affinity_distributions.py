"""Figure 2: same-class vs different-class affinity score distributions.

The paper plots three CUB affinity functions: f1 separates the classes
well, f2 weakly, f3 not at all.  We quantify each function's separation
with the AUC of same-class vs different-class pair scores and check the
same spread exists: some functions are strongly discriminative, many
are noise.
"""

from __future__ import annotations

import pytest

from repro.eval.harness import run_fig2


@pytest.mark.benchmark(group="fig2")
def test_fig2_affinity_score_distributions(benchmark, settings, record_result):
    result = benchmark.pedantic(lambda: run_fig2(settings, "cub"), rounds=1, iterations=1)
    best, median, worst = result["best"], result["median"], result["worst"]
    lines = [
        "Figure 2: affinity score separation on CUB (AUC of same vs diff pairs)",
        f"  f1-like (best)  : f{best.function_index:02d}  AUC={best.auc:.3f}  "
        f"same-mean={best.same_mean:.3f}  diff-mean={best.diff_mean:.3f}",
        f"  f2-like (median): f{median.function_index:02d}  AUC={median.auc:.3f}  "
        f"same-mean={median.same_mean:.3f}  diff-mean={median.diff_mean:.3f}",
        f"  f3-like (worst) : f{worst.function_index:02d}  AUC={worst.auc:.3f}  "
        f"same-mean={worst.same_mean:.3f}  diff-mean={worst.diff_mean:.3f}",
        f"  functions with AUC > 0.6: {result['n_discriminative']} / {len(result['all'])}",
        "paper shape: a few functions separate the classes strongly; many are pure noise",
    ]
    record_result("\n".join(lines))

    assert best.auc > 0.75, "at least one affinity function must separate classes well"
    assert worst.auc < 0.6, "some affinity functions must be uninformative noise"
    assert best.separation > 0, "same-class pairs must score higher under the best function"
    assert 1 <= result["n_discriminative"] < len(result["all"]), (
        "discriminative functions are a strict subset"
    )
