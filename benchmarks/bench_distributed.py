"""Distributed shard runtime: cluster vs the serial path, with crossover.

Two benchmarks share the repo-root ``BENCH_distributed.json``:

* ``test_distributed_vs_serial_bit_identical`` — the original N=80
  cold-cluster smoke: one coordinator, two spawned workers, and the
  acceptance contract that the merged :class:`AffinityMatrix` is
  **bit-identical** to the serial build and the class-aligned labels
  are exactly equal (atol=0).
* ``test_distributed_crossover_sweep`` — the "does distributed ever
  win" question, answered with numbers: N ∈ {80, 160, 320} ×
  workers ∈ {2, 4} against a *warm* :class:`WorkerPool` (the cold
  first run — spawn + import + per-process backbone build — is timed
  separately per pool), every cell asserted bit-identical, and a
  ``crossover`` section recording the smallest N where distributed ≤
  serial per worker count (or null).  The sweep also asserts the warm
  pool spawned **zero** new workers after its first run.
* ``test_distributed_telemetry_reconciliation`` — the cluster-wide
  telemetry contract: two *process* workers ship their
  ``goggles_worker_shards_completed_total`` deltas over the wire, and
  the sum of the merged per-worker series must reconcile **exactly**
  with the coordinator queue's completed-shard count (telemetry rides
  the same messages as the completion reports, so in a clean run the
  books balance to the shard).  Written as the ``telemetry`` section,
  with the shard queue-wait p99 gated like the serving latencies.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import Goggles, GogglesConfig
from repro.datasets import make_dataset
from repro.distributed import DistributedConfig, WorkerPool
from repro.eval.harness import shared_model

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_distributed.json"
N_WORKERS = 2
#: Crossover sweep grid: images per class (2 classes → N = 80/160/320)
#: and warm-pool worker counts.
SWEEP_N_PER_CLASS = (40, 80, 160)
SWEEP_WORKERS = (2, 4)


def update_trajectory(path: Path, key: str, rows: list[dict] | dict) -> None:
    """Merge one section into the shared trajectory JSON.

    ``BENCH_distributed.json`` holds one section per distributed
    benchmark (``rows`` and ``crossover`` from this file,
    ``extraction`` from ``bench_distributed_extraction.py``); merging
    instead of rewriting lets the benchmarks run in any order — or
    alone — without erasing each other's numbers.
    """
    try:
        document = json.loads(path.read_text())
    except (OSError, ValueError):
        document = {}
    if not isinstance(document, dict):
        document = {}
    document[key] = rows
    path.write_text(json.dumps(document, indent=2) + "\n")


@pytest.mark.benchmark(group="distributed")
def test_distributed_vs_serial_bit_identical(benchmark, settings, record_result):
    model = shared_model(settings)
    dataset = make_dataset("surface", n_per_class=settings.n_per_class, seed=0)
    dev = dataset.sample_dev_set(settings.dev_per_class, seed=0)
    rows: list[dict] = []

    def measure() -> list[dict]:
        rows.clear()
        start = time.perf_counter()
        serial = Goggles(
            GogglesConfig(n_classes=2, seed=0, executor="serial"), model=model
        ).label(dataset.images, dev)
        serial_s = time.perf_counter() - start

        start = time.perf_counter()
        with Goggles(
            GogglesConfig(n_classes=2, seed=0, executor="distributed", n_workers=N_WORKERS),
            model=model,
        ) as goggles:
            distributed = goggles.label(dataset.images, dev)
            queue_stats = goggles.coordinator.queue.stats()
            shard_stats = dict(goggles.coordinator.stats)
        distributed_s = time.perf_counter() - start

        # The acceptance contract: a 2-worker cluster reproduces the
        # serial run exactly — matrix blocks bit-for-bit, labels atol=0.
        assert np.array_equal(
            distributed.affinity.values, serial.affinity.values
        ), "distributed affinity matrix must be bit-identical to serial"
        assert np.array_equal(
            distributed.probabilistic_labels, serial.probabilistic_labels
        ), "distributed probabilistic labels must equal serial at atol=0"
        assert np.array_equal(distributed.predictions, serial.predictions)

        rows.append(
            {
                "n": dataset.n_examples,
                "workers": N_WORKERS,
                "serial_seconds": round(serial_s, 4),
                "distributed_seconds": round(distributed_s, 4),
                "shards": shard_stats["shards_planned"],
                "shards_completed": queue_stats["completed"],
                "shards_requeued": queue_stats["requeued"],
                "bit_identical": True,
            }
        )
        return rows

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    update_trajectory(JSON_PATH, "rows", measured)

    row = measured[0]
    record_result(
        f"Distributed runtime smoke (N={row['n']}, {row['workers']} worker processes)\n"
        f"  serial      {row['serial_seconds']:.2f}s\n"
        f"  distributed {row['distributed_seconds']:.2f}s over {row['shards']} shards "
        f"({row['shards_completed']} completed, {row['shards_requeued']} requeued)\n"
        f"  affinity matrix and labels bit-identical to serial: {row['bit_identical']}\n"
        f"trajectory artifact: {JSON_PATH.name}"
    )


@pytest.mark.benchmark(group="distributed")
def test_distributed_telemetry_reconciliation(benchmark, settings, record_result):
    """Worker-shipped telemetry must reconcile exactly with the queue.

    Two spawned *process* workers each keep their own registry and ship
    counter deltas piggybacked on their completion reports; the broker
    merges each frame before applying the completions it rode with, so
    when the run returns, the per-worker
    ``goggles_worker_shards_completed_total`` series must sum to the
    coordinator's completed-shard count — exactly, not approximately.
    """
    from repro.obs import MetricsRegistry

    model = shared_model(settings)
    dataset = make_dataset("surface", n_per_class=settings.n_per_class, seed=0)
    dev = dataset.sample_dev_set(settings.dev_per_class, seed=0)
    section: dict = {}

    def measure() -> dict:
        section.clear()
        registry = MetricsRegistry()
        start = time.perf_counter()
        with WorkerPool(DistributedConfig(n_workers=N_WORKERS), registry=registry) as pool:
            with Goggles(
                GogglesConfig(n_classes=2, seed=0, executor="distributed"),
                model=model,
                coordinator=pool,
            ) as goggles:
                goggles.label(dataset.images, dev)
                queue_stats = goggles.coordinator.queue.stats()
        elapsed = time.perf_counter() - start

        workers = registry.get("goggles_worker_shards_completed_total")
        series = workers.series() if workers is not None else {}
        shipped = int(sum(series.values()))
        completed = int(queue_stats["completed"])
        assert shipped == completed, (
            f"worker-shipped completions ({shipped}) must reconcile exactly with "
            f"the coordinator's completed-shard count ({completed}); series: {series}"
        )

        wait = registry.get("goggles_shard_queue_wait_seconds")
        p99 = 0.0
        if wait is not None:
            for key in wait.raw_series():
                quantile = wait.quantile(0.99, **dict(zip(wait.labelnames, key)))
                if quantile is not None:
                    p99 = max(p99, quantile)
        merged = registry.get("goggles_telemetry_frames_merged_total")
        section.update(
            {
                "n": dataset.n_examples,
                "workers": N_WORKERS,
                "seconds": round(elapsed, 4),
                "shards_completed": completed,
                "worker_shipped_completions": shipped,
                "worker_series": {key[0]: int(value) for key, value in sorted(series.items())},
                "reconciled": shipped == completed,
                "telemetry_frames_merged": int(merged.total()) if merged is not None else 0,
                "stragglers": int(queue_stats.get("stragglers", 0)),
                "shard_queue_wait_p99_seconds": round(p99, 4),
            }
        )
        return section

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    update_trajectory(JSON_PATH, "telemetry", measured)

    record_result(
        f"Distributed telemetry reconciliation (N={measured['n']}, "
        f"{measured['workers']} process workers)\n"
        f"  worker-shipped completions {measured['worker_shipped_completions']} "
        f"== queue completed {measured['shards_completed']}: {measured['reconciled']}\n"
        f"  per-worker series: {measured['worker_series']}\n"
        f"  telemetry frames merged: {measured['telemetry_frames_merged']}, "
        f"stragglers: {measured['stragglers']}, "
        f"queue-wait p99: {measured['shard_queue_wait_p99_seconds']:.4f}s\n"
        f"trajectory artifact: {JSON_PATH.name}"
    )


@pytest.mark.benchmark(group="distributed")
def test_distributed_crossover_sweep(benchmark, settings, record_result):
    """Warm-pool N-sweep: where does distributed stop losing to serial?

    Serial is timed once per N; each worker count gets one persistent
    :class:`WorkerPool` whose cold first run (process spawn + imports +
    per-process backbone build) is timed separately and excluded from
    the sweep rows — those measure warm steady-state, which is what a
    long-lived service actually sees.  Every cell must stay
    bit-identical to serial, and the pool must spawn zero new workers
    after warm-up.
    """
    model = shared_model(settings)
    datasets = {
        npc: make_dataset("surface", n_per_class=npc, seed=0) for npc in SWEEP_N_PER_CLASS
    }
    devs = {
        npc: datasets[npc].sample_dev_set(settings.dev_per_class, seed=0)
        for npc in SWEEP_N_PER_CLASS
    }
    section: dict = {}

    def measure() -> dict:
        section.clear()
        serial_out: dict[int, object] = {}
        serial_s: dict[int, float] = {}
        for npc in SWEEP_N_PER_CLASS:
            start = time.perf_counter()
            serial_out[npc] = Goggles(
                GogglesConfig(n_classes=2, seed=0, executor="serial"), model=model
            ).label(datasets[npc].images, devs[npc])
            serial_s[npc] = time.perf_counter() - start

        rows: list[dict] = []
        warmups: list[dict] = []
        config = GogglesConfig(n_classes=2, seed=0, executor="distributed")
        for n_workers in SWEEP_WORKERS:
            with WorkerPool(DistributedConfig(n_workers=n_workers)) as pool:
                warm_npc = SWEEP_N_PER_CLASS[0]
                start = time.perf_counter()
                with Goggles(config, model=model, coordinator=pool) as goggles:
                    goggles.label(datasets[warm_npc].images, devs[warm_npc])
                warmups.append(
                    {
                        "workers": n_workers,
                        "cold_first_run_seconds": round(time.perf_counter() - start, 4),
                        "workers_spawned": pool.workers_spawned,
                    }
                )
                spawned_after_warmup = pool.workers_spawned
                for npc in SWEEP_N_PER_CLASS:
                    start = time.perf_counter()
                    with Goggles(config, model=model, coordinator=pool) as goggles:
                        distributed = goggles.label(datasets[npc].images, devs[npc])
                    distributed_s = time.perf_counter() - start
                    serial = serial_out[npc]
                    assert np.array_equal(
                        distributed.affinity.values, serial.affinity.values
                    ), f"warm distributed affinity diverged at N={datasets[npc].n_examples}"
                    assert np.array_equal(
                        distributed.probabilistic_labels, serial.probabilistic_labels
                    )
                    assert np.array_equal(distributed.predictions, serial.predictions)
                    rows.append(
                        {
                            "n": datasets[npc].n_examples,
                            "workers": n_workers,
                            "serial_seconds": round(serial_s[npc], 4),
                            "distributed_seconds": round(distributed_s, 4),
                            "speedup": round(serial_s[npc] / distributed_s, 3),
                            "bit_identical": True,
                        }
                    )
                assert pool.workers_spawned == spawned_after_warmup, (
                    "warm pool spawned new workers mid-sweep "
                    f"({spawned_after_warmup} -> {pool.workers_spawned})"
                )

        crossover_n: dict[str, int | None] = {}
        for n_workers in SWEEP_WORKERS:
            wins = [
                row["n"]
                for row in rows
                if row["workers"] == n_workers
                and row["distributed_seconds"] <= row["serial_seconds"]
            ]
            crossover_n[str(n_workers)] = min(wins) if wins else None
        section.update({"rows": rows, "warmup": warmups, "crossover_n": crossover_n})
        return section

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    update_trajectory(JSON_PATH, "crossover", measured)

    lines = [
        f"Distributed crossover sweep (warm pools, N in "
        f"{sorted({2 * npc for npc in SWEEP_N_PER_CLASS})}, workers in {list(SWEEP_WORKERS)})"
    ]
    for row in measured["rows"]:
        lines.append(
            f"  N={row['n']:<4d} workers={row['workers']}  serial {row['serial_seconds']:6.2f}s"
            f"  distributed {row['distributed_seconds']:6.2f}s"
            f"  speedup {row['speedup']:.2f}x  bit_identical={row['bit_identical']}"
        )
    for warm in measured["warmup"]:
        lines.append(
            f"  cold first run ({warm['workers']} workers): "
            f"{warm['cold_first_run_seconds']:.2f}s, {warm['workers_spawned']} spawns"
        )
    lines.append(f"  crossover N (distributed <= serial): {measured['crossover_n']}")
    lines.append(f"trajectory artifact: {JSON_PATH.name}")
    record_result("\n".join(lines))
