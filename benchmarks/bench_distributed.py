"""Distributed shard runtime: 2-worker cluster vs the serial path.

Boots a coordinator with two spawned local worker processes, labels the
N=80 protocol corpus through ``executor="distributed"`` (affinity tiles
*and* base-model fits sharded over the lease-based task queue), and
asserts the acceptance contract: the merged :class:`AffinityMatrix` is
**bit-identical** to the serial build and the class-aligned labels are
exactly equal (atol=0).  Timings land in the repo-root
``BENCH_distributed.json`` trajectory; at this scale the cluster pays
spawn/transport overhead — the point here is correctness under real
multi-process execution, with the speedup story living on corpora big
enough to amortise a cluster.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import Goggles, GogglesConfig
from repro.datasets import make_dataset
from repro.eval.harness import shared_model

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_distributed.json"
N_WORKERS = 2


def update_trajectory(path: Path, key: str, rows: list[dict]) -> None:
    """Merge one section into the shared trajectory JSON.

    ``BENCH_distributed.json`` holds one section per distributed
    benchmark (``rows`` from this file, ``extraction`` from
    ``bench_distributed_extraction.py``); merging instead of rewriting
    lets the benchmarks run in any order — or alone — without erasing
    each other's numbers.
    """
    try:
        document = json.loads(path.read_text())
    except (OSError, ValueError):
        document = {}
    if not isinstance(document, dict):
        document = {}
    document[key] = rows
    path.write_text(json.dumps(document, indent=2) + "\n")


@pytest.mark.benchmark(group="distributed")
def test_distributed_vs_serial_bit_identical(benchmark, settings, record_result):
    model = shared_model(settings)
    dataset = make_dataset("surface", n_per_class=settings.n_per_class, seed=0)
    dev = dataset.sample_dev_set(settings.dev_per_class, seed=0)
    rows: list[dict] = []

    def measure() -> list[dict]:
        rows.clear()
        start = time.perf_counter()
        serial = Goggles(
            GogglesConfig(n_classes=2, seed=0, executor="serial"), model=model
        ).label(dataset.images, dev)
        serial_s = time.perf_counter() - start

        start = time.perf_counter()
        with Goggles(
            GogglesConfig(n_classes=2, seed=0, executor="distributed", n_workers=N_WORKERS),
            model=model,
        ) as goggles:
            distributed = goggles.label(dataset.images, dev)
            queue_stats = goggles.coordinator.queue.stats()
            shard_stats = dict(goggles.coordinator.stats)
        distributed_s = time.perf_counter() - start

        # The acceptance contract: a 2-worker cluster reproduces the
        # serial run exactly — matrix blocks bit-for-bit, labels atol=0.
        assert np.array_equal(
            distributed.affinity.values, serial.affinity.values
        ), "distributed affinity matrix must be bit-identical to serial"
        assert np.array_equal(
            distributed.probabilistic_labels, serial.probabilistic_labels
        ), "distributed probabilistic labels must equal serial at atol=0"
        assert np.array_equal(distributed.predictions, serial.predictions)

        rows.append(
            {
                "n": dataset.n_examples,
                "workers": N_WORKERS,
                "serial_seconds": round(serial_s, 4),
                "distributed_seconds": round(distributed_s, 4),
                "shards": shard_stats["shards_planned"],
                "shards_completed": queue_stats["completed"],
                "shards_requeued": queue_stats["requeued"],
                "bit_identical": True,
            }
        )
        return rows

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    update_trajectory(JSON_PATH, "rows", measured)

    row = measured[0]
    record_result(
        f"Distributed runtime smoke (N={row['n']}, {row['workers']} worker processes)\n"
        f"  serial      {row['serial_seconds']:.2f}s\n"
        f"  distributed {row['distributed_seconds']:.2f}s over {row['shards']} shards "
        f"({row['shards_completed']} completed, {row['shards_requeued']} requeued)\n"
        f"  affinity matrix and labels bit-identical to serial: {row['bit_identical']}\n"
        f"trajectory artifact: {JSON_PATH.name}"
    )
