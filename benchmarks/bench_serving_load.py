"""Serving load test: open-loop HTTP workload against the labeling service.

A stdlib-only workload generator hammers a real ``serve_http`` front-end
the way a fleet of stochastic users would: arrivals are open-loop
Poisson (exponential inter-arrival at a configured offered rate, drawn
independently of completions, so the generator keeps offering load even
while the service falls behind), each arrival runs one submit →
poll-until-resolved session on its own thread, and every cell of the
sweep — back-pressure bound × submit batch size × batch-vs-online
mode — gets a fresh service wired to a fresh metrics registry.

Each cell records client-observed percentiles (p50/p95/p99 of the 202
submit round-trip and of submit→resolved end-to-end latency), the shed
rate at that offered load, and a ``reconciled`` flag asserting the
scraped ``/metrics`` counters agree exactly with what the clients saw:
202s with ``goggles_http_requests_total{route="/submit",status="202"}``
and ``goggles_service_submits_total``, 429s with
``goggles_http_shed_total`` and ``goggles_service_shed_total``.  Rows
merge into the repo-root ``BENCH_serving.json`` trajectory
(``load`` + ``summary`` sections here, ``smoke`` from the CI matrix's
short run), which ``scripts/check_bench.py`` gates on p99 growth and
shed-rate increase.

Scale knobs (environment):

* ``REPRO_BENCH_LOAD_SECONDS`` — offered-load window per cell (default 5)
* ``REPRO_BENCH_LOAD_RPS``     — offered arrivals per second (default 3)
* ``REPRO_BENCH_LOAD_N``       — seed-corpus images per class (default 12)
"""

from __future__ import annotations

import json
import math
import os
import random
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest
from bench_distributed import update_trajectory

from repro.core import Goggles, GogglesConfig
from repro.datasets import make_dataset
from repro.datasets.base import DevSet
from repro.eval.harness import shared_model
from repro.obs import MetricsRegistry
from repro.online import OnlineConfig
from repro.serving import LabelingService, TenantRegistry, serve_http
from repro.utils.rng import derive_seed

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"
METRICS_DUMP_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving_metrics.prom"

LOAD_SECONDS = float(os.environ.get("REPRO_BENCH_LOAD_SECONDS", "5"))
OFFERED_RPS = float(os.environ.get("REPRO_BENCH_LOAD_RPS", "3"))
N_PER_CLASS = int(os.environ.get("REPRO_BENCH_LOAD_N", "12"))
RESOLVE_TIMEOUT = 120.0
POLL_INTERVAL = 0.02

#: The sweep: back-pressure bound (pixels; None = never shed) ×
#: rows per submission × service mode.  ``tight`` is sized in units of
#: one submission so shedding actually engages under backlog.
SWEEP = (
    {"mode": "batch", "bound_batches": None, "batch_rows": 1},
    {"mode": "batch", "bound_batches": None, "batch_rows": 4},
    {"mode": "batch", "bound_batches": 2, "batch_rows": 1},
    {"mode": "batch", "bound_batches": 2, "batch_rows": 4},
    {"mode": "online", "bound_batches": None, "batch_rows": 1},
    {"mode": "online", "bound_batches": None, "batch_rows": 4},
    {"mode": "online", "bound_batches": 2, "batch_rows": 1},
    {"mode": "online", "bound_batches": 2, "batch_rows": 4},
)


def percentile(sorted_values: list[float], q: float) -> float | None:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return None
    rank = math.ceil(q * len(sorted_values))
    return sorted_values[min(max(rank, 1), len(sorted_values)) - 1]


def _dev_from_seed(labels: np.ndarray, n0: int, per_class: int, n_classes: int) -> DevSet:
    """A dev set drawn from the seed prefix only, indices sorted."""
    rng = np.random.default_rng(derive_seed(0, "bench-serving-dev"))
    chosen: list[int] = []
    for c in range(n_classes):
        pool = np.flatnonzero(labels[:n0] == c)
        assert pool.size >= per_class, f"seed corpus holds too few images of class {c}"
        chosen.extend(rng.choice(pool, size=per_class, replace=False).tolist())
    indices = np.array(sorted(chosen))
    return DevSet(indices=indices, labels=labels[indices])


class _Session:
    """One user's submit → poll-until-resolved interaction."""

    __slots__ = ("outcome", "submit_seconds", "e2e_seconds")

    def __init__(self):
        self.outcome = "error"
        self.submit_seconds: float | None = None
        self.e2e_seconds: float | None = None


def _run_session(url: str, body: bytes, session: _Session, tenant: str | None = None) -> None:
    submit_url = f"{url}/v1/tenants/{tenant}/submit" if tenant else f"{url}/submit"
    request = urllib.request.Request(
        submit_url, data=body,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    started = time.perf_counter()
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            payload = json.loads(response.read())
    except urllib.error.HTTPError as error:
        error.read()
        session.submit_seconds = time.perf_counter() - started
        session.outcome = "shed" if error.code == 429 else "error"
        return
    except OSError:
        return
    session.submit_seconds = time.perf_counter() - started
    ticket = payload["ticket"]
    poll_url = (
        f"{url}/v1/tenants/{tenant}/poll/{ticket}" if tenant else f"{url}/poll/{ticket}"
    )
    deadline = time.monotonic() + RESOLVE_TIMEOUT
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(poll_url, timeout=30.0) as response:
                status = json.loads(response.read())
        except OSError:
            return
        if status["state"] != "pending":
            session.e2e_seconds = time.perf_counter() - started
            session.outcome = "done" if status["state"] == "done" else "error"
            return
        time.sleep(POLL_INTERVAL)


def _scrape(url: str) -> dict[str, float]:
    """Parse a ``/metrics`` exposition into ``{name{labels}: value}``."""
    with urllib.request.urlopen(f"{url}/metrics", timeout=30.0) as response:
        text = response.read().decode("utf-8")
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        samples[name] = float(value)
    return samples


def _drive_cell(
    url: str,
    images: np.ndarray,
    batch_rows: int,
    seconds: float,
    rps: float,
    seed: int,
    tenant: str | None = None,
) -> list[_Session]:
    """Offer open-loop Poisson load for ``seconds``; join every session."""
    rng = random.Random(seed)
    pool = images.shape[0]
    sessions: list[_Session] = []
    threads: list[threading.Thread] = []
    deadline = time.monotonic() + seconds
    next_arrival = time.monotonic()
    while True:
        next_arrival += rng.expovariate(rps)
        if next_arrival > deadline:
            break
        delay = next_arrival - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        start = rng.randrange(max(1, pool - batch_rows))
        body = json.dumps({"images": images[start : start + batch_rows].tolist()}).encode()
        session = _Session()
        sessions.append(session)
        thread = threading.Thread(
            target=_run_session, args=(url, body, session, tenant), daemon=True
        )
        threads.append(thread)
        thread.start()
    for thread in threads:
        thread.join(timeout=RESOLVE_TIMEOUT)
    return sessions


def _cell_row(
    cell: dict,
    sessions: list[_Session],
    registry: MetricsRegistry,
    url: str,
    route: str = "/submit",
    tenant: str = "default",
) -> dict:
    """Client percentiles + shed rate + metrics reconciliation for one cell."""
    done = [s for s in sessions if s.outcome == "done"]
    shed = [s for s in sessions if s.outcome == "shed"]
    submits = sorted(s.submit_seconds for s in sessions if s.submit_seconds is not None)
    e2e = sorted(s.e2e_seconds for s in done if s.e2e_seconds is not None)

    # Post-reply counter updates race the last client read by a hair;
    # wait for the registry to go quiescent before reconciling.
    expected_202 = float(len(done))
    http_submits = registry.get("goggles_http_requests_total")
    quiesce = time.monotonic() + 5.0
    while (
        http_submits.value(route=route, status="202", tenant=tenant) < expected_202
        and time.monotonic() < quiesce
    ):
        time.sleep(0.02)

    samples = _scrape(url)
    scraped_202 = samples.get(
        f'goggles_http_requests_total{{route="{route}",status="202",tenant="{tenant}"}}', 0.0
    )
    scraped_shed = samples.get(f'goggles_http_shed_total{{tenant="{tenant}"}}', 0.0)
    service_submits = samples.get(f'goggles_service_submits_total{{tenant="{tenant}"}}', 0.0)
    service_shed = samples.get(f'goggles_service_shed_total{{tenant="{tenant}"}}', 0.0)
    reconciled = (
        scraped_202 == len(done)
        and service_submits == len(done)
        and scraped_shed == len(shed)
        and service_shed == len(shed)
    )
    return {
        "mode": cell["mode"],
        "batch_rows": cell["batch_rows"],
        "max_queued_pixels": cell["_bound"],
        "offered_rps": OFFERED_RPS,
        "offered": len(sessions),
        "accepted": len(done),
        "shed": len(shed),
        "errors": len(sessions) - len(done) - len(shed),
        "shed_rate": (len(shed) / len(sessions)) if sessions else 0.0,
        "submit_p50_seconds": percentile(submits, 0.50),
        "submit_p95_seconds": percentile(submits, 0.95),
        "submit_p99_seconds": percentile(submits, 0.99),
        "e2e_p50_seconds": percentile(e2e, 0.50),
        "e2e_p95_seconds": percentile(e2e, 0.95),
        "e2e_p99_seconds": percentile(e2e, 0.99),
        "reconciled": reconciled,
    }


def _serving_corpus(settings):
    """Seed corpus + dev set + arrival pool, shared across cells."""
    model = shared_model(settings)
    dataset = make_dataset("surface", n_per_class=N_PER_CLASS, image_size=64, seed=1)
    n = dataset.n_examples
    n0 = n - max(4, n // 4)
    dev = _dev_from_seed(dataset.labels, n0, 3, 2)
    return model, dataset, n0, dev


def _start_cell(cell: dict, serving_corpus, tmp_path) -> tuple:
    """Fresh service + HTTP server + isolated registry for one cell."""
    model, dataset, n0, dev = serving_corpus
    registry = MetricsRegistry()
    config = GogglesConfig(
        n_classes=2, seed=0, top_z=3, layers=(1, 2),
        cache_dir=str(tmp_path / "cache"),
    )
    if cell["mode"] == "online":
        config = GogglesConfig(
            n_classes=2, seed=0, top_z=3, layers=(1, 2),
            cache_dir=str(tmp_path / "cache"),
            online=OnlineConfig(drift_threshold=100.0, refit_every=0),
        )
    goggles = Goggles(config, model=model)
    service = LabelingService(goggles, dev, mode=cell["mode"], registry=registry)
    service.start(dataset.images[:n0])
    pixel_cost = int(np.prod(dataset.images[:1].shape)) * cell["batch_rows"]
    bound = None if cell["bound_batches"] is None else cell["bound_batches"] * pixel_cost
    cell = dict(cell, _bound=bound)
    server = serve_http(service, max_queued_pixels=bound, registry=registry)
    return cell, service, server, registry


@pytest.mark.benchmark(group="serving")
def test_serving_load_sweep(settings, record_result, tmp_path_factory):
    """The full sweep: every cell's percentiles + shed rate + reconciliation."""
    corpus = _serving_corpus(settings)
    tmp_path = tmp_path_factory.mktemp("serving-load")
    rows: list[dict] = []
    for index, cell in enumerate(SWEEP):
        cell, service, server, registry = _start_cell(cell, corpus, tmp_path)
        try:
            sessions = _drive_cell(
                server.url, corpus[1].images[corpus[2]:], cell["batch_rows"],
                LOAD_SECONDS, OFFERED_RPS, seed=1000 + index,
            )
            rows.append(_cell_row(cell, sessions, registry, server.url))
        finally:
            server.shutdown()
            service.stop()
    assert rows, "sweep produced no cells"
    # Every accepted submission resolved and every counter reconciled.
    assert all(row["errors"] == 0 for row in rows), rows
    assert all(row["reconciled"] for row in rows), rows
    # Unbounded cells never shed; bounded cells may.
    for row in rows:
        if row["max_queued_pixels"] is None:
            assert row["shed"] == 0, row

    summary = {
        "cells": len(rows),
        "total_offered": sum(row["offered"] for row in rows),
        "total_accepted": sum(row["accepted"] for row in rows),
        "total_shed": sum(row["shed"] for row in rows),
        "worst_e2e_p99_seconds": max(
            (row["e2e_p99_seconds"] for row in rows if row["e2e_p99_seconds"] is not None),
            default=None,
        ),
        "all_reconciled": all(row["reconciled"] for row in rows),
    }
    update_trajectory(JSON_PATH, "load", rows)
    update_trajectory(JSON_PATH, "summary", summary)

    lines = ["Serving load sweep (open-loop Poisson @ %.1f rps, %.0fs/cell)" % (OFFERED_RPS, LOAD_SECONDS)]
    header = f"{'mode':>7} {'rows':>4} {'bound':>9} {'off':>4} {'acc':>4} {'shed':>5} {'p50':>7} {'p99':>7}"
    lines.append(header)
    for row in rows:
        lines.append(
            f"{row['mode']:>7} {row['batch_rows']:>4} "
            f"{str(row['max_queued_pixels']):>9} {row['offered']:>4} {row['accepted']:>4} "
            f"{row['shed_rate']:>5.2f} "
            f"{row['e2e_p50_seconds'] if row['e2e_p50_seconds'] is not None else float('nan'):>7.3f} "
            f"{row['e2e_p99_seconds'] if row['e2e_p99_seconds'] is not None else float('nan'):>7.3f}"
        )
    record_result("\n".join(lines))


@pytest.mark.benchmark(group="serving")
def test_serving_load_tenants(settings, record_result, tmp_path_factory):
    """Two tenants with different label spaces driven concurrently
    through the ``/v1`` API: per-tenant percentiles, shed rate, and a
    per-tenant metrics reconciliation (one registry, labeled series).
    Both tenants are unbounded, so the committed ``shed_rate`` baseline
    is 0.0 and any cross-tenant shedding regression trips the gate."""
    model, surface, n0, surface_dev = _serving_corpus(settings)
    cub = make_dataset("cub", n_per_class=N_PER_CLASS, image_size=64, seed=1, pair_seed=0)
    cub_n0 = cub.n_examples - max(4, cub.n_examples // 4)
    cub_dev = _dev_from_seed(cub.labels, cub_n0, 3, 2)
    tmp_path = tmp_path_factory.mktemp("serving-tenants")
    metrics = MetricsRegistry()
    config = GogglesConfig(
        n_classes=2, seed=0, top_z=3, layers=(1, 2), cache_dir=str(tmp_path / "cache")
    )
    tenants = TenantRegistry(base_config=config, model=model, metrics=metrics)
    tenants.register("surface", surface.images[:n0], surface_dev)
    tenants.register("cub", cub.images[:cub_n0], cub_dev)
    server = serve_http(tenants, registry=metrics)
    pools = {"surface": surface.images[n0:], "cub": cub.images[cub_n0:]}
    sessions: dict[str, list[_Session]] = {}
    rows: list[dict] = []
    try:
        drivers = [
            threading.Thread(
                target=lambda t=tenant, s=seed: sessions.__setitem__(
                    t,
                    _drive_cell(
                        server.url, pools[t], 1, min(LOAD_SECONDS, 3.0),
                        OFFERED_RPS, seed=s, tenant=t,
                    ),
                ),
                daemon=True,
            )
            for seed, tenant in enumerate(("surface", "cub"), start=2000)
        ]
        for driver in drivers:
            driver.start()
        for driver in drivers:
            driver.join(timeout=RESOLVE_TIMEOUT)
        for tenant in ("surface", "cub"):
            cell = {"mode": "batch", "batch_rows": 1, "_bound": None}
            row = _cell_row(
                cell, sessions[tenant], metrics, server.url,
                route="/v1/tenants/{id}/submit", tenant=tenant,
            )
            rows.append({"tenant": tenant, **row})
    finally:
        server.shutdown()
        tenants.close()
    assert all(row["errors"] == 0 for row in rows), rows
    assert all(row["shed"] == 0 for row in rows), rows
    assert all(row["reconciled"] for row in rows), rows
    update_trajectory(JSON_PATH, "tenants", rows)
    record_result(
        "Serving 2-tenant cell: "
        + "; ".join(
            "%s %d offered, %d accepted, e2e p99 %s s"
            % (row["tenant"], row["offered"], row["accepted"], row["e2e_p99_seconds"])
            for row in rows
        )
    )


@pytest.mark.benchmark(group="serving")
def test_serving_load_smoke(settings, record_result, tmp_path_factory):
    """One short cell for the CI test matrix: merges a ``smoke`` section
    and dumps the scraped metrics for artifact upload."""
    corpus = _serving_corpus(settings)
    tmp_path = tmp_path_factory.mktemp("serving-smoke")
    cell, service, server, registry = _start_cell(
        {"mode": "batch", "bound_batches": None, "batch_rows": 1}, corpus, tmp_path
    )
    try:
        sessions = _drive_cell(
            server.url, corpus[1].images[corpus[2]:], 1,
            min(LOAD_SECONDS, 3.0), OFFERED_RPS, seed=7,
        )
        row = _cell_row(cell, sessions, registry, server.url)
        with urllib.request.urlopen(f"{server.url}/metrics", timeout=30.0) as response:
            METRICS_DUMP_PATH.write_text(response.read().decode("utf-8"))
    finally:
        server.shutdown()
        service.stop()
    assert row["errors"] == 0, row
    assert row["shed"] == 0, row
    assert row["reconciled"], row
    update_trajectory(JSON_PATH, "smoke", [row])
    record_result(
        "Serving smoke: %d offered, %d accepted, e2e p99 %s s (metrics dump: %s)"
        % (row["offered"], row["accepted"], row["e2e_p99_seconds"], METRICS_DUMP_PATH.name)
    )
