"""Figure 7: theoretical dev-set size needed for a correct mapping.

The paper plots the Theorem-1 lower bound on P(correct cluster-to-class
mapping) against dev-set size for K=2: "when eta = 0.8, only about 20
examples are required to produce the correct cluster-class mapping with
a probability close to 1".
"""

from __future__ import annotations

import pytest

from repro.core.inference.theory import min_dev_set_size
from repro.eval.harness import run_fig7
from repro.eval.tables import format_curve


@pytest.mark.benchmark(group="fig7")
def test_fig7_theory_curves(benchmark, record_result):
    curves = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    pieces = []
    for eta, values in curves.items():
        points = {2 * (i + 1): float(v) for i, v in enumerate(values)}  # total dev size, K=2
        pieces.append(format_curve(points, f"Theorem 1 bound, eta={eta}", "dev size", "P(correct)"))
    m_star = min_dev_set_size(0.95, 2, 0.8)
    pieces.append(f"m* for P>=0.95 at eta=0.8: {m_star} examples (paper: 'about 20')")
    record_result("\n".join(pieces))

    # Shape checks: higher eta converges faster; curves approach 1.
    assert curves[0.95][-1] > curves[0.8][-1] > curves[0.6][-1]
    assert curves[0.8][-1] > 0.99, "eta=0.8 bound must be ~1 by d=25"
    assert 10 <= m_star <= 30, "paper says ~20 dev examples at eta=0.8"
