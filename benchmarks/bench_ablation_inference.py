"""Ablation of the §4.1 design choices in the hierarchical model.

The paper argues for (a) the hierarchy itself (vs one flat GMM on the
whole affinity matrix) and (b) the one-hot + multivariate-Bernoulli
ensemble (vs fitting continuous models on soft base predictions).  This
benchmark measures all three variants on two datasets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.harness import run_inference_ablation


@pytest.mark.benchmark(group="ablation")
def test_inference_design_ablation(benchmark, settings, record_result):
    def sweep():
        out = {}
        for dataset in ("cub", "surface"):
            rows = [run_inference_ablation(settings, dataset, run_seed=s) for s in range(settings.n_seeds)]
            out[dataset] = {variant: float(np.mean([row[variant] for row in rows])) for variant in rows[0]}
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Inference ablation: labeling accuracy (%)",
        f"{'dataset':<10} {'hierarchical':>13} {'soft_ensemble':>14} {'single_gmm':>11}",
    ]
    for dataset, row in results.items():
        lines.append(
            f"{dataset:<10} {row['hierarchical']:13.1f} "
            f"{row['soft_ensemble']:14.1f} {row['single_gmm']:11.1f}"
        )
    lines.append("paper argument: hierarchy + one-hot Bernoulli ensemble is the strongest configuration")
    record_result("\n".join(lines))

    mean_hier = np.mean([row["hierarchical"] for row in results.values()])
    mean_flat = np.mean([row["single_gmm"] for row in results.values()])
    assert mean_hier >= mean_flat - 5, "hierarchical model should not lose badly to the flat GMM"
