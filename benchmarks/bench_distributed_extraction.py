"""Distributed stage-1 feature extraction: 1/2/4-worker clusters vs serial.

The acceptance contract of the extraction-shard runtime: at every
worker count, ``executor="distributed"`` must reproduce the serial path
**exactly** (atol=0) at all three levels —

* the merged pool features (values *and* strides: the downstream GEMM
  rounds by operand layout, so the merge re-views channels-last chunks),
* the assembled :class:`AffinityMatrix`,
* the final class-aligned labels.

Each cluster uses real spawned worker processes over the full wire
protocol, with result streaming forced on (``stream_threshold=0``) so
the framed path is exercised under load.  Timings land in the
``extraction`` section of the repo-root ``BENCH_distributed.json``
trajectory; at this scale the cluster pays process-spawn and backbone
rebuild overhead — the point is correctness under real multi-process
execution at every worker count.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from bench_distributed import JSON_PATH, update_trajectory
from repro.core import Goggles, GogglesConfig
from repro.datasets import make_dataset
from repro.distributed import Coordinator, DistributedConfig
from repro.engine.features import extract_pool_features
from repro.eval.harness import shared_model

WORKER_COUNTS = (1, 2, 4)
LAYERS = (0, 1, 2, 3, 4)
BATCH_SIZE = 32


@pytest.mark.benchmark(group="distributed")
def test_distributed_extraction_bit_identical_at_any_worker_count(benchmark, settings, record_result):
    model = shared_model(settings)
    dataset = make_dataset("surface", n_per_class=settings.n_per_class, seed=0)
    dev = dataset.sample_dev_set(settings.dev_per_class, seed=0)
    rows: list[dict] = []

    def measure() -> list[dict]:
        rows.clear()
        start = time.perf_counter()
        serial_pools = extract_pool_features(model, dataset.images, layers=LAYERS, batch_size=BATCH_SIZE)
        serial_extract_s = time.perf_counter() - start
        start = time.perf_counter()
        serial = Goggles(
            GogglesConfig(n_classes=2, seed=0, executor="serial", batch_size=BATCH_SIZE),
            model=model,
        ).label(dataset.images, dev)
        serial_s = time.perf_counter() - start

        for n_workers in WORKER_COUNTS:
            coordinator = Coordinator(
                DistributedConfig(n_workers=n_workers, stream_threshold=0),
            )
            start = time.perf_counter()
            with Goggles(
                GogglesConfig(n_classes=2, seed=0, executor="distributed", batch_size=BATCH_SIZE),
                model=model,
                coordinator=coordinator,
            ) as goggles:
                distributed = goggles.label(dataset.images, dev)
                labeled_s = time.perf_counter() - start
                start = time.perf_counter()
                merged_pools = coordinator.extract_pool_features(
                    model.config, dataset.images, layers=LAYERS, batch_size=BATCH_SIZE
                )
                extract_s = time.perf_counter() - start
                streamed = coordinator._broker.n_streamed if coordinator.started else 0
                queue_stats = coordinator.queue.stats()

            features_identical = all(
                np.array_equal(merged_pools[layer], serial_pools[layer])
                and merged_pools[layer].strides == serial_pools[layer].strides
                for layer in LAYERS
            )
            affinity_identical = np.array_equal(distributed.affinity.values, serial.affinity.values)
            labels_identical = np.array_equal(
                distributed.probabilistic_labels, serial.probabilistic_labels
            ) and np.array_equal(distributed.predictions, serial.predictions)
            # The acceptance contract, enforced here so CI fails loudly.
            assert features_identical, f"{n_workers}-worker pool features diverged"
            assert affinity_identical, f"{n_workers}-worker affinity diverged"
            assert labels_identical, f"{n_workers}-worker labels diverged"

            rows.append(
                {
                    "n": dataset.n_examples,
                    "workers": n_workers,
                    "serial_extraction_seconds": round(serial_extract_s, 4),
                    "distributed_extraction_seconds": round(extract_s, 4),
                    "serial_pipeline_seconds": round(serial_s, 4),
                    "distributed_pipeline_seconds": round(labeled_s, 4),
                    "streamed_results": streamed,
                    "shards_completed": queue_stats["completed"],
                    "features_bit_identical": features_identical,
                    "affinity_bit_identical": affinity_identical,
                    "labels_bit_identical": labels_identical,
                }
            )
        return rows

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    update_trajectory(JSON_PATH, "extraction", measured)

    lines = [
        f"Distributed feature extraction (N={measured[0]['n']}, layers={list(LAYERS)}, "
        f"batch_size={BATCH_SIZE}, streaming forced on)"
    ]
    for row in measured:
        lines.append(
            f"  {row['workers']} worker(s): extraction {row['distributed_extraction_seconds']:.2f}s "
            f"(serial {row['serial_extraction_seconds']:.2f}s), pipeline "
            f"{row['distributed_pipeline_seconds']:.2f}s (serial {row['serial_pipeline_seconds']:.2f}s), "
            f"{row['streamed_results']} streamed results — features/affinity/labels "
            f"bit-identical: {row['features_bit_identical']}/{row['affinity_bit_identical']}"
            f"/{row['labels_bit_identical']}"
        )
    lines.append(f"trajectory artifact: {JSON_PATH.name} (section 'extraction')")
    record_result("\n".join(lines))
