"""Shared benchmark configuration.

Benchmarks regenerate every table and figure of the paper's §5.  Scale
is controlled by environment variables so CI can run a quick pass while
a full reproduction uses more seeds:

* ``REPRO_BENCH_SEEDS``  — runs averaged per experiment cell (default 3)
* ``REPRO_BENCH_N``      — images per class per run (default 40)

Rendered paper-vs-measured tables are printed and also appended to
``benchmarks/results.txt`` so they survive pytest's output capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.eval.harness import ExperimentSettings

RESULTS_PATH = Path(__file__).parent / "results.txt"


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return ExperimentSettings(
        n_per_class=int(os.environ.get("REPRO_BENCH_N", "40")),
        n_seeds=int(os.environ.get("REPRO_BENCH_SEEDS", "5")),
    )


@pytest.fixture(scope="session")
def record_result():
    """Print a rendered experiment block and append it to results.txt."""
    RESULTS_PATH.write_text("")

    def _record(text: str) -> None:
        print("\n" + text)
        with RESULTS_PATH.open("a") as handle:
            handle.write(text + "\n\n")

    return _record
