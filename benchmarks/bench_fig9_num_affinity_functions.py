"""Figure 9: labeling accuracy vs number of affinity functions.

Paper shape: "Accuracy increases as the number of affinity functions
increases for all datasets ... more affinity functions brings more
information that the inference module can exploit."
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.harness import run_fig9
from repro.eval.tables import format_curve

FUNCTION_COUNTS = (5, 10, 20, 30, 40, 50)


@pytest.mark.benchmark(group="fig9")
def test_fig9_accuracy_vs_function_count(benchmark, settings, record_result):
    def sweep():
        curves = {}
        for dataset in ("cub", "gtsrb", "surface", "tbxray", "pnxray"):
            per_seed = [
                run_fig9(settings, dataset, function_counts=FUNCTION_COUNTS, run_seed=s)
                for s in range(settings.n_seeds)
            ]
            curves[dataset] = {
                count: float(np.mean([run[count] for run in per_seed])) for count in FUNCTION_COUNTS
            }
        return curves

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1)
    pieces = []
    for dataset, curve in curves.items():
        pieces.append(format_curve(curve, f"Figure 9 — {dataset}", "alpha", "accuracy %"))
    pieces.append("paper shape: accuracy increases with the number of affinity functions")
    record_result("\n".join(pieces))

    # Shape: the full library should beat the small library on average.
    small = np.mean([curve[5] for curve in curves.values()])
    full = np.mean([curve[50] for curve in curves.values()])
    assert full >= small, "average accuracy must not decrease with more affinity functions"
