"""Runtime scaling of the hierarchical model (§5.3's running-time note).

The paper: "without parallelization, our generative model is α (the
number of base models) slower than the GMM model ... in practice we can
parallelize all of the base models".  We measure inference wall time vs
the number of affinity functions and vs the number of instances, and
check the α-linearity claim.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.affinity import _layer_affinity_blocks, compute_affinity_matrix
from repro.core.inference.hierarchical import HierarchicalConfig, HierarchicalModel
from repro.datasets import make_dataset
from repro.engine import AffinityEngine, EngineConfig, PrototypeAffinitySource, tiled_affinity_matrix
from repro.eval.harness import shared_model
from repro.eval.tables import format_curve


@pytest.mark.benchmark(group="runtime")
def test_runtime_scales_linearly_with_functions(benchmark, settings, record_result):
    model = shared_model(settings)
    dataset = make_dataset("cub", n_per_class=settings.n_per_class, seed=0, pair_seed=0)
    affinity = compute_affinity_matrix(model, dataset.images, top_z=10)

    def measure():
        timings = {}
        for alpha in (5, 10, 25, 50):
            subset = affinity.subset_functions(np.arange(alpha))
            start = time.perf_counter()
            HierarchicalModel(HierarchicalConfig(n_classes=2, seed=0)).fit(subset)
            timings[alpha] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_result(
        format_curve({k: round(v, 3) for k, v in timings.items()},
                     "Inference wall time vs alpha (seconds)", "alpha", "seconds")
        + "\npaper claim: hierarchical cost is ~alpha x one base GMM (base models parallelisable)"
    )
    # Linearity check with generous tolerance: 50 functions should cost
    # clearly more than 5, but not super-linearly more.
    ratio = timings[50] / max(timings[5], 1e-9)
    assert 2 <= ratio <= 40, f"cost should grow roughly linearly in alpha, got ratio {ratio:.1f}"


@pytest.mark.benchmark(group="runtime")
def test_affinity_construction_scaling(benchmark, settings, record_result):
    model = shared_model(settings)

    def measure():
        timings = {}
        for n in (10, 20, 40):
            dataset = make_dataset("surface", n_per_class=n, seed=0)
            start = time.perf_counter()
            compute_affinity_matrix(model, dataset.images, top_z=10)
            timings[2 * n] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_result(
        format_curve({k: round(v, 3) for k, v in timings.items()},
                     "Affinity matrix construction vs N (seconds)", "N", "seconds")
    )
    assert timings[80] > timings[20], "larger datasets must cost more"


@pytest.mark.benchmark(group="runtime")
def test_tiled_vs_naive_affinity_construction(benchmark, settings, record_result, tmp_path):
    """Tiled engine vs the legacy per-image loop, N=80, affinity stage.

    Measures the similarity-construction stage (pool features are the
    previous stage's product and identical in both paths), then the
    end-to-end engine with a cold and a warm artifact cache.
    """
    model = shared_model(settings)
    dataset = make_dataset("surface", n_per_class=settings.n_per_class, seed=0)
    n = dataset.n_examples
    layers = tuple(range(model.N_POOL_LAYERS))
    pools = model.forward_pools(dataset.images)
    pool_map = dict(enumerate(pools))

    def timed(fn):
        # min over 2 runs: one-core CI boxes are noisy enough to matter
        best, result = np.inf, None
        for _ in range(2):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
        return best, result

    def measure():
        timings: dict[str, float] = {}
        timings["naive"], naive_blocks = timed(
            lambda: [_layer_affinity_blocks(pools[layer], 10) for layer in layers]
        )
        naive = np.concatenate([b for lb in naive_blocks for b in lb], axis=1)

        timings["tiled_f64"], tiled64 = timed(lambda: tiled_affinity_matrix(pool_map, 10, layers, n_jobs=4))
        timings["tiled_f32"], tiled32 = timed(
            lambda: tiled_affinity_matrix(pool_map, 10, layers, n_jobs=4, dtype=np.float32)
        )

        # float64 tiling agrees to the last ulp (BLAS kernel choice may
        # round differently for different GEMM shapes); float32 to ~1e-6.
        assert np.allclose(naive, tiled64.values, atol=1e-12, rtol=0.0)
        assert np.allclose(naive, tiled32.values), "float32 tiling must stay within allclose"

        engine = AffinityEngine(
            PrototypeAffinitySource(model, top_z=10),
            EngineConfig(batch_size=32, n_jobs=4, precision="float32", cache_dir=str(tmp_path)),
        )
        start = time.perf_counter()
        cold = engine.build(dataset.images, keep_state=False)
        timings["engine_cold"] = time.perf_counter() - start
        start = time.perf_counter()
        warm = engine.build(dataset.images, keep_state=False)
        timings["engine_warm"] = time.perf_counter() - start
        assert np.array_equal(cold.values, warm.values), "warm rerun must load the cached bytes"
        assert np.allclose(naive, cold.values)
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = timings["naive"] / max(timings["tiled_f32"], 1e-9)
    record_result(
        format_curve({1: round(timings["naive"], 3), 2: round(timings["tiled_f64"], 3),
                      3: round(timings["tiled_f32"], 3)},
                     f"Affinity construction stage at N={n} (1=naive, 2=tiled f64, 3=tiled f32; seconds)",
                     "variant", "seconds")
        + f"\ntiled (float32, n_jobs=4) speedup over naive: {speedup:.2f}x"
        + f"\nengine end-to-end: cold cache {timings['engine_cold']:.3f}s, "
          f"warm cache {timings['engine_warm']:.3f}s"
    )
    if n >= 80:
        # The >=2x claim is for the paper-scale protocol; at smoke sizes
        # fixed per-call overhead dominates and the ratio is meaningless.
        assert speedup >= 2.0, f"tiled affinity construction should be >=2x naive, got {speedup:.2f}x"
    assert timings["engine_warm"] < timings["engine_cold"], "cache-warm rerun must be faster"
