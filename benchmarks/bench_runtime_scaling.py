"""Runtime scaling of the hierarchical model (§5.3's running-time note).

The paper: "without parallelization, our generative model is α (the
number of base models) slower than the GMM model ... in practice we can
parallelize all of the base models".  We measure inference wall time vs
the number of affinity functions and vs the number of instances, and
check the α-linearity claim.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.inference.hierarchical import HierarchicalConfig, HierarchicalModel
from repro.datasets import make_dataset
from repro.eval.harness import shared_model
from repro.core.affinity import compute_affinity_matrix
from repro.eval.tables import format_curve


@pytest.mark.benchmark(group="runtime")
def test_runtime_scales_linearly_with_functions(benchmark, settings, record_result):
    model = shared_model(settings)
    dataset = make_dataset("cub", n_per_class=settings.n_per_class, seed=0, pair_seed=0)
    affinity = compute_affinity_matrix(model, dataset.images, top_z=10)

    def measure():
        timings = {}
        for alpha in (5, 10, 25, 50):
            subset = affinity.subset_functions(np.arange(alpha))
            start = time.perf_counter()
            HierarchicalModel(HierarchicalConfig(n_classes=2, seed=0)).fit(subset)
            timings[alpha] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_result(
        format_curve({k: round(v, 3) for k, v in timings.items()},
                     "Inference wall time vs alpha (seconds)", "alpha", "seconds")
        + "\npaper claim: hierarchical cost is ~alpha x one base GMM (base models parallelisable)"
    )
    # Linearity check with generous tolerance: 50 functions should cost
    # clearly more than 5, but not super-linearly more.
    ratio = timings[50] / max(timings[5], 1e-9)
    assert 2 <= ratio <= 40, f"cost should grow roughly linearly in alpha, got ratio {ratio:.1f}"


@pytest.mark.benchmark(group="runtime")
def test_affinity_construction_scaling(benchmark, settings, record_result):
    model = shared_model(settings)

    def measure():
        timings = {}
        for n in (10, 20, 40):
            dataset = make_dataset("surface", n_per_class=n, seed=0)
            start = time.perf_counter()
            compute_affinity_matrix(model, dataset.images, top_z=10)
            timings[2 * n] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_result(
        format_curve({k: round(v, 3) for k, v in timings.items()},
                     "Affinity matrix construction vs N (seconds)", "N", "seconds")
    )
    assert timings[80] > timings[20], "larger datasets must cost more"
