"""Thin setup.py kept so editable installs work offline (no `wheel` pkg).

All project metadata lives in pyproject.toml; this file only enables the
legacy `pip install -e . --no-use-pep517` path in environments without
network access or the `wheel` package.
"""

from setuptools import setup

setup()
