"""Tests for the dataset container, splits, and dev-set sampling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.base import DevSet, LabeledImageDataset


def _dataset(n_per_class=10, k=2, seed=0):
    rng = np.random.default_rng(seed)
    n = n_per_class * k
    return LabeledImageDataset(
        name="toy",
        images=rng.random((n, 3, 16, 16)),
        labels=np.repeat(np.arange(k), n_per_class),
        class_names=tuple(f"c{i}" for i in range(k)),
    )


class TestConstruction:
    def test_basic_properties(self):
        ds = _dataset()
        assert ds.n_examples == 20
        assert ds.n_classes == 2
        assert ds.image_shape == (3, 16, 16)
        np.testing.assert_array_equal(ds.class_counts(), [10, 10])

    def test_label_image_mismatch(self):
        with pytest.raises(ValueError, match="disagree"):
            LabeledImageDataset(
                name="bad",
                images=np.random.default_rng(0).random((4, 3, 16, 16)),
                labels=np.zeros(3, dtype=np.int64),
                class_names=("a", "b"),
            )

    def test_label_out_of_range(self):
        with pytest.raises(ValueError):
            LabeledImageDataset(
                name="bad",
                images=np.random.default_rng(0).random((2, 3, 16, 16)),
                labels=np.array([0, 5]),
                class_names=("a", "b"),
            )

    def test_attribute_row_mismatch(self):
        with pytest.raises(ValueError, match="one row per image"):
            LabeledImageDataset(
                name="bad",
                images=np.random.default_rng(0).random((4, 3, 16, 16)),
                labels=np.zeros(4, dtype=np.int64),
                class_names=("a",),
                attributes=np.zeros((3, 5)),
            )


class TestSubset:
    def test_subset_preserves_alignment(self):
        ds = _dataset()
        sub = ds.subset(np.array([0, 5, 12]))
        assert sub.n_examples == 3
        np.testing.assert_array_equal(sub.labels, ds.labels[[0, 5, 12]])
        np.testing.assert_array_equal(sub.images[1], ds.images[5])

    def test_empty_subset_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            _dataset().subset(np.array([], dtype=np.int64))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            _dataset().subset(np.array([99]))


class TestSplit:
    def test_partition(self):
        ds = _dataset(n_per_class=10)
        train, test = ds.split(0.6, seed=1)
        assert train.n_examples + test.n_examples == ds.n_examples

    def test_stratified(self):
        ds = _dataset(n_per_class=10)
        train, test = ds.split(0.6, seed=2)
        np.testing.assert_array_equal(train.class_counts(), [6, 6])
        np.testing.assert_array_equal(test.class_counts(), [4, 4])

    def test_deterministic(self):
        ds = _dataset()
        a_train, _ = ds.split(0.5, seed=3)
        b_train, _ = ds.split(0.5, seed=3)
        np.testing.assert_array_equal(a_train.labels, b_train.labels)
        np.testing.assert_array_equal(a_train.images, b_train.images)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError, match="train_fraction"):
            _dataset().split(1.0)

    @given(st.floats(min_value=0.2, max_value=0.8))
    @settings(max_examples=10, deadline=None)
    def test_no_leakage(self, fraction):
        ds = _dataset(n_per_class=8, seed=4)
        train, test = ds.split(fraction, seed=0)
        train_rows = {img.tobytes() for img in train.images}
        test_rows = {img.tobytes() for img in test.images}
        assert not train_rows & test_rows


class TestDevSet:
    def test_sizes_and_labels(self):
        ds = _dataset(n_per_class=10)
        dev = ds.sample_dev_set(3, seed=0)
        assert dev.size == 6
        np.testing.assert_array_equal(dev.per_class_counts(2), [3, 3])
        np.testing.assert_array_equal(ds.labels[dev.indices], dev.labels)

    def test_zero_size(self):
        dev = _dataset().sample_dev_set(0)
        assert dev.size == 0

    def test_too_large_request(self):
        with pytest.raises(ValueError, match="need"):
            _dataset(n_per_class=4).sample_dev_set(5)

    def test_deterministic(self):
        ds = _dataset()
        np.testing.assert_array_equal(
            ds.sample_dev_set(2, seed=7).indices, ds.sample_dev_set(2, seed=7).indices
        )

    def test_no_duplicates(self):
        dev = _dataset(n_per_class=10).sample_dev_set(5, seed=1)
        assert np.unique(dev.indices).size == dev.size

    def test_devset_validation(self):
        with pytest.raises(ValueError, match="align"):
            DevSet(indices=np.array([1, 2]), labels=np.array([0]))
