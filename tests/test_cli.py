"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_label_command(self, capsys):
        code = main(["--n-per-class", "8", "--dev-per-class", "2", "label", "--dataset", "surface"])
        assert code == 0
        out = capsys.readouterr().out
        assert "labeling accuracy" in out

    def test_fig7_command(self, capsys):
        code = main(["fig7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "eta=0.8" in out

    def test_fig2_command(self, capsys):
        code = main(["--n-per-class", "8", "--seeds", "1", "fig2", "--dataset", "surface"])
        assert code == 0
        assert "AUC" in capsys.readouterr().out

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["label", "--dataset", "imagenet"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
