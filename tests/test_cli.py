"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_label_command(self, capsys):
        code = main(["--n-per-class", "8", "--dev-per-class", "2", "label", "--dataset", "surface"])
        assert code == 0
        out = capsys.readouterr().out
        assert "labeling accuracy" in out

    def test_fig7_command(self, capsys):
        code = main(["fig7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "eta=0.8" in out

    def test_fig2_command(self, capsys):
        code = main(["--n-per-class", "8", "--seeds", "1", "fig2", "--dataset", "surface"])
        assert code == 0
        assert "AUC" in capsys.readouterr().out

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["label", "--dataset", "imagenet"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_label_with_engine_knobs(self, capsys, tmp_path):
        """--executor/--precision/--cache knobs reach the engine."""
        code = main([
            "--n-per-class",
            "8",
            "--dev-per-class",
            "2",
            "--executor",
            "serial",
            "--precision",
            "float32",
            "--cache-dir",
            str(tmp_path),
            "--cache-max-bytes",
            "100000000",
            "--no-keep-corpus-state",
            "label",
            "--dataset",
            "surface",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "labeling accuracy" in out
        assert "evictions" in out  # cache stats line includes the new counter

    def test_invalid_executor_rejected(self):
        with pytest.raises(SystemExit):
            main(["--executor", "gpu", "label", "--dataset", "surface"])

    def test_invalid_precision_rejected(self):
        with pytest.raises(SystemExit):
            main(["--precision", "float16", "label", "--dataset", "surface"])

    def test_serve_command(self, capsys):
        code = main([
            "--n-per-class",
            "8",
            "--dev-per-class",
            "2",
            "serve",
            "--dataset",
            "surface",
            "--stream-batch",
            "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "seed corpus" in out
        assert "streaming accuracy" in out
        assert "incremental runs" in out

    def test_serve_online_command(self, capsys):
        """--online streams through the O(batch) mini-batch EM loop and
        reports the session's drift/refit stats."""
        code = main([
            "--n-per-class",
            "8",
            "--dev-per-class",
            "2",
            "serve",
            "--dataset",
            "surface",
            "--stream-batch",
            "3",
            "--online",
            "--drift-threshold",
            "50.0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "online mode: fresh online state" in out
        assert "streaming accuracy" in out
        assert "online session:" in out and "drift" in out

    def test_serve_online_refit_every(self, capsys):
        code = main([
            "--n-per-class",
            "8",
            "--dev-per-class",
            "2",
            "serve",
            "--dataset",
            "surface",
            "--stream-batch",
            "4",
            "--online",
            "--refit-every",
            "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "refit(s)" in out

    def test_serve_tenant_flag_namespaces_tickets(self, capsys):
        code = main([
            "--n-per-class",
            "8",
            "--dev-per-class",
            "2",
            "serve",
            "--dataset",
            "surface",
            "--stream-batch",
            "4",
            "--tenant",
            "acme",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "acme-t" in out  # streamed tickets carry the tenant namespace

    def test_metrics_tenant_filter(self, capsys):
        from repro.obs import default_registry

        counter = default_registry().counter(
            "goggles_cli_test_total", "CLI filter probe.", labelnames=("tenant",)
        )
        counter.inc(tenant="acme")
        counter.inc(tenant="other")
        code = main(["metrics", "--tenant", "acme"])
        assert code == 0
        out = capsys.readouterr().out
        samples = [line for line in out.splitlines() if not line.startswith("#")]
        assert any('goggles_cli_test_total{tenant="acme"}' in line for line in samples)
        assert all('tenant="acme"' in line for line in samples)

    def test_tenants_command_lists_and_evicts(self, capsys, vgg, small_surface):
        import numpy as np

        from repro.core import GogglesConfig
        from repro.datasets.base import DevSet
        from repro.obs import MetricsRegistry
        from repro.serving import TenantRegistry, serve_http

        images = small_surface.images
        n0 = images.shape[0] - 6
        labels = small_surface.labels[:n0]
        indices = np.concatenate([np.flatnonzero(labels == k)[:3] for k in range(2)])
        dev = DevSet(indices=indices, labels=labels[indices])
        config = GogglesConfig(n_classes=2, seed=0, top_z=3, layers=(1, 2), n_jobs=2)
        registry = TenantRegistry(base_config=config, model=vgg, metrics=MetricsRegistry())
        registry.register("acme", images[:n0], dev)
        server = serve_http(registry)
        try:
            assert main(["tenants", "--url", server.url]) == 0
            out = capsys.readouterr().out
            assert "acme" in out and "active" in out
            assert main(["tenants", "--url", server.url, "--evict", "acme"]) == 0
            assert "acme: evicted" in capsys.readouterr().out
            assert main(["tenants", "--url", server.url, "--evict", "acme", "--forget"]) == 0
            assert "acme: removed" in capsys.readouterr().out
            assert main(["tenants", "--url", server.url]) == 0
            assert "no tenants registered" in capsys.readouterr().out
        finally:
            server.shutdown()
            registry.close()

    def test_tenants_forget_requires_evict(self):
        with pytest.raises(SystemExit, match="--forget needs --evict"):
            main(["tenants", "--url", "http://127.0.0.1:1", "--forget"])

    def test_serve_initial_fraction_validated(self):
        with pytest.raises(SystemExit, match="initial"):
            main([
                "--n-per-class",
                "8",
                "--dev-per-class",
                "2",
                "serve",
                "--dataset",
                "surface",
                "--initial-fraction",
                "1.0",
            ])


class TestDistributedCli:
    def test_coordinator_command_runs_local_cluster(self, capsys):
        """The coordinator verb spawns workers, shards the job, and
        reports shard stats alongside the accuracy."""
        code = main([
            "--n-per-class",
            "6",
            "--dev-per-class",
            "2",
            "coordinator",
            "--dataset",
            "surface",
            "--bind",
            "127.0.0.1:0",
            "--spawn-workers",
            "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "coordinator listening on" in out
        assert "labeling accuracy" in out
        assert "shards:" in out and "completed" in out

    def test_worker_requires_valid_address(self):
        with pytest.raises(SystemExit):
            main(["worker"])  # --connect is required
        with pytest.raises(ValueError, match="host:port"):
            main(["worker", "--connect", "nonsense"])

    def test_cache_info_reports_entries(self, capsys, tmp_path):
        import numpy as np

        from repro.engine import ArtifactCache

        cache = ArtifactCache(str(tmp_path))
        cache.save_arrays("shard", "a" * 64, {"best": np.zeros((2, 2))})
        cache.save_arrays("affinity", "b" * 64, {"values": np.ones(3)})
        code = main(["--cache-dir", str(tmp_path), "cache-info"])
        assert code == 0
        out = capsys.readouterr().out
        assert "shard" in out and "affinity" in out
        assert "2 entries" in out  # the total line
        assert "evictions" in out

    def test_cache_info_requires_cache_dir(self):
        with pytest.raises(SystemExit, match="cache-dir"):
            main(["cache-info"])


class TestMetricsAndTrace:
    def test_metrics_unreachable_url_exits_nonzero_with_one_line(self, capsys):
        # Port 1 is never listening; must not traceback, must not exit 0.
        code = main(["metrics", "--url", "http://127.0.0.1:1", "--timeout", "0.5"])
        assert code == 1
        captured = capsys.readouterr()
        assert captured.out == ""
        errors = [line for line in captured.err.splitlines() if line]
        assert len(errors) == 1
        assert errors[0].startswith("error: cannot scrape")

    def test_trace_renders_local_timeline(self, capsys):
        from repro.obs import MetricsRegistry, clear_spans, new_trace_id, span, trace_context

        clear_spans()
        trace_id = new_trace_id()
        registry = MetricsRegistry()
        with trace_context(trace_id):
            with span("http.submit", registry):
                pass
            with span("service.batch", registry):
                pass
        code = main(["trace", trace_id])
        assert code == 0
        out = capsys.readouterr().out
        assert trace_id in out and "2 span(s)" in out
        assert "http.submit" in out and "service.batch" in out
        assert "local" in out  # spans recorded in-process have no worker

    def test_trace_unknown_id_exits_nonzero(self, capsys):
        from repro.obs import clear_spans

        clear_spans()
        code = main(["trace", "no-such-trace"])
        assert code == 1
        assert "no spans recorded" in capsys.readouterr().err

    def test_trace_against_server(self, capsys):
        from repro.obs import (
            MetricsRegistry,
            clear_spans,
            new_trace_id,
            record_span,
            span,
            trace_context,
        )
        from repro.obs.trace import SpanRecord
        from repro.serving import TenantRegistry, serve_http

        clear_spans()
        trace_id = new_trace_id()
        with trace_context(trace_id), span("http.submit", MetricsRegistry()):
            pass
        # A merged worker-side span joins the same timeline.
        record_span(
            SpanRecord(
                name="shard.base-fit", trace_id=trace_id, seconds=0.5,
                outcome="ok", started_at=0.0, worker="worker-7",
            )
        )
        server = serve_http(TenantRegistry(metrics=MetricsRegistry()))
        try:
            code = main(["trace", trace_id, "--url", server.url])
            assert code == 0
            out = capsys.readouterr().out
            assert "shard.base-fit" in out and "worker-7" in out
            assert main(["trace", "missing", "--url", server.url]) == 1
            assert "no spans recorded" in capsys.readouterr().err
        finally:
            server.shutdown()
