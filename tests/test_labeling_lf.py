"""Tests for the labeling-function substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.labeling.lf import (
    ABSTAIN,
    LabelingFunction,
    apply_labeling_functions,
    attribute_lfs_from_dataset,
    lf_summary,
)


class TestLabelingFunction:
    def test_vote_passthrough(self):
        lf = LabelingFunction("always1", lambda i: 1)
        assert lf(0) == 1

    def test_abstain_allowed(self):
        lf = LabelingFunction("abstainer", lambda i: ABSTAIN)
        assert lf(5) == ABSTAIN

    def test_invalid_vote_rejected(self):
        lf = LabelingFunction("bad", lambda i: -7)
        with pytest.raises(ValueError, match="invalid vote"):
            lf(0)


class TestApplyLabelingFunctions:
    def test_matrix_shape_and_values(self):
        lfs = [
            LabelingFunction("even", lambda i: 0 if i % 2 == 0 else ABSTAIN),
            LabelingFunction("odd", lambda i: 1 if i % 2 == 1 else ABSTAIN),
        ]
        votes = apply_labeling_functions(lfs, 4)
        np.testing.assert_array_equal(votes[:, 0], [0, ABSTAIN, 0, ABSTAIN])
        np.testing.assert_array_equal(votes[:, 1], [ABSTAIN, 1, ABSTAIN, 1])

    def test_empty_lfs_rejected(self):
        with pytest.raises(ValueError):
            apply_labeling_functions([], 4)


class TestAttributeLfs(object):
    def test_built_from_cub(self, small_cub):
        lfs = attribute_lfs_from_dataset(small_cub)
        assert len(lfs) >= 2
        votes = apply_labeling_functions(lfs, small_cub.n_examples)
        active = votes[votes != ABSTAIN]
        assert set(np.unique(active)) <= {0, 1}

    def test_shared_attributes_skipped(self, small_cub):
        """An attribute present in both classes cannot discriminate."""
        shared = np.flatnonzero(small_cub.class_attributes.sum(axis=0) == 2)
        lfs = attribute_lfs_from_dataset(small_cub)
        names = " ".join(lf.name for lf in lfs)
        for a in shared:
            assert small_cub.attribute_names[a] not in names

    def test_lfs_better_than_random(self, small_cub):
        lfs = attribute_lfs_from_dataset(small_cub)
        votes = apply_labeling_functions(lfs, small_cub.n_examples)
        summary = lf_summary(votes, small_cub.labels)
        assert np.nanmean(summary["accuracy"]) > 0.55

    def test_requires_attributes(self, small_surface):
        with pytest.raises(ValueError, match="no attribute metadata"):
            attribute_lfs_from_dataset(small_surface)


class TestLfSummary:
    def test_coverage(self):
        votes = np.array([[0, ABSTAIN], [1, ABSTAIN], [ABSTAIN, 1]])
        summary = lf_summary(votes)
        np.testing.assert_allclose(summary["coverage"], [2 / 3, 1 / 3])

    def test_accuracy(self):
        votes = np.array([[0, 1], [1, 1], [ABSTAIN, 0]])
        labels = np.array([0, 1, 0])
        summary = lf_summary(votes, labels)
        np.testing.assert_allclose(summary["accuracy"], [1.0, 2 / 3])

    def test_all_abstain_nan(self):
        votes = np.full((3, 1), ABSTAIN)
        summary = lf_summary(votes, np.zeros(3, dtype=np.int64))
        assert np.isnan(summary["accuracy"][0])
