"""Tests for the engine's chunked extraction and tiled affinity kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.affinity import _EPS, _layer_affinity_blocks, compute_affinity_matrix
from repro.core.prototypes import extract_prototypes
from repro.engine import (
    assemble_blocks,
    best_similarities,
    extract_pool_features,
    iter_batches,
    tiled_affinity_matrix,
    tiled_layer_affinity_blocks,
    unique_unit_prototypes,
    unit_location_vectors,
)


@pytest.fixture(scope="module")
def filter_maps() -> np.ndarray:
    rng = np.random.default_rng(7)
    return rng.standard_normal((9, 6, 4, 5))


class TestIterBatches:
    def test_covers_range_exactly(self):
        slices = list(iter_batches(10, 3))
        assert [(s.start, s.stop) for s in slices] == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_none_is_single_batch(self):
        assert [(s.start, s.stop) for s in iter_batches(5, None)] == [(0, 5)]

    def test_oversized_batch(self):
        assert [(s.start, s.stop) for s in iter_batches(4, 100)] == [(0, 4)]

    def test_invalid(self):
        with pytest.raises(ValueError):
            list(iter_batches(5, 0))
        with pytest.raises(ValueError):
            list(iter_batches(0, 2))


class TestChunkedExtraction:
    def test_matches_single_pass(self, vgg, tiny_images):
        whole = vgg.forward_pools(tiny_images)
        chunked = extract_pool_features(vgg, tiny_images, batch_size=3)
        for layer in range(vgg.N_POOL_LAYERS):
            np.testing.assert_array_equal(chunked[layer], whole[layer])

    def test_layer_subset(self, vgg, tiny_images):
        out = extract_pool_features(vgg, tiny_images, layers=(1, 4), batch_size=2)
        assert set(out) == {1, 4}

    def test_bad_layer(self, vgg, tiny_images):
        with pytest.raises(ValueError, match="layer"):
            extract_pool_features(vgg, tiny_images, layers=(9,))

    def test_empty_layers(self, vgg, tiny_images):
        with pytest.raises(ValueError, match="at least one layer"):
            extract_pool_features(vgg, tiny_images, layers=())


class TestUniquePrototypes:
    def test_matches_per_image_reference(self, filter_maps):
        """Vectorised extraction reproduces select_top_z + padded_vectors."""
        z = 4
        table = unique_unit_prototypes(filter_maps, z)
        reference_sets = extract_prototypes(filter_maps, z)
        offset = 0
        for j, pset in enumerate(reference_sets):
            unit = pset.vectors / np.maximum(np.linalg.norm(pset.vectors, axis=1, keepdims=True), _EPS)
            rows = table.vectors[offset : offset + pset.n_prototypes]
            np.testing.assert_array_equal(rows, unit)
            padded = pset.padded_vectors(z)
            padded_unit = padded / np.maximum(np.linalg.norm(padded, axis=1, keepdims=True), _EPS)
            np.testing.assert_array_equal(table.vectors[table.rank_rows[j]], padded_unit)
            offset += pset.n_prototypes
        assert table.n_rows == offset

    def test_shifted(self, filter_maps):
        table = unique_unit_prototypes(filter_maps, 3)
        shifted = table.shifted(100)
        np.testing.assert_array_equal(shifted.rank_rows, table.rank_rows + 100)
        assert shifted.vectors is table.vectors

    def test_bad_z(self, filter_maps):
        with pytest.raises(ValueError, match="z"):
            unique_unit_prototypes(filter_maps, 0)


class TestBestSimilarities:
    def test_brute_force_reference(self, filter_maps):
        vectors = unit_location_vectors(filter_maps)
        table = unique_unit_prototypes(filter_maps, 3)
        best = best_similarities(table.vectors, vectors, row_tile=2, col_tile=5)
        n, _, p = vectors.shape
        for r in range(table.n_rows):
            for i in range(n):
                expected = max(float(table.vectors[r] @ vectors[i, :, q]) for q in range(p))
                assert best[r, i] == pytest.approx(expected, abs=1e-12)

    def test_tiling_is_value_neutral(self, filter_maps):
        vectors = unit_location_vectors(filter_maps)
        table = unique_unit_prototypes(filter_maps, 4)
        reference = best_similarities(table.vectors, vectors, row_tile=None, col_tile=None)
        for row_tile, col_tile in [(1, None), (4, 3), (None, 2), (3, 1)]:
            tiled = best_similarities(table.vectors, vectors, row_tile=row_tile, col_tile=col_tile)
            np.testing.assert_allclose(tiled, reference, atol=1e-12, rtol=0.0)

    def test_bad_tile(self, filter_maps):
        vectors = unit_location_vectors(filter_maps)
        table = unique_unit_prototypes(filter_maps, 2)
        with pytest.raises(ValueError, match="tile"):
            best_similarities(table.vectors, vectors, row_tile=0)

    def test_out_dtype_is_storage_only(self, filter_maps):
        """``out_dtype`` changes the output array dtype, not the compute:
        the float32-stored result is exactly the float64 result cast."""
        vectors = unit_location_vectors(filter_maps)
        table = unique_unit_prototypes(filter_maps, 3)
        reference = best_similarities(table.vectors, vectors)
        stored = best_similarities(table.vectors, vectors, out_dtype=np.float32)
        assert stored.dtype == np.float32
        np.testing.assert_array_equal(stored, reference.astype(np.float32))

    @given(
        n_images=st.integers(min_value=2, max_value=6),
        n_rows=st.integers(min_value=2, max_value=10),
        n_positions=st.integers(min_value=1, max_value=8),
        depth=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_float32_kernel_tracks_float64(self, n_images, n_rows, n_positions, depth, seed):
        """Property (sparse-path contract): the float32 similarity kernel
        agrees with the float64 kernel to ~1e-6 on unit-scale inputs, at
        every tiling."""
        rng = np.random.default_rng(seed)
        prototypes = rng.standard_normal((n_rows, depth))
        prototypes /= np.maximum(np.linalg.norm(prototypes, axis=1, keepdims=True), _EPS)
        vectors = rng.standard_normal((n_images, depth, n_positions))
        vectors /= np.maximum(np.linalg.norm(vectors, axis=1, keepdims=True), _EPS)
        exact = best_similarities(prototypes, vectors)
        half = best_similarities(prototypes, vectors, dtype=np.float32, row_tile=3)
        np.testing.assert_allclose(half, exact, atol=2e-6, rtol=0.0)


class TestAssembleBlocks:
    def test_replicates_rows(self):
        best = np.arange(12, dtype=np.float64).reshape(4, 3)  # 4 unique rows, 3 images
        rank_rows = np.array([[0, 0], [1, 2], [3, 3]])  # 3 column images, Z=2
        blocks = assemble_blocks(best, rank_rows)
        assert blocks.shape == (2, 3, 3)
        for z in range(2):
            for i in range(3):
                for j in range(3):
                    assert blocks[z, i, j] == best[rank_rows[j, z], i]


class TestTiledVsNaive:
    def test_layer_blocks_equal(self, filter_maps):
        for z in (1, 3, 7):
            naive = _layer_affinity_blocks(filter_maps, z)
            tiled = tiled_layer_affinity_blocks(filter_maps, z, row_tile=4, col_tile=6)
            np.testing.assert_allclose(tiled, naive, atol=1e-12, rtol=0.0)

    def test_full_matrix_matches_legacy(self, vgg, tiny_images):
        naive = compute_affinity_matrix(vgg, tiny_images, top_z=3, layers=(0, 2))
        pools = extract_pool_features(vgg, tiny_images, layers=(0, 2), batch_size=2)
        tiled = tiled_affinity_matrix(pools, 3, (0, 2), row_tile=2, n_jobs=2)
        np.testing.assert_allclose(tiled.values, naive.values, atol=1e-12, rtol=0.0)
        assert tiled.function_ids == naive.function_ids

    def test_parallel_matches_serial(self, filter_maps):
        serial = tiled_layer_affinity_blocks(filter_maps, 4)
        pools = {0: filter_maps}
        parallel = tiled_affinity_matrix(pools, 4, (0,), row_tile=2, col_tile=4, n_jobs=4)
        np.testing.assert_array_equal(parallel.values, np.concatenate(list(serial), axis=1))

    def test_float32_within_allclose(self, filter_maps):
        naive = _layer_affinity_blocks(filter_maps, 5)
        tiled = tiled_layer_affinity_blocks(filter_maps, 5, dtype=np.float32)
        assert tiled.dtype == np.float64  # outputs always float64
        assert np.allclose(tiled, naive)

    def test_validation(self, filter_maps):
        with pytest.raises(ValueError, match="at least one layer"):
            tiled_affinity_matrix({0: filter_maps}, 2, ())
        with pytest.raises(ValueError, match="top_z"):
            tiled_affinity_matrix({0: filter_maps}, 0, (0,))
