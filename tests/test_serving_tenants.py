"""Tests for multi-tenant serving: TenantRegistry + the /v1 HTTP API.

The isolation contract under test: every tenant owns its service (queue,
worker, ticket table, back-pressure bound), so two tenants with
different label spaces serve concurrently with bit-identical posteriors
to their single-tenant runs, one tenant saturating its bound sheds only
its own traffic, and an evicted tenant reloads transparently — and
bit-identically — on its next request.
"""

from __future__ import annotations

import io
import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import Goggles, GogglesConfig
from repro.datasets.base import DevSet
from repro.obs import MetricsRegistry, default_registry
from repro.serving import (
    BackPressureError,
    LabelingHTTPServer,
    LabelingService,
    TenantConfig,
    TenantExistsError,
    TenantRegistry,
    TenantUnavailableError,
    UnknownTenantError,
    serve_http,
)

TIMEOUT = 120.0

CONFIG = GogglesConfig(n_classes=2, seed=0, top_z=3, layers=(1, 2), n_jobs=2)


def _get(url: str, headers: dict | None = None) -> tuple[int, dict, dict]:
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def _request(method: str, url: str, body: bytes | None = None,
             headers: dict | None = None) -> tuple[int, dict, dict]:
    request = urllib.request.Request(url, data=body, headers=headers or {}, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def _npy_bytes(images: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.save(buffer, images)
    return buffer.getvalue()


def _split(dataset) -> tuple[np.ndarray, np.ndarray, DevSet]:
    """(seed corpus, query batch, dev set) from one small dataset; the
    dev set is drawn from within the seed corpus."""
    images = dataset.images
    n0 = images.shape[0] - 6
    labels = dataset.labels[:n0]
    indices = np.concatenate([np.flatnonzero(labels == k)[:3] for k in range(2)])
    return images[:n0], images[n0:], DevSet(indices=indices, labels=labels[indices])


def _reference_labels(vgg, seed_images, queries, dev) -> np.ndarray:
    """What a dedicated single-tenant service answers for ``queries``."""
    service = LabelingService(Goggles(CONFIG, model=vgg), dev, registry=MetricsRegistry())
    service.start(seed_images)
    with service:
        status = service.result(service.submit(queries), timeout=TIMEOUT)
    assert status.done
    return status.probabilistic_labels


@pytest.fixture(scope="module")
def stack(vgg, small_surface, small_cub):
    """One registry hosting three tenants (+ its HTTP server).

    ``alpha`` (surface) and ``beta`` (cub) are unbounded; ``bounded``
    (surface) has a 1-pixel queue bound so every submission to it sheds
    deterministically.
    """
    metrics = MetricsRegistry()
    registry = TenantRegistry(base_config=CONFIG, model=vgg, metrics=metrics)
    surface_seed, surface_queries, surface_dev = _split(small_surface)
    cub_seed, cub_queries, cub_dev = _split(small_cub)
    registry.register("alpha", surface_seed, surface_dev)
    registry.register("beta", cub_seed, cub_dev)
    registry.register(
        "bounded", surface_seed, surface_dev,
        TenantConfig(max_queued_pixels=1, retry_after=7.0),
    )
    server = serve_http(registry)
    data = {
        "alpha": (surface_seed, surface_queries, surface_dev),
        "beta": (cub_seed, cub_queries, cub_dev),
    }
    yield registry, server, data
    server.shutdown()
    registry.close()


class TestRegistryLifecycle:
    def test_describe_and_lookup(self, stack):
        registry, _, _ = stack
        assert registry.tenant_ids() == ["alpha", "beta", "bounded"]
        assert "alpha" in registry and "nope" not in registry
        rows = {row["id"]: row for row in registry.describe()}
        assert rows["alpha"]["state"] == "active"
        assert rows["alpha"]["mode"] == "batch"
        assert rows["alpha"]["resident_bytes"] > 0
        assert rows["bounded"]["max_queued_pixels"] == 1
        assert registry.resident_bytes() >= rows["alpha"]["resident_bytes"]

    def test_duplicate_and_invalid_ids(self, stack):
        registry, _, data = stack
        seed, _, dev = data["alpha"]
        with pytest.raises(TenantExistsError):
            registry.register("alpha", seed, dev)
        with pytest.raises(ValueError, match="invalid tenant id"):
            registry.register("bad/slash", seed, dev)
        with pytest.raises(UnknownTenantError):
            registry.get("nope")
        with pytest.raises(UnknownTenantError):
            registry.submit("nope", seed[:1])

    def test_config_validation(self):
        with pytest.raises(ValueError, match="mode"):
            TenantConfig(mode="nope")
        with pytest.raises(ValueError, match="n_classes"):
            TenantConfig(n_classes=1)
        with pytest.raises(ValueError, match="max_queued_pixels"):
            TenantConfig(max_queued_pixels=0)
        with pytest.raises(ValueError, match="retry_after"):
            TenantConfig(retry_after=0.0)
        with pytest.raises(ValueError, match="memory_budget_bytes"):
            TenantRegistry(memory_budget_bytes=0)

    def test_ticket_namespace(self, stack):
        registry, _, data = stack
        _, queries, _ = data["alpha"]
        ticket = registry.submit("alpha", queries[:1])
        assert ticket.startswith("alpha-t")
        assert registry.result("alpha", ticket, timeout=TIMEOUT).done
        # The same ticket can never resolve under another tenant.
        with pytest.raises(KeyError):
            registry.poll("beta", ticket)


class TestIsolation:
    def test_concurrent_tenants_bit_identical(self, stack, vgg):
        """Two tenants with different label spaces, submitted to
        concurrently, answer exactly what their single-tenant runs do."""
        registry, _, data = stack
        # Fresh tenants: incremental serving absorbs submitted batches
        # into the corpus, so the reference must see the same history.
        pairs = {"iso-surface": data["alpha"], "iso-cub": data["beta"]}
        for tenant, (seed, _, dev) in pairs.items():
            registry.register(tenant, seed, dev)
        results: dict[str, np.ndarray] = {}
        errors: list[BaseException] = []

        def run(tenant: str) -> None:
            try:
                _, queries, _ = pairs[tenant]
                status = registry.result(
                    tenant, registry.submit(tenant, queries), timeout=TIMEOUT
                )
                assert status.done
                results[tenant] = status.probabilistic_labels
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=run, args=(tenant,)) for tenant in pairs]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=TIMEOUT)
            assert not errors
            for tenant, (seed, queries, dev) in pairs.items():
                expected = _reference_labels(vgg, seed, queries, dev)
                np.testing.assert_array_equal(results[tenant], expected)
        finally:
            for tenant in pairs:
                registry.remove(tenant)

    def test_backpressure_shed_is_per_tenant(self, stack):
        """The bounded tenant sheds its own traffic; alpha's proceeds."""
        registry, _, data = stack
        _, queries, _ = data["alpha"]
        with pytest.raises(BackPressureError) as excinfo:
            registry.submit("bounded", queries[:1])
        assert excinfo.value.bound == 1
        ticket = registry.submit("alpha", queries[:1])
        assert registry.result("alpha", ticket, timeout=TIMEOUT).done


class TestEvictReload:
    def test_evict_then_submit_reloads_bit_identical(self, stack):
        registry, _, data = stack
        seed, queries, dev = data["alpha"]
        # A fresh tenant so the pre-eviction answer is the first batch
        # labeled against the seed fit — exactly what a reload replays.
        handle = registry.register("cycle", seed, dev)
        try:
            before = registry.result("cycle", registry.submit("cycle", queries), timeout=TIMEOUT)
            assert registry.evict("cycle") is True
            assert not handle.active
            assert handle.resident_bytes() == 0
            assert registry.evict("cycle") is False  # idempotent
            # The next submit transparently reloads; the replayed seed
            # fit is fully seeded (and cache-hit when a cache_dir is
            # set), so the reloaded posteriors are bit-identical.
            after = registry.result("cycle", registry.submit("cycle", queries), timeout=TIMEOUT)
            np.testing.assert_array_equal(
                after.probabilistic_labels, before.probabilistic_labels
            )
            assert after.predictions.tolist() == before.predictions.tolist()
            assert handle.n_reloads == 1
            metrics = registry.metrics
            assert metrics.get("goggles_tenant_evictions_total").value(tenant="cycle") == 1
            assert metrics.get("goggles_tenant_reloads_total").value(tenant="cycle") == 1
        finally:
            registry.remove("cycle")

    def test_tickets_die_with_eviction(self, stack):
        registry, _, data = stack
        _, queries, _ = data["alpha"]
        ticket = registry.submit("alpha", queries[:1])
        assert registry.result("alpha", ticket, timeout=TIMEOUT).done
        registry.evict("alpha")
        with pytest.raises(KeyError, match="evicted"):
            registry.poll("alpha", ticket)
        registry.activate("alpha")  # leave the shared tenant live again

    def test_reload_with_cache_dir_bit_identical(self, vgg, small_surface, tmp_path):
        """With a shared artifact cache the reload is disk-hits all the
        way down and still answers bit-identically."""
        seed, queries, dev = _split(small_surface)
        config = GogglesConfig(
            n_classes=2, seed=0, top_z=3, layers=(1, 2), n_jobs=2, cache_dir=str(tmp_path)
        )
        with TenantRegistry(base_config=config, model=vgg, metrics=MetricsRegistry()) as registry:
            registry.register("cached", seed, dev)
            before = registry.result("cached", registry.submit("cached", queries), timeout=TIMEOUT)
            # Cache instruments live in the process-wide default registry.
            hits = default_registry().get("goggles_cache_hits_total")
            baseline = hits.total()
            registry.reload("cached")
            after = registry.result("cached", registry.submit("cached", queries), timeout=TIMEOUT)
            np.testing.assert_array_equal(
                after.probabilistic_labels, before.probabilistic_labels
            )
            assert hits.total() > baseline  # the reload actually hit the cache

    def test_adopted_without_recipe_is_not_reloadable(self, stack, vgg, small_surface):
        registry, _, _ = stack
        seed, _, dev = _split(small_surface)
        goggles = Goggles(CONFIG, model=vgg)
        service = LabelingService(goggles, dev, tenant="adopted", registry=registry.metrics)
        service.start(seed)
        try:
            handle = registry.adopt("adopted", service)
            assert not handle.reloadable
            assert registry.evict("adopted")
            with pytest.raises(TenantUnavailableError):
                registry.activate("adopted")
        finally:
            registry.remove("adopted")
            goggles.close()  # adopted goggles stay caller-owned

    def test_memory_budget_evicts_lru_idle(self, vgg, small_surface, small_cub):
        """Past the budget the least-recently-requested reloadable tenant
        is evicted; the requesting tenant itself is exempt."""
        surface_seed, surface_queries, surface_dev = _split(small_surface)
        cub_seed, _, cub_dev = _split(small_cub)
        with TenantRegistry(
            base_config=CONFIG, model=vgg, memory_budget_bytes=1, metrics=MetricsRegistry()
        ) as registry:
            first = registry.register("first", surface_seed, surface_dev)
            assert first.active  # the registering tenant is never self-evicted
            second = registry.register("second", cub_seed, cub_dev)
            assert second.active
            assert not first.active  # LRU-idle tenant made room
            # Traffic to the evicted tenant transparently reloads it and
            # pushes the now-idle other tenant out instead.
            ticket = registry.submit("first", surface_queries[:1])
            assert registry.result("first", ticket, timeout=TIMEOUT).done
            assert first.active
            assert not second.active


class TestHTTPTenantAPI:
    def test_submit_poll_v1_roundtrip(self, stack):
        _, server, data = stack
        _, queries, _ = data["alpha"]
        code, payload, headers = _request(
            "POST", f"{server.url}/v1/tenants/alpha/submit",
            _npy_bytes(queries[:2]), {"Content-Type": "application/octet-stream"},
        )
        assert code == 202
        assert payload["tenant"] == "alpha"
        assert payload["ticket"].startswith("alpha-t")
        assert "Deprecation" not in headers  # /v1 is the supported surface
        deadline = time.monotonic() + TIMEOUT
        while True:
            code, status, _ = _get(f"{server.url}/v1/tenants/alpha/poll/{payload['ticket']}")
            assert code == 200
            if status["state"] != "pending":
                break
            assert time.monotonic() < deadline, "ticket never resolved"
            time.sleep(0.1)
        assert status["state"] == "done"
        assert status["tenant"] == "alpha"
        assert np.asarray(status["probabilistic_labels"]).shape == (2, 2)

    def test_cross_tenant_poll_is_404(self, stack):
        _, server, data = stack
        _, queries, _ = data["alpha"]
        code, payload, _ = _request(
            "POST", f"{server.url}/v1/tenants/alpha/submit",
            _npy_bytes(queries[:1]), {"Content-Type": "application/octet-stream"},
        )
        assert code == 202
        code, payload, _ = _get(f"{server.url}/v1/tenants/beta/poll/{payload['ticket']}")
        assert code == 404
        assert payload["error"]["code"] == "unknown_ticket"

    def test_429_sheds_one_tenant_only(self, stack):
        _, server, data = stack
        _, queries, _ = data["alpha"]
        body = _npy_bytes(queries[:1])
        code, payload, headers = _request(
            "POST", f"{server.url}/v1/tenants/bounded/submit",
            body, {"Content-Type": "application/octet-stream"},
        )
        assert code == 429
        assert headers["Retry-After"] == "7"
        assert payload["error"]["code"] == "backpressure"
        assert payload["error"]["max_queued_pixels"] == 1
        # The other tenant's traffic is untouched by the shed.
        code, accepted, _ = _request(
            "POST", f"{server.url}/v1/tenants/alpha/submit",
            body, {"Content-Type": "application/octet-stream"},
        )
        assert code == 202
        assert server.m_shed.value(tenant="bounded") >= 1
        assert server.m_shed.value(tenant="alpha") == 0

    def test_register_list_evict_forget_over_http(self, stack):
        _, server, data = stack
        seed, queries, dev = data["alpha"]
        body = json.dumps(
            {
                "tenant_id": "gamma",
                "images": seed.tolist(),
                "dev_indices": dev.indices.tolist(),
                "dev_labels": dev.labels.tolist(),
                "max_queued_pixels": 50_000_000,
            }
        ).encode()
        code, payload, _ = _request(
            "POST", f"{server.url}/v1/tenants", body, {"Content-Type": "application/json"}
        )
        assert code == 201
        assert payload["tenant"]["id"] == "gamma"
        assert payload["tenant"]["state"] == "active"
        assert payload["tenant"]["max_queued_pixels"] == 50_000_000
        # Duplicate registration answers 409 with the envelope.
        code, dup, _ = _request(
            "POST", f"{server.url}/v1/tenants", body, {"Content-Type": "application/json"}
        )
        assert code == 409
        assert dup["error"]["code"] == "tenant_exists"
        code, listing, _ = _get(f"{server.url}/v1/tenants")
        assert code == 200
        assert {row["id"] for row in listing["tenants"]} >= {"alpha", "beta", "gamma"}
        # Evict (keep the registration): the next submit reloads.
        code, evicted, _ = _request("DELETE", f"{server.url}/v1/tenants/gamma")
        assert code == 200 and evicted["state"] == "evicted"
        code, resubmit, _ = _request(
            "POST", f"{server.url}/v1/tenants/gamma/submit",
            _npy_bytes(queries[:1]), {"Content-Type": "application/octet-stream"},
        )
        assert code == 202, resubmit
        # Forget: the registration itself goes away.
        code, removed, _ = _request("DELETE", f"{server.url}/v1/tenants/gamma?forget=true")
        assert code == 200 and removed["state"] == "removed"
        code, gone, _ = _request(
            "POST", f"{server.url}/v1/tenants/gamma/submit",
            _npy_bytes(queries[:1]), {"Content-Type": "application/octet-stream"},
        )
        assert code == 404
        assert gone["error"]["code"] == "unknown_tenant"

    def test_register_missing_field_400(self, stack):
        _, server, _ = stack
        body = json.dumps({"tenant_id": "nope"}).encode()
        code, payload, _ = _request(
            "POST", f"{server.url}/v1/tenants", body, {"Content-Type": "application/json"}
        )
        assert code == 400
        assert payload["error"]["code"] == "bad_request"
        assert "images" in payload["error"]["message"]

    def test_error_envelope_carries_trace_id(self, stack):
        _, server, _ = stack
        code, payload, headers = _request(
            "POST", f"{server.url}/v1/tenants/nope/submit", b"{}",
            {"Content-Type": "application/json", "X-Trace-Id": "trace-tenant-404"},
        )
        assert code == 404
        assert payload["error"] == {
            "code": "unknown_tenant",
            "message": "unknown tenant 'nope'",
            "trace_id": "trace-tenant-404",
        }
        assert headers["X-Trace-Id"] == "trace-tenant-404"

    def test_413_envelope(self, stack):
        registry, _, _ = stack
        server = LabelingHTTPServer(registry, max_body_bytes=64)
        server.serve_in_background()
        try:
            code, payload, _ = _request(
                "POST", f"{server.url}/v1/tenants/alpha/submit",
                b"x" * 65, {"Content-Type": "application/octet-stream"},
            )
            assert code == 413
            assert payload["error"]["code"] == "payload_too_large"
            assert payload["error"]["max_body_bytes"] == 64
        finally:
            server.shutdown()

    def test_legacy_routes_alias_default_with_deprecation(self, stack):
        """On a registry server the unversioned routes still exist as
        deprecated aliases onto the default tenant (unregistered here,
        hence 404 — but with the Deprecation header and the envelope)."""
        _, server, _ = stack
        code, payload, headers = _request(
            "POST", f"{server.url}/submit", b"{}", {"Content-Type": "application/json"}
        )
        assert code == 404
        assert payload["error"]["code"] == "unknown_tenant"
        assert headers["Deprecation"] == "true"

    def test_healthz_tenant_sections_and_filter(self, stack):
        _, server, _ = stack
        code, health, _ = _get(f"{server.url}/healthz")
        assert code == 200
        assert health["status"] == "ok"
        assert {"alpha", "beta", "bounded"} <= set(health["tenants"])
        assert health["tenants"]["bounded"]["max_queued_pixels"] == 1
        assert health["registry"]["registered"] >= 3
        assert health["registry"]["resident_bytes"] > 0
        code, one, _ = _get(f"{server.url}/healthz?tenant=alpha")
        assert code == 200
        assert one["tenant"] == "alpha" and one["state"] == "active"
        code, missing, _ = _get(f"{server.url}/healthz?tenant=nope")
        assert code == 404
        assert missing["error"]["code"] == "unknown_tenant"

    def test_metrics_tenant_filter(self, stack):
        _, server, data = stack
        _, queries, _ = data["alpha"]
        code, _, _ = _request(
            "POST", f"{server.url}/v1/tenants/alpha/submit",
            _npy_bytes(queries[:1]), {"Content-Type": "application/octet-stream"},
        )
        assert code == 202
        with urllib.request.urlopen(f"{server.url}/metrics?tenant=alpha", timeout=30.0) as response:
            text = response.read().decode("utf-8")
        samples = [line for line in text.splitlines() if not line.startswith("#")]
        assert samples, "filtered exposition kept no alpha series"
        assert all('tenant="alpha"' in line for line in samples)
        assert 'tenant="beta"' not in text
