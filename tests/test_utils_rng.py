"""Tests for deterministic seeding helpers."""

from __future__ import annotations

import numpy as np
from hypothesis import given, strategies as st

from repro.utils.rng import derive_seed, spawn_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)

    def test_scope_changes_seed(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_root_changes_seed(self):
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_scope_order_matters(self):
        assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")

    def test_no_scope(self):
        assert derive_seed(5) == derive_seed(5)

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
    def test_output_is_valid_63bit(self, root, scope):
        seed = derive_seed(root, scope)
        assert 0 <= seed < 2**63

    @given(st.integers(min_value=0, max_value=1000))
    def test_distinct_scopes_rarely_collide(self, root):
        seeds = {derive_seed(root, i) for i in range(50)}
        assert len(seeds) == 50


class TestSpawnRng:
    def test_same_seed_same_stream(self):
        a = spawn_rng(3, "x").random(5)
        b = spawn_rng(3, "x").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_scope_different_stream(self):
        a = spawn_rng(3, "x").random(5)
        b = spawn_rng(3, "y").random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert spawn_rng(gen) is gen

    def test_generator_with_scope_spawns_child(self):
        gen = np.random.default_rng(0)
        child = spawn_rng(gen, "child")
        assert child is not gen

    def test_none_gives_generator(self):
        assert isinstance(spawn_rng(None), np.random.Generator)

    def test_independence_of_sibling_streams(self):
        # Drawing more from one stream must not perturb the other.
        a1 = spawn_rng(1, "a")
        _ = a1.random(100)
        b_after = spawn_rng(1, "b").random(3)
        b_fresh = spawn_rng(1, "b").random(3)
        np.testing.assert_array_equal(b_after, b_fresh)
