"""Tests for the dev-set cluster-to-class mapping (Eq. 12-17)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.inference.mapping import (
    ClusterMapping,
    apply_mapping,
    brute_force_mapping,
    dev_set_weights,
    map_clusters_to_classes,
)
from repro.datasets.base import DevSet


def _posterior(n, k, seed=0):
    rng = np.random.default_rng(seed)
    p = rng.random((n, k)) + 0.05
    return p / p.sum(axis=1, keepdims=True)


class TestClusterMapping:
    def test_permutation_enforced(self):
        with pytest.raises(ValueError, match="permutation"):
            ClusterMapping(cluster_to_class=np.array([0, 0]), goodness=1.0)

    def test_inverse(self):
        mapping = ClusterMapping(cluster_to_class=np.array([2, 0, 1]), goodness=0.0)
        inverse = mapping.inverse()
        np.testing.assert_array_equal(inverse[mapping.cluster_to_class], [0, 1, 2])


class TestDevSetWeights:
    def test_weights_formula(self):
        """w[k, k'] = sum over dev examples with label k' of gamma[l, k]."""
        posterior = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        dev = DevSet(indices=np.array([0, 1, 2]), labels=np.array([0, 1, 0]))
        weights = dev_set_weights(posterior, dev, 2)
        np.testing.assert_allclose(weights[:, 0], posterior[0] + posterior[2])
        np.testing.assert_allclose(weights[:, 1], posterior[1])

    def test_total_mass(self):
        posterior = _posterior(10, 3, seed=1)
        dev = DevSet(indices=np.arange(6), labels=np.array([0, 1, 2, 0, 1, 2]))
        weights = dev_set_weights(posterior, dev, 3)
        np.testing.assert_allclose(weights.sum(), 6.0)


class TestMapClustersToClasses:
    def test_identity_when_aligned(self):
        posterior = np.array([[0.95, 0.05]] * 5 + [[0.05, 0.95]] * 5)
        dev = DevSet(indices=np.array([0, 5]), labels=np.array([0, 1]))
        mapping = map_clusters_to_classes(posterior, dev, 2)
        np.testing.assert_array_equal(mapping.cluster_to_class, [0, 1])

    def test_swap_when_flipped(self):
        posterior = np.array([[0.95, 0.05]] * 5 + [[0.05, 0.95]] * 5)
        dev = DevSet(indices=np.array([0, 5]), labels=np.array([1, 0]))
        mapping = map_clusters_to_classes(posterior, dev, 2)
        np.testing.assert_array_equal(mapping.cluster_to_class, [1, 0])

    def test_empty_dev_set_identity(self):
        empty_dev = DevSet(np.empty(0, np.int64), np.empty(0, np.int64))
        mapping = map_clusters_to_classes(_posterior(4, 3), empty_dev, 3)
        np.testing.assert_array_equal(mapping.cluster_to_class, [0, 1, 2])

    def test_k2_closed_form(self):
        """Eq. 15: for K=2 map identity iff sum_{l in LS_1} gamma_{l,1} >=
        sum_{l in LS_0} gamma_{l,1}."""
        for seed in range(10):
            posterior = _posterior(12, 2, seed=seed)
            dev = DevSet(indices=np.arange(6), labels=np.array([0, 0, 0, 1, 1, 1]))
            mapping = map_clusters_to_classes(posterior, dev, 2)
            lhs = posterior[dev.indices[dev.labels == 1], 1].sum()
            rhs = posterior[dev.indices[dev.labels == 0], 1].sum()
            expected_identity = lhs >= rhs
            got_identity = bool(np.array_equal(mapping.cluster_to_class, [0, 1]))
            assert got_identity == expected_identity

    @given(st.integers(min_value=2, max_value=5), st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_matches_brute_force(self, k, seed):
        posterior = _posterior(4 * k, k, seed=seed)
        rng = np.random.default_rng(seed)
        indices = rng.choice(4 * k, size=2 * k, replace=False)
        labels = np.repeat(np.arange(k), 2)
        dev = DevSet(indices=indices, labels=labels)
        fast = map_clusters_to_classes(posterior, dev, k)
        slow = brute_force_mapping(posterior, dev, k)
        assert fast.goodness == pytest.approx(slow.goodness)

    def test_goodness_is_lg(self):
        """L_g = sum_k sum_{l in LS_{g(k)}} gamma_{l,k} (Eq. 12)."""
        posterior = _posterior(8, 2, seed=3)
        dev = DevSet(indices=np.array([0, 1, 2, 3]), labels=np.array([0, 0, 1, 1]))
        mapping = map_clusters_to_classes(posterior, dev, 2)
        manual = sum(
            posterior[l, k]
            for k in range(2)
            for l in dev.indices[dev.labels == mapping.cluster_to_class[k]]
        )
        assert mapping.goodness == pytest.approx(manual)


class TestApplyMapping:
    def test_identity_noop(self):
        posterior = _posterior(5, 2, seed=4)
        mapping = ClusterMapping(np.array([0, 1]), 0.0)
        np.testing.assert_array_equal(apply_mapping(posterior, mapping), posterior)

    def test_swap_reorders_columns(self):
        posterior = _posterior(5, 2, seed=5)
        mapping = ClusterMapping(np.array([1, 0]), 0.0)
        swapped = apply_mapping(posterior, mapping)
        np.testing.assert_array_equal(swapped[:, 1], posterior[:, 0])
        np.testing.assert_array_equal(swapped[:, 0], posterior[:, 1])

    def test_three_way_cycle(self):
        posterior = _posterior(4, 3, seed=6)
        mapping = ClusterMapping(np.array([1, 2, 0]), 0.0)
        out = apply_mapping(posterior, mapping)
        np.testing.assert_array_equal(out[:, 1], posterior[:, 0])
        np.testing.assert_array_equal(out[:, 2], posterior[:, 1])
        np.testing.assert_array_equal(out[:, 0], posterior[:, 2])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="columns"):
            apply_mapping(_posterior(3, 3), ClusterMapping(np.array([0, 1]), 0.0))

    def test_rows_still_distributions(self):
        posterior = _posterior(6, 3, seed=7)
        out = apply_mapping(posterior, ClusterMapping(np.array([2, 0, 1]), 0.0))
        np.testing.assert_allclose(out.sum(axis=1), 1.0)
