"""Tests for the sparse top-k affinity path.

Covers the blocked top-k kernel (exactness, tie determinism, tile
invariance), the uniform-row CSR container and its npz round-trip, the
engine's streaming sparse build + ``affinity-csr`` artifact caching,
the memmap-backed out-of-core block store with pinned eviction
accounting, and executor bit-identity of inference over sparse blocks.
"""

from __future__ import annotations

import gc
import io
import os

import numpy as np
import pytest

from repro.core.affinity import (
    AffinityFunctionId,
    AffinityMatrix,
    SparseAffinityMatrix,
    densify_topk_rows,
)
from repro.core import Goggles, GogglesConfig
from repro.core.inference.hierarchical import HierarchicalConfig
from repro.engine import (
    AffinityEngine,
    ArtifactCache,
    EngineConfig,
    FeatureCosineSource,
    InferenceEngine,
    MemmapBlockStore,
    sparsify_affinity,
    topk_block,
)


def _flat_source() -> FeatureCosineSource:
    return FeatureCosineSource(lambda imgs: imgs.reshape(len(imgs), -1), "flat")


@pytest.fixture()
def images() -> np.ndarray:
    rng = np.random.default_rng(5)
    return rng.random((12, 3, 16, 16))


@pytest.fixture()
def sparse_matrix() -> SparseAffinityMatrix:
    rng = np.random.default_rng(11)
    dense = AffinityMatrix(
        values=rng.random((20, 3 * 20)),
        function_ids=tuple(AffinityFunctionId(0, z) for z in range(3)),
    )
    return sparsify_affinity(dense, 5, dtype=np.float32)


def _naive_topk(block: np.ndarray, k: int):
    """Per-row reference: value descending, lowest column on ties."""
    n_rows, n_cols = block.shape
    kept = min(k, n_cols)
    data = np.empty((n_rows, kept), dtype=block.dtype)
    indices = np.empty((n_rows, kept), dtype=np.int64)
    fill = np.zeros(n_rows, dtype=block.dtype)
    for i, row in enumerate(block):
        top = sorted(sorted(range(n_cols), key=lambda j: (-row[j], j))[:kept])
        indices[i] = top
        data[i] = row[top]
        if kept < n_cols:
            dropped = float(row.sum()) - float(row[top].sum())
            fill[i] = dropped / (n_cols - kept)
    return data, indices, fill


class TestTopkBlock:
    def test_matches_naive_reference(self):
        rng = np.random.default_rng(0)
        block = rng.random((9, 14))
        for k in (1, 5, 13):
            data, indices, fill = topk_block(block, k, row_tile=4)
            ref_data, ref_indices, ref_fill = _naive_topk(block, k)
            np.testing.assert_array_equal(indices, ref_indices)
            np.testing.assert_array_equal(data, ref_data)
            np.testing.assert_allclose(fill, ref_fill, atol=1e-12)

    def test_tie_break_is_lowest_column(self):
        block = np.ones((3, 8))
        data, indices, fill = topk_block(block, 3)
        np.testing.assert_array_equal(indices, np.tile(np.arange(3), (3, 1)))
        np.testing.assert_array_equal(data, np.ones((3, 3)))

    def test_k_at_least_n_cols_is_lossless(self):
        rng = np.random.default_rng(1)
        block = rng.random((6, 7))
        for k in (7, 20):
            data, indices, fill = topk_block(block, k)
            np.testing.assert_array_equal(data, block)
            np.testing.assert_array_equal(indices, np.tile(np.arange(7), (6, 1)))
            np.testing.assert_array_equal(fill, np.zeros(6))

    def test_row_tile_invariance(self):
        rng = np.random.default_rng(2)
        block = rng.random((11, 9)).astype(np.float32)
        reference = topk_block(block, 4, row_tile=None)
        for row_tile in (1, 3, 100):
            tiled = topk_block(block, 4, row_tile=row_tile)
            for got, want in zip(tiled, reference):
                np.testing.assert_array_equal(got, want)

    def test_dtype_follows_block(self):
        block = np.random.default_rng(3).random((4, 6)).astype(np.float32)
        data, indices, fill = topk_block(block, 2)
        assert data.dtype == np.float32 and fill.dtype == np.float32
        assert indices.dtype == np.int64

    def test_fill_preserves_row_mass(self):
        rng = np.random.default_rng(4)
        block = rng.random((8, 10))
        data, indices, fill = topk_block(block, 3)
        densified = densify_topk_rows(data, indices, fill, 10)
        np.testing.assert_allclose(densified.sum(axis=1), block.sum(axis=1), rtol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            topk_block(np.arange(4.0), 2)
        with pytest.raises(ValueError, match="k"):
            topk_block(np.ones((3, 3)), 0)


class TestSparseAffinityMatrix:
    def test_shape_properties(self, sparse_matrix):
        assert sparse_matrix.n_examples == 20
        assert sparse_matrix.n_functions == 3
        assert sparse_matrix.top_k == 5
        assert sparse_matrix.dtype == np.float32
        np.testing.assert_array_equal(sparse_matrix.indptr, np.arange(21) * 5)

    def test_block_equals_densify_block(self, sparse_matrix):
        for f in range(sparse_matrix.n_functions):
            np.testing.assert_array_equal(sparse_matrix.block(f), sparse_matrix.densify_block(f))

    def test_densify_round_trips_at_full_k(self):
        rng = np.random.default_rng(6)
        dense = AffinityMatrix(values=rng.random((10, 2 * 10)))
        sparse = sparsify_affinity(dense, 10)
        np.testing.assert_array_equal(sparse.densify().values, dense.values)

    def test_save_load_path_and_file_object(self, sparse_matrix, tmp_path):
        path = tmp_path / "sparse.npz"
        sparse_matrix.save(str(path))
        loaded = SparseAffinityMatrix.load(str(path))
        np.testing.assert_array_equal(loaded.data, sparse_matrix.data)
        np.testing.assert_array_equal(loaded.indices, sparse_matrix.indices)
        np.testing.assert_array_equal(loaded.fill, sparse_matrix.fill)
        assert loaded.function_ids == sparse_matrix.function_ids

        buffer = io.BytesIO()
        sparse_matrix.save(buffer)
        buffer.seek(0)
        from_buffer = SparseAffinityMatrix.load(buffer)
        np.testing.assert_array_equal(from_buffer.data, sparse_matrix.data)

    def test_content_hash_sensitive_to_values(self, sparse_matrix):
        data = sparse_matrix.data.copy()
        data[0, 0, 0] += np.float32(1e-3)
        other = SparseAffinityMatrix(
            data=data,
            indices=sparse_matrix.indices,
            fill=sparse_matrix.fill,
            function_ids=sparse_matrix.function_ids,
        )
        assert other.content_hash() != sparse_matrix.content_hash()
        assert sparse_matrix.content_hash() == sparse_matrix.content_hash()

    def test_validation(self, sparse_matrix):
        with pytest.raises(ValueError):
            SparseAffinityMatrix(
                data=sparse_matrix.data,
                indices=sparse_matrix.indices[:, :, :2],
                fill=sparse_matrix.fill,
            )

    def test_out_of_range_function(self, sparse_matrix):
        with pytest.raises(ValueError, match="out of range"):
            sparse_matrix.block(3)


class TestEngineSparseBuild:
    def test_build_returns_sparse_float32(self, images, tmp_path):
        engine = AffinityEngine(
            _flat_source(),
            EngineConfig(cache_dir=str(tmp_path), affinity_mode="sparse", precision="float32"),
        )
        sparse = engine.build(images)
        assert isinstance(sparse, SparseAffinityMatrix)
        assert sparse.dtype == np.float32
        assert sparse.top_k == 3  # default ceil(N/4) at N=12

    def test_streaming_build_matches_dense_sparsify(self, images):
        sparse = AffinityEngine(
            _flat_source(), EngineConfig(affinity_mode="sparse", precision="float32", top_k=4)
        ).build(images)
        dense = AffinityEngine(_flat_source(), EngineConfig()).build(images)
        reference = sparsify_affinity(dense, 4, dtype=np.float32)
        np.testing.assert_array_equal(sparse.data, reference.data)
        np.testing.assert_array_equal(sparse.indices, reference.indices)
        np.testing.assert_array_equal(sparse.fill, reference.fill)

    def test_cache_hit_on_rebuild(self, images, tmp_path):
        config = EngineConfig(cache_dir=str(tmp_path), affinity_mode="sparse", top_k=3)
        first = AffinityEngine(_flat_source(), config).build(images)
        engine = AffinityEngine(_flat_source(), config)
        second = engine.build(images)
        assert engine.cache.stats.hits.get("affinity-csr") == 1
        np.testing.assert_array_equal(first.data, second.data)
        np.testing.assert_array_equal(first.indices, second.indices)

    def test_cache_key_sensitive_to_top_k(self, images, tmp_path):
        for k in (2, 3):
            engine = AffinityEngine(
                _flat_source(),
                EngineConfig(cache_dir=str(tmp_path), affinity_mode="sparse", top_k=k),
            )
            sparse = engine.build(images)
            assert sparse.top_k == k
            assert engine.cache.stats.hits.get("affinity-csr", 0) == 0

    def test_keep_state_rejected(self, images):
        engine = AffinityEngine(_flat_source(), EngineConfig(affinity_mode="sparse"))
        with pytest.raises(ValueError, match="build-only"):
            engine.build(images, keep_state=True)

    def test_extend_rejected(self, images):
        engine = AffinityEngine(_flat_source(), EngineConfig(affinity_mode="sparse"))
        with pytest.raises(RuntimeError, match="build-only"):
            engine.extend(images)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="affinity_mode"):
            EngineConfig(affinity_mode="csr")
        with pytest.raises(ValueError, match="top_k"):
            EngineConfig(affinity_mode="sparse", top_k=0)
        with pytest.raises(ValueError, match="sparse"):
            EngineConfig(top_k=4)
        with pytest.raises(ValueError, match="sparse"):
            EngineConfig(memmap=True)


class TestMemmapBlocks:
    def test_engine_memmap_blocks_match_in_ram(self, images, tmp_path):
        engine = AffinityEngine(
            _flat_source(),
            EngineConfig(
                cache_dir=str(tmp_path), affinity_mode="sparse", precision="float32", memmap=True
            ),
        )
        sparse = engine.build(images)
        block = sparse.block(0)
        assert isinstance(block, np.memmap)
        np.testing.assert_array_equal(np.asarray(block), sparse.densify_block(0))
        assert any(name.startswith("affinity-block-") for name in os.listdir(tmp_path))

    def test_standalone_store_round_trip(self, sparse_matrix, tmp_path):
        store = MemmapBlockStore(directory=str(tmp_path))
        backed = sparse_matrix.with_store(store)
        for f in range(backed.n_functions):
            block = backed.block(f)
            assert isinstance(block, np.memmap)
            assert block.dtype == np.float32
            np.testing.assert_array_equal(np.asarray(block), sparse_matrix.densify_block(f))

    def test_pinned_block_survives_eviction_until_released(self, sparse_matrix, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        store = MemmapBlockStore(cache=cache, base_key="k" * 24)
        backed = sparse_matrix.with_store(store)
        block = backed.block(0)
        path = store._path(backed, 0)
        assert cache.pinned(path)
        cache.clear()
        assert os.path.exists(path), "pinned memmap must survive clear()"
        del block
        gc.collect()
        assert not cache.pinned(path)
        assert not os.path.exists(path), "deferred eviction must apply on release"

    def test_manual_pin_accounting(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        saved = cache.save_arrays("state", "a" * 24, {"x": np.arange(8.0)})
        cache.pin(saved)
        cache.pin(saved)
        cache.clear()
        assert os.path.exists(saved)
        cache.unpin(saved)
        assert os.path.exists(saved), "still pinned once"
        cache.unpin(saved)
        assert not os.path.exists(saved)


class TestExecutorsOnSparse:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_bit_identical_to_serial(self, sparse_matrix, executor):
        config = HierarchicalConfig(n_classes=2, seed=0)
        reference = InferenceEngine(config, executor="serial").fit(sparse_matrix)
        result = InferenceEngine(config, executor=executor, n_jobs=2).fit(sparse_matrix)
        np.testing.assert_array_equal(result.posterior, reference.posterior)

    def test_dense_and_sparse_agree_at_full_k(self):
        rng = np.random.default_rng(12)
        dense = AffinityMatrix(values=rng.random((16, 2 * 16)))
        sparse = sparsify_affinity(dense, 16)
        config = HierarchicalConfig(n_classes=2, seed=0)
        dense_fit = InferenceEngine(config, executor="serial").fit(dense)
        sparse_fit = InferenceEngine(config, executor="serial").fit(sparse)
        np.testing.assert_array_equal(sparse_fit.posterior, dense_fit.posterior)


class TestGogglesSparse:
    def test_end_to_end_sparse_memmap(self, vgg, small_surface, tmp_path):
        dev = small_surface.sample_dev_set(2, seed=0)
        config = GogglesConfig(
            n_classes=2,
            seed=0,
            top_z=3,
            layers=(1, 2),
            cache_dir=str(tmp_path),
            affinity_mode="sparse",
            memmap=True,
        )
        result = Goggles(config, model=vgg).label(small_surface.images, dev)
        assert isinstance(result.affinity, SparseAffinityMatrix)
        assert result.affinity.dtype == np.float32
        assert result.probabilistic_labels.shape == (small_surface.n_examples, 2)
        np.testing.assert_allclose(result.probabilistic_labels.sum(axis=1), 1.0, atol=1e-9)

    def test_explicit_engine_override_is_build_only_too(self, vgg, small_surface):
        """`GogglesConfig(engine=EngineConfig(affinity_mode="sparse"))` —
        the path the CLI takes — must behave like the convenience field:
        the build-only guard reads the *resolved* engine config, so the
        default ``keep_corpus_state=True`` is silently dropped instead
        of asking the sparse engine to keep state."""
        dev = small_surface.sample_dev_set(2, seed=0)
        config = GogglesConfig(
            n_classes=2,
            seed=0,
            top_z=3,
            layers=(1, 2),
            engine=EngineConfig(affinity_mode="sparse", precision="float32"),
        )
        assert config.keep_corpus_state  # the default that used to crash
        result = Goggles(config, model=vgg).label(small_surface.images, dev)
        assert isinstance(result.affinity, SparseAffinityMatrix)

    def test_exact_top_k_matches_dense_labels(self, vgg, small_surface):
        """With k=N (no truncation) the only delta is float32 extraction,
        which must not move any hard label on the integration corpus."""
        dev = small_surface.sample_dev_set(2, seed=0)
        base = dict(n_classes=2, seed=0, top_z=3, layers=(1, 2), keep_corpus_state=False)
        n = small_surface.n_examples
        dense = Goggles(GogglesConfig(**base), model=vgg).label(small_surface.images, dev)
        sparse = Goggles(
            GogglesConfig(**base, affinity_mode="sparse", top_k=n), model=vgg
        ).label(small_surface.images, dev)
        np.testing.assert_array_equal(sparse.predictions, dense.predictions)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
