"""Per-dataset integration suite: the full GOGGLES loop on each task.

These are slower than unit tests but pin the reproduction's core
behaviour: on every one of the five paper datasets, GOGGLES with a
5-per-class dev set beats chance by a clear margin at small scale.
"""

from __future__ import annotations

import pytest

from repro.core import Goggles, GogglesConfig
from repro.datasets import make_dataset
from repro.eval.metrics import labeling_accuracy
from repro.labeling import Snuba
from repro.labeling.primitives import extract_snuba_primitives


@pytest.mark.parametrize("name", ["cub", "surface", "tbxray"])
class TestGogglesOnEachDataset:
    def test_beats_chance_clearly(self, name, vgg):
        dataset = make_dataset(name, n_per_class=16, image_size=64, seed=3, pair_seed=0)
        dev = dataset.sample_dev_set(per_class=4, seed=0)
        goggles = Goggles(GogglesConfig(n_classes=2, seed=0), model=vgg)
        result = goggles.label(dataset.images, dev)
        accuracy = result.accuracy(dataset.labels, exclude=dev.indices)
        assert accuracy > 0.6, f"{name}: accuracy {accuracy:.3f} too close to chance"

    def test_confident_labels_are_more_accurate(self, name, vgg):
        dataset = make_dataset(name, n_per_class=16, image_size=64, seed=4, pair_seed=0)
        dev = dataset.sample_dev_set(per_class=4, seed=0)
        goggles = Goggles(GogglesConfig(n_classes=2, seed=0), model=vgg)
        result = goggles.label(dataset.images, dev)
        confidence = result.probabilistic_labels.max(axis=1)
        correct = result.predictions == dataset.labels
        if (confidence > 0.99).sum() >= 5 and (confidence <= 0.99).sum() >= 5:
            assert correct[confidence > 0.99].mean() >= correct[confidence <= 0.99].mean() - 0.05


class TestSnubaVsGogglesContrast:
    def test_goggles_at_least_matches_snuba_on_surface(self, vgg):
        """The paper's headline: affinity coding beats LF synthesis on
        auto-extracted primitives."""
        dataset = make_dataset("surface", n_per_class=16, image_size=64, seed=5)
        dev = dataset.sample_dev_set(per_class=4, seed=0)
        goggles = Goggles(GogglesConfig(n_classes=2, seed=0), model=vgg)
        goggles_acc = goggles.label(dataset.images, dev).accuracy(dataset.labels, exclude=dev.indices)
        primitives = extract_snuba_primitives(vgg, dataset.images)
        snuba = Snuba(seed=0).fit(primitives, dev.indices, dev.labels)
        snuba_acc = labeling_accuracy(snuba.probabilistic_labels, dataset.labels, exclude=dev.indices)
        assert goggles_acc >= snuba_acc - 0.1
