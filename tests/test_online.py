"""Tests for the online labeling subsystem (repro.online).

Covers the sufficient-statistics accumulators (exact-pooling property:
merged statistics reproduce a direct fit on the concatenated data),
the stepwise-EM absorb path, the drift/refit state machine, and the
persistence contract (a restarted session resumes mid-stream from the
cached ``online-*.npz`` state without refitting).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Goggles, GogglesConfig
from repro.core.inference.base_gmm import DiagonalGMM
from repro.core.inference.mapping import ClusterMapping
from repro.online import BernoulliStats, GMMStats, OnlineConfig, OnlineSession, step_size
from repro.serving import LabelingService
from repro.utils.rng import spawn_rng

VARIANCE_FLOOR = 1e-6
PARAM_FLOOR = 1e-3


def _soft_assignments(rng: np.random.Generator, n: int, k: int) -> np.ndarray:
    resp = rng.random((n, k)) + 0.1
    return resp / resp.sum(axis=1, keepdims=True)


# ----------------------------------------------------------------------
# Accumulators
# ----------------------------------------------------------------------
class TestGMMStats:
    def test_from_responsibilities_normalised(self):
        rng = spawn_rng(0, "gmm-stats")
        x = rng.normal(size=(12, 5))
        resp = _soft_assignments(rng, 12, 3)
        stats = GMMStats.from_responsibilities(x, resp)
        assert stats.n == 12.0
        np.testing.assert_allclose(stats.nk.sum(), 1.0)
        np.testing.assert_allclose(stats.sx, (resp.T @ x) / 12)

    def test_merge_equals_concatenated(self):
        rng = spawn_rng(1, "gmm-stats")
        x1, x2 = rng.normal(size=(7, 4)), rng.normal(size=(11, 4))
        r1, r2 = _soft_assignments(rng, 7, 2), _soft_assignments(rng, 11, 2)
        merged = GMMStats.from_responsibilities(x1, r1).merge(GMMStats.from_responsibilities(x2, r2))
        direct = GMMStats.from_responsibilities(np.concatenate([x1, x2]), np.concatenate([r1, r2]))
        np.testing.assert_allclose(merged.nk, direct.nk)
        np.testing.assert_allclose(merged.sx, direct.sx)
        np.testing.assert_allclose(merged.sxx, direct.sxx)
        assert merged.n == direct.n == 18.0

    def test_blend_is_convex_combination(self):
        rng = spawn_rng(2, "gmm-stats")
        base = GMMStats.from_responsibilities(rng.normal(size=(6, 3)), _soft_assignments(rng, 6, 2))
        batch = GMMStats.from_responsibilities(rng.normal(size=(4, 3)), _soft_assignments(rng, 4, 2))
        blended = base.blend(batch, rho=0.25)
        np.testing.assert_allclose(blended.sx, 0.75 * base.sx + 0.25 * batch.sx)
        full = base.blend(batch, rho=1.0)
        np.testing.assert_allclose(full.sx, batch.sx)
        with pytest.raises(ValueError, match="rho"):
            base.blend(batch, rho=0.0)

    def test_params_match_direct_m_step(self):
        rng = spawn_rng(3, "gmm-stats")
        x = rng.normal(size=(20, 4))
        resp = _soft_assignments(rng, 20, 3)
        params = GMMStats.from_responsibilities(x, resp).params(VARIANCE_FLOOR)
        model = DiagonalGMM(n_components=3, variance_floor=VARIANCE_FLOOR, seed=0)
        model.weights_ = np.empty(3)
        model.means_ = np.empty((3, 4))
        model.variances_ = np.empty((3, 4))
        model._m_step(x, resp, spawn_rng(0, "unused"))
        np.testing.assert_allclose(params.weights, model.weights_, atol=1e-12)
        np.testing.assert_allclose(params.means, model.means_, atol=1e-10)
        np.testing.assert_allclose(params.variances, model.variances_, atol=1e-10)

    def test_arrays_round_trip(self):
        rng = spawn_rng(4, "gmm-stats")
        stats = GMMStats.from_responsibilities(rng.normal(size=(5, 2)), _soft_assignments(rng, 5, 2))
        restored = GMMStats.from_arrays(stats.arrays("f000"), "f000")
        np.testing.assert_array_equal(restored.nk, stats.nk)
        np.testing.assert_array_equal(restored.sxx, stats.sxx)
        assert restored.n == stats.n

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="align"):
            GMMStats.from_responsibilities(np.zeros((3, 2)), np.zeros((4, 2)))
        with pytest.raises(ValueError, match="at least one row"):
            GMMStats.from_responsibilities(np.zeros((0, 2)), np.zeros((0, 2)))


class TestBernoulliStats:
    def test_merge_equals_concatenated(self):
        rng = spawn_rng(5, "bern-stats")
        x1 = rng.integers(0, 2, size=(9, 6)).astype(np.float64)
        x2 = rng.integers(0, 2, size=(5, 6)).astype(np.float64)
        r1, r2 = _soft_assignments(rng, 9, 3), _soft_assignments(rng, 5, 3)
        merged = BernoulliStats.from_responsibilities(x1, r1).merge(
            BernoulliStats.from_responsibilities(x2, r2)
        )
        direct = BernoulliStats.from_responsibilities(np.concatenate([x1, x2]), np.concatenate([r1, r2]))
        np.testing.assert_allclose(merged.nk, direct.nk)
        np.testing.assert_allclose(merged.sx, direct.sx)

    def test_params_match_em_m_step(self):
        rng = spawn_rng(6, "bern-stats")
        x = rng.integers(0, 2, size=(15, 4)).astype(np.float64)
        resp = _soft_assignments(rng, 15, 2)
        params = BernoulliStats.from_responsibilities(x, resp).params(PARAM_FLOOR)
        nk = np.maximum(resp.sum(axis=0), 1e-10)  # BernoulliMixture._run_em's M-step
        np.testing.assert_allclose(params.weights, nk / 15, atol=1e-12)
        np.testing.assert_allclose(
            params.probs, np.clip((resp.T @ x) / nk[:, None], PARAM_FLOOR, 1 - PARAM_FLOOR)
        )

    def test_arrays_round_trip(self):
        rng = spawn_rng(7, "bern-stats")
        x = rng.integers(0, 2, size=(4, 3)).astype(np.float64)
        stats = BernoulliStats.from_responsibilities(x, _soft_assignments(rng, 4, 2))
        restored = BernoulliStats.from_arrays(stats.arrays("ens"), "ens")
        np.testing.assert_array_equal(restored.sx, stats.sx)


class TestStepSize:
    def test_decays_and_validates(self):
        rhos = [step_size(t, 0.7, 2.0) for t in range(1, 6)]
        assert all(0 < r <= 1 for r in rhos)
        assert rhos == sorted(rhos, reverse=True)
        with pytest.raises(ValueError, match="step"):
            step_size(0, 0.7, 2.0)


# ----------------------------------------------------------------------
# Property tests: statistics-based refit == direct fit on concatenated data
# ----------------------------------------------------------------------
@st.composite
def split_weighted_data(draw):
    k = draw(st.integers(min_value=2, max_value=3))
    d = draw(st.integers(min_value=1, max_value=5))
    n1 = draw(st.integers(min_value=k, max_value=8))
    n2 = draw(st.integers(min_value=k, max_value=8))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=10_000)))
    x1, x2 = rng.normal(size=(n1, d)), rng.normal(size=(n2, d))
    r1, r2 = _soft_assignments(rng, n1, k), _soft_assignments(rng, n2, k)
    return k, x1, x2, r1, r2


@settings(max_examples=40, deadline=None)
@given(split_weighted_data())
def test_property_gmm_merge_reproduces_concatenated_m_step(case):
    k, x1, x2, r1, r2 = case
    merged = GMMStats.from_responsibilities(x1, r1).merge(GMMStats.from_responsibilities(x2, r2))
    params = merged.params(VARIANCE_FLOOR)
    x = np.concatenate([x1, x2])
    resp = np.concatenate([r1, r2])
    model = DiagonalGMM(n_components=k, variance_floor=VARIANCE_FLOOR, seed=0)
    model.weights_ = np.empty(k)
    model.means_ = np.empty((k, x.shape[1]))
    model.variances_ = np.empty((k, x.shape[1]))
    model._m_step(x, resp, spawn_rng(0, "unused"))
    np.testing.assert_allclose(params.weights, model.weights_, atol=1e-10)
    np.testing.assert_allclose(params.means, model.means_, atol=1e-8)
    np.testing.assert_allclose(params.variances, model.variances_, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(split_weighted_data())
def test_property_bernoulli_merge_reproduces_concatenated_m_step(case):
    k, x1, x2, r1, r2 = case
    x1, x2 = (x1 > 0).astype(np.float64), (x2 > 0).astype(np.float64)
    merged = BernoulliStats.from_responsibilities(x1, r1).merge(BernoulliStats.from_responsibilities(x2, r2))
    params = merged.params(PARAM_FLOOR)
    x, resp = np.concatenate([x1, x2]), np.concatenate([r1, r2])
    nk = np.maximum(resp.sum(axis=0), 1e-10)
    np.testing.assert_allclose(params.weights, nk / x.shape[0], atol=1e-10)
    np.testing.assert_allclose(
        params.probs, np.clip((resp.T @ x) / nk[:, None], PARAM_FLOOR, 1 - PARAM_FLOOR), atol=1e-10
    )


@settings(max_examples=15, deadline=None)
@given(split_weighted_data())
def test_property_refit_from_stats_matches_direct_fit(case):
    """EM warm-started from accumulator-derived parameters lands where a
    fit warm-started from the concatenated responsibilities lands."""
    k, x1, x2, r1, r2 = case
    merged = GMMStats.from_responsibilities(x1, r1).merge(GMMStats.from_responsibilities(x2, r2))
    x, resp = np.concatenate([x1, x2]), np.concatenate([r1, r2])
    from_stats = DiagonalGMM(n_components=k, variance_floor=VARIANCE_FLOOR, seed=0).fit(
        x, init=merged.params(VARIANCE_FLOOR)
    )
    direct = DiagonalGMM(n_components=k, variance_floor=VARIANCE_FLOOR, seed=0).fit(x, init=resp)
    np.testing.assert_allclose(from_stats.responsibilities, direct.responsibilities, atol=1e-6)


# ----------------------------------------------------------------------
# OnlineConfig validation
# ----------------------------------------------------------------------
class TestOnlineConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"step_decay": 0.5},
            {"step_decay": 1.5},
            {"step_delay": -1.0},
            {"refine_tol": 0.0},
            {"refine_max_iter": 0},
            {"drift_threshold": 0.0},
            {"drift_alpha": 0.0},
            {"refit_every": -1},
            {"buffer_cap": 0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            OnlineConfig(**kwargs)


# ----------------------------------------------------------------------
# OnlineSession end to end
# ----------------------------------------------------------------------
@pytest.fixture()
def seeded(vgg, small_surface):
    """A labeled seed corpus plus held-out arrivals on the small surface set."""
    images = small_surface.images
    n0 = images.shape[0] - 6
    dev = small_surface.sample_dev_set(per_class=3, seed=0)
    assert dev.indices.max() < n0
    config = GogglesConfig(n_classes=2, seed=0, top_z=3, layers=(1, 2))
    goggles = Goggles(config, model=vgg)
    result = goggles.label(images[:n0], dev)
    return goggles, dev, result, images, n0


class TestOnlineSession:
    def test_requires_corpus_state(self, vgg, small_surface):
        config = GogglesConfig(n_classes=2, seed=0, top_z=2, layers=(1,))
        dev = small_surface.sample_dev_set(per_class=2, seed=0)
        goggles = Goggles(config, model=vgg)
        with pytest.raises(ValueError, match="corpus state"):
            OnlineSession(goggles, dev, result=None)

    def test_absorb_returns_class_aligned_labels(self, seeded):
        goggles, dev, result, images, n0 = seeded
        session = OnlineSession(goggles, dev, result, OnlineConfig(drift_threshold=100.0))
        labels = session.absorb(images[n0 : n0 + 3])
        assert labels.shape == (3, 2)
        np.testing.assert_allclose(labels.sum(axis=1), 1.0, atol=1e-8)
        assert session.stats()["step"] == 1
        assert session.n_absorbed == 3
        # The frozen corpus did not grow — absorb is O(batch), not a rebuild.
        assert goggles.engine.state.n_images == n0
        assert session.n_seed == n0

    def test_absorb_tracks_direct_incremental_labels(self, vgg, seeded):
        goggles, dev, result, images, n0 = seeded
        session = OnlineSession(goggles, dev, result, OnlineConfig(drift_threshold=100.0))
        online = np.concatenate([session.absorb(images[n0 : n0 + 3]), session.absorb(images[n0 + 3 :])])
        direct = Goggles(GogglesConfig(n_classes=2, seed=0, top_z=3, layers=(1, 2)), model=vgg)
        direct.label(images[:n0], dev)
        reference = direct.label_incremental(images[n0:], dev).probabilistic_labels[n0:]
        agree = (online.argmax(axis=1) == reference.argmax(axis=1)).mean()
        assert agree >= 0.8  # deterministic on this corpus; exactness is the
        # shapes-corpora benchmark's contract (bench_online_inference.py)

    def test_absorb_rows_validates_shapes(self, seeded):
        goggles, dev, result, _, n0 = seeded
        session = OnlineSession(goggles, dev, result)
        with pytest.raises(ValueError, match="row blocks"):
            session.absorb_rows([np.zeros((2, n0))])
        bad = [np.zeros((2, n0 + 1)) for _ in range(session.alpha)]
        with pytest.raises(ValueError, match="expected"):
            session.absorb_rows(bad)

    def test_refit_every_escalates_and_grows_corpus(self, seeded):
        goggles, dev, result, images, n0 = seeded
        session = OnlineSession(goggles, dev, result, OnlineConfig(drift_threshold=100.0, refit_every=1))
        labels = session.absorb(images[n0 : n0 + 3])
        assert session.n_refits == 1
        assert labels.shape == (3, 2)
        # The refit absorbed the buffered arrivals into the corpus and
        # re-froze the session on the grown corpus.
        assert goggles.engine.state.n_images == n0 + 3
        assert session.n_seed == n0 + 3
        assert session.stats()["step"] == 0  # schedule reset by the refit
        again = session.absorb(images[n0 + 3 :])
        assert session.n_refits == 2
        assert goggles.engine.state.n_images == images.shape[0]
        assert again.shape == (images.shape[0] - n0 - 3, 2)

    def test_drift_trips_should_refit(self, seeded):
        goggles, dev, result, images, n0 = seeded
        session = OnlineSession(goggles, dev, result, OnlineConfig(drift_threshold=0.5))
        assert not session.should_refit()
        session._ewma_ll = session._baseline_ll - 1.0  # simulate a collapse
        assert session.drift == pytest.approx(1.0)
        assert session.should_refit()

    def test_unstable_mapping_trips_should_refit(self, seeded):
        goggles, dev, result, _, _ = seeded
        session = OnlineSession(goggles, dev, result, OnlineConfig(drift_threshold=100.0))
        assert session.mapping_stable()
        flipped = ClusterMapping(cluster_to_class=1 - session.mapping.cluster_to_class, goodness=0.0)
        session.mapping = flipped
        assert not session.mapping_stable()
        assert session.should_refit()

    def test_organic_drift_triggers_refit(self, seeded):
        """Out-of-distribution arrivals drop the prequential log-likelihood
        EWMA below the baseline and escalate to a real refit — the drift
        path end to end, not a hand-set EWMA."""
        goggles, dev, result, images, n0 = seeded
        session = OnlineSession(
            goggles, dev, result, OnlineConfig(drift_threshold=0.1, drift_alpha=1.0)
        )
        session.absorb(images[n0 : n0 + 3])  # in-distribution: no trip
        assert session.n_refits == 0
        assert session.drift < 0.1
        noise = spawn_rng(0, "drift-noise").random((3, 3, 64, 64))
        session.absorb(noise)
        assert session.n_refits == 1  # the drop tripped the monitor
        assert session.n_seed == n0 + 6  # refit absorbed the buffered arrivals
        assert session.drift == 0.0  # re-frozen baseline

    def test_prequential_score_is_pre_update(self, seeded):
        """The drift EWMA must blend the score under the *committed*
        parameters — adapting to the batch first would mask drift."""
        goggles, dev, result, images, n0 = seeded
        session = OnlineSession(
            goggles, dev, result, OnlineConfig(drift_threshold=100.0, drift_alpha=1.0)
        )
        rows = session._arrival_rows(images[n0 : n0 + 3])
        _, _, _, pre_update_ll = session._score_batch(
            rows, session._base_params, session._ensemble_params
        )
        session.absorb_rows(rows)
        assert session._ewma_ll == pytest.approx(pre_update_ll)

    def test_failed_refit_leaves_session_retryable(self, monkeypatch, seeded):
        """If the escalated refit dies, the statistics, schedule, and
        buffer roll back with the corpus — a resubmitted batch is not
        double-counted."""
        goggles, dev, result, images, n0 = seeded
        session = OnlineSession(
            goggles, dev, result, OnlineConfig(drift_threshold=100.0, refit_every=1)
        )

        def boom(*args, **kwargs):
            raise MemoryError("simulated refit blow-up")

        monkeypatch.setattr(goggles, "label_incremental", boom)
        with pytest.raises(MemoryError):
            session.absorb(images[n0 : n0 + 3])
        assert session.stats()["step"] == 0  # schedule rolled back
        assert session.stats()["buffered_rows"] == 0
        assert session.n_absorbed == 0
        monkeypatch.undo()
        labels = session.absorb(images[n0 : n0 + 3])  # clean retry refits
        assert labels.shape == (3, 2)
        assert session.n_refits == 1
        assert goggles.engine.state.n_images == n0 + 3  # no duplicated rows

    def test_arrival_rows_match_extend_state_slice(self, seeded):
        """The rows-only hot path is bit-identical to slicing a throwaway
        full extension (the quadrant the session consumes)."""
        goggles, _, _, images, n0 = seeded
        engine = goggles.engine
        runtime = engine._runtime()
        fast = engine.source.extend_rows(engine.state, images[n0:], runtime)
        full = engine.source.extend_state(engine.state, images[n0:], runtime)
        assert len(fast) == full.affinity.n_functions
        for f, block in enumerate(fast):
            np.testing.assert_array_equal(block, full.affinity.block(f)[n0:, :n0])

    def test_feature_cosine_extend_rows_matches_slice(self):
        from repro.engine import EngineConfig, FeatureCosineSource

        source = FeatureCosineSource(lambda images: images.reshape(images.shape[0], -1), "flat")
        runtime = EngineConfig().runtime()
        rng = spawn_rng(8, "cosine-rows")
        images = rng.random((10, 3, 8, 8))
        state = source.build_state(images[:7], runtime)
        fast = source.extend_rows(state, images[7:], runtime)
        full = source.extend_state(state, images[7:], runtime)
        assert len(fast) == 1
        np.testing.assert_allclose(fast[0], full.affinity.block(0)[7:, :7], atol=1e-12)

    def test_buffer_stays_bounded(self, seeded):
        goggles, dev, result, images, n0 = seeded
        session = OnlineSession(goggles, dev, result, OnlineConfig(drift_threshold=100.0, buffer_cap=3))
        session.absorb(images[n0 : n0 + 3])
        session.absorb(images[n0 + 3 :])
        stats = session.stats()
        assert stats["buffered_rows"] <= 3
        assert stats["buffer_dropped"] == 3
        assert session.n_absorbed == 6


class TestOnlinePersistence:
    def _build(self, vgg, small_surface, cache_dir, config=None):
        images = small_surface.images
        n0 = images.shape[0] - 6
        dev = small_surface.sample_dev_set(per_class=3, seed=0)
        goggles = Goggles(
            GogglesConfig(n_classes=2, seed=0, top_z=3, layers=(1, 2), cache_dir=str(cache_dir)),
            model=vgg,
        )
        result = goggles.label(images[:n0], dev)
        session = OnlineSession(goggles, dev, result, config or OnlineConfig(drift_threshold=100.0))
        return goggles, dev, result, session, images, n0

    def test_restarted_session_resumes_mid_stream(self, vgg, small_surface, tmp_path):
        _, _, _, first, images, n0 = self._build(vgg, small_surface, tmp_path)
        labels = first.absorb(images[n0 : n0 + 3])
        assert first.stats()["persisted"]

        # "Restart": a fresh Goggles over the same cache replays the seed
        # fit from disk, and the new session resumes the online state.
        _, _, _, second, _, _ = self._build(vgg, small_surface, tmp_path)
        assert second.resumed
        assert second.stats()["step"] == 1
        assert second.n_absorbed == 3
        np.testing.assert_allclose(second._ewma_ll, first._ewma_ll)
        for mine, theirs in zip(second._base_stats, first._base_stats):
            np.testing.assert_allclose(mine.sx, theirs.sx)
        # And it keeps serving: the next absorb continues the schedule.
        again = second.absorb(images[n0 + 3 :])
        assert second.stats()["step"] == 2
        assert again.shape == (3, 2)
        np.testing.assert_allclose(labels.sum(axis=1), 1.0, atol=1e-8)

    def test_resume_skipped_when_config_differs(self, vgg, small_surface, tmp_path):
        _, _, _, first, images, n0 = self._build(vgg, small_surface, tmp_path)
        first.absorb(images[n0 : n0 + 3])
        _, _, _, second, _, _ = self._build(
            vgg, small_surface, tmp_path, config=OnlineConfig(drift_threshold=99.0)
        )
        assert not second.resumed  # the online config is part of the key
        assert second.stats()["step"] == 0

    def test_resume_after_refit_replays_buffer(self, vgg, small_surface, tmp_path):
        _, _, _, first, images, n0 = self._build(
            vgg, small_surface, tmp_path, config=OnlineConfig(drift_threshold=100.0, refit_every=1)
        )
        first.absorb(images[n0 : n0 + 3])
        assert first.n_refits == 1
        assert first.n_seed == n0 + 3  # the refit grew the corpus
        _, _, _, second, _, _ = self._build(
            vgg, small_surface, tmp_path, config=OnlineConfig(drift_threshold=100.0, refit_every=1)
        )
        # The persisted refit batches replay through label_incremental
        # (cache hits all the way), regrowing the corpus to where the
        # previous life left it — so the online state resumes instead
        # of cold-starting.
        assert second.replayed == 1
        assert second.stats()["replayed"] == 1
        assert second.n_seed == first.n_seed
        assert second.resumed
        assert second.n_refits == 1
        np.testing.assert_allclose(second._ewma_ll, first._ewma_ll)
        for mine, theirs in zip(second._base_stats, first._base_stats):
            np.testing.assert_allclose(mine.sx, theirs.sx)
        # And it keeps serving on the grown corpus.
        again = second.absorb(images[n0 + 3 :])
        assert again.shape == (3, 2)

    def test_replay_skipped_without_resume(self, vgg, small_surface, tmp_path):
        _, _, _, first, images, n0 = self._build(
            vgg, small_surface, tmp_path, config=OnlineConfig(drift_threshold=100.0, refit_every=1)
        )
        first.absorb(images[n0 : n0 + 3])
        assert first.n_refits == 1
        dev = small_surface.sample_dev_set(per_class=3, seed=0)
        goggles = Goggles(
            GogglesConfig(n_classes=2, seed=0, top_z=3, layers=(1, 2), cache_dir=str(tmp_path)),
            model=vgg,
        )
        result = goggles.label(images[:n0], dev)
        fresh = OnlineSession(
            goggles, dev, result, OnlineConfig(drift_threshold=100.0, refit_every=1), resume=False
        )
        assert fresh.replayed == 0
        assert not fresh.resumed
        assert fresh.n_seed == n0  # the corpus stayed at the seed fit

    def test_no_cache_means_no_persistence(self, seeded):
        goggles, dev, result, images, n0 = seeded
        session = OnlineSession(goggles, dev, result)
        assert session.stats()["persisted"] is False


# ----------------------------------------------------------------------
# LabelingService integration (mode="online")
# ----------------------------------------------------------------------
class TestOnlineService:
    def test_mode_validation(self, vgg, small_surface):
        config = GogglesConfig(n_classes=2, seed=0, top_z=2, layers=(1,))
        dev = small_surface.sample_dev_set(per_class=2, seed=0)
        with pytest.raises(ValueError, match="mode"):
            LabelingService(Goggles(config, model=vgg), dev, mode="streaming")

    def test_online_round_trip(self, vgg, small_surface):
        images = small_surface.images
        n0 = images.shape[0] - 6
        dev = small_surface.sample_dev_set(per_class=3, seed=0)
        config = GogglesConfig(
            n_classes=2,
            seed=0,
            top_z=3,
            layers=(1, 2),
            online=OnlineConfig(drift_threshold=100.0),
        )
        service = LabelingService(Goggles(config, model=vgg), dev, mode="online")
        with service:
            service.start(images[:n0])
            assert service.session is not None
            status = service.result(service.submit(images[n0:]), timeout=120.0)
            assert status.done
            assert status.probabilistic_labels.shape == (6, 2)
            stats = service.online_stats
            assert stats is not None and stats["step"] >= 1 and stats["absorbed"] == 6
            # Online absorbs do not grow the corpus (no refit tripped).
            assert service.corpus_size == n0
            assert service.tickets_outstanding == 0

    def test_restarted_online_service_resumes_without_refit(self, vgg, small_surface, tmp_path):
        images = small_surface.images
        n0 = images.shape[0] - 6
        dev = small_surface.sample_dev_set(per_class=3, seed=0)

        def make_service():
            config = GogglesConfig(
                n_classes=2,
                seed=0,
                top_z=3,
                layers=(1, 2),
                cache_dir=str(tmp_path),
                online=OnlineConfig(drift_threshold=100.0),
            )
            return LabelingService(Goggles(config, model=vgg), dev, mode="online")

        with make_service() as first:
            first.start(images[:n0])
            assert first.result(first.submit(images[n0 : n0 + 3]), timeout=120.0).done

        with make_service() as second:
            second.start(images[:n0])  # seed fit replays from the artifact cache
            # No cold refit: the seed inference came from the cache ...
            assert second.goggles.engine.cache.stats.hits.get("inference", 0) >= 1
            # ... and the online state resumed mid-stream.
            assert second.session.resumed
            assert second.online_stats["step"] == 1
            status = second.result(second.submit(images[n0 + 3 :]), timeout=120.0)
            assert status.done
            assert second.online_stats["step"] == 2
