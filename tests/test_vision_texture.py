"""Tests for procedural textures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.vision.texture import fractal_noise, grating, speckle, value_noise, vignette


class TestValueNoise:
    def test_range_and_shape(self):
        field = value_noise(32, 48, cells=4, rng=np.random.default_rng(0))
        assert field.shape == (32, 48)
        assert field.min() >= 0.0 and field.max() <= 1.0

    def test_deterministic_given_rng(self):
        a = value_noise(16, 16, 3, np.random.default_rng(1))
        b = value_noise(16, 16, 3, np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)

    def test_smoothness(self):
        field = value_noise(64, 64, cells=2, rng=np.random.default_rng(2))
        assert np.abs(np.diff(field, axis=0)).max() < 0.25

    def test_invalid_cells(self):
        with pytest.raises(ValueError):
            value_noise(8, 8, 0, np.random.default_rng(0))


class TestFractalNoise:
    def test_range(self):
        field = fractal_noise(32, 32, np.random.default_rng(3))
        assert field.min() >= 0.0 and field.max() <= 1.0

    def test_more_octaves_more_detail(self):
        rng1, rng2 = np.random.default_rng(4), np.random.default_rng(4)
        low = fractal_noise(64, 64, rng1, octaves=1)
        high = fractal_noise(64, 64, rng2, octaves=5)
        hf = lambda f: np.abs(np.diff(f, axis=1)).mean()  # noqa: E731
        assert hf(high) > hf(low)

    def test_invalid_octaves(self):
        with pytest.raises(ValueError):
            fractal_noise(8, 8, np.random.default_rng(0), octaves=0)


class TestGrating:
    def test_periodicity(self):
        field = grating(32, 32, wavelength=8.0, angle=0.0)
        np.testing.assert_allclose(field[:, 0], field[:, 8], atol=1e-9)

    def test_orientation(self):
        horizontal_wave = grating(32, 32, 8.0, angle=0.0)
        # angle 0: variation along x only.
        assert np.abs(np.diff(horizontal_wave, axis=0)).max() < 1e-9
        assert np.abs(np.diff(horizontal_wave, axis=1)).max() > 0.1

    def test_range(self):
        field = grating(16, 16, 4.0, 0.7)
        assert field.min() >= 0.0 and field.max() <= 1.0

    def test_invalid_wavelength(self):
        with pytest.raises(ValueError):
            grating(8, 8, 0.0, 0.0)


class TestSpeckle:
    def test_unit_mean(self):
        field = speckle(64, 64, np.random.default_rng(5), grain=0.5)
        assert abs(field.mean() - 1.0) < 0.05

    def test_grain_scales_variance(self):
        weak = speckle(64, 64, np.random.default_rng(6), grain=0.1)
        strong = speckle(64, 64, np.random.default_rng(6), grain=0.9)
        assert strong.var() > weak.var()

    def test_nonnegative(self):
        field = speckle(32, 32, np.random.default_rng(7), grain=2.5)
        assert field.min() >= 0.0

    def test_sigma_correlates_field(self):
        sharp = speckle(64, 64, np.random.default_rng(8), grain=1.0)
        smooth = speckle(64, 64, np.random.default_rng(8), grain=1.0, sigma=2.0)
        hf = lambda f: np.abs(np.diff(f, axis=1)).mean()  # noqa: E731
        assert hf(smooth) < hf(sharp)


class TestVignette:
    def test_centre_brightest(self):
        mask = vignette(33, 33, strength=0.5)
        assert mask[16, 16] == mask.max()
        assert mask[0, 0] < mask[16, 16]

    def test_strength_bounds(self):
        mask = vignette(32, 32, strength=0.4)
        assert mask.min() >= 0.6 - 1e-9
        assert mask.max() <= 1.0 + 1e-9
