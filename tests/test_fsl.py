"""Tests for the few-shot learning Baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.base import DevSet
from repro.fsl import FSLBaseline, FSLConfig


class TestFSLBaseline:
    def test_fits_and_predicts(self, vgg, small_cub):
        dev = small_cub.sample_dev_set(per_class=4, seed=0)
        fsl = FSLBaseline(vgg, 2, FSLConfig(epochs=150, seed=0)).fit(small_cub.images, dev)
        predictions = fsl.predict(small_cub.images)
        assert predictions.shape == (small_cub.n_examples,)
        non_dev = np.setdiff1d(np.arange(small_cub.n_examples), dev.indices)
        accuracy = (predictions[non_dev] == small_cub.labels[non_dev]).mean()
        assert accuracy > 0.6

    def test_support_set_memorised(self, vgg, small_cub):
        dev = small_cub.sample_dev_set(per_class=4, seed=1)
        fsl = FSLBaseline(vgg, 2, FSLConfig(epochs=300, seed=0)).fit(small_cub.images, dev)
        support_accuracy = (fsl.predict(small_cub.images[dev.indices]) == dev.labels).mean()
        assert support_accuracy >= 0.75

    def test_predict_proba_valid(self, vgg, small_cub):
        dev = small_cub.sample_dev_set(per_class=3, seed=2)
        fsl = FSLBaseline(vgg, 2).fit(small_cub.images, dev)
        probs = fsl.predict_proba(small_cub.images[:4])
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    def test_predict_before_fit(self, vgg, small_cub):
        with pytest.raises(RuntimeError, match="fitted"):
            FSLBaseline(vgg, 2).predict(small_cub.images[:2])

    def test_empty_support_rejected(self, vgg, small_cub):
        empty = DevSet(np.empty(0, np.int64), np.empty(0, np.int64))
        with pytest.raises(ValueError, match="non-empty"):
            FSLBaseline(vgg, 2).fit(small_cub.images, empty)

    def test_invalid_classes(self, vgg):
        with pytest.raises(ValueError):
            FSLBaseline(vgg, 1)
