"""Tests for prototype extraction — including the paper's Example 4 verbatim."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.prototypes import PrototypeSet, all_location_vectors, extract_prototypes, select_top_z


class TestPaperExample4:
    """§3.1 Example 4, reproduced exactly."""

    def _filter_map(self):
        c1 = np.array([[1.0, 0.5], [0.3, 0.6]])
        c2 = np.array([[0.1, 0.7], [0.4, 0.3]])
        c3 = np.array([[0.2, 0.9], [0.5, 0.1]])
        return np.stack([c1, c2, c3])

    def test_top2_prototypes_match_paper(self):
        prototypes = select_top_z(self._filter_map(), z=2)
        # Channel ranking by max activation: C1 (1.0), C3 (0.9), C2 (0.7).
        np.testing.assert_array_equal(prototypes.channels, [0, 2])
        # (h1, w1) = (0, 0) from C1; (h2, w2) = (0, 1) from C3.
        np.testing.assert_array_equal(prototypes.locations, [[0, 0], [0, 1]])
        # v1 = (1, 0.1, 0.2); v2 = (0.5, 0.7, 0.9).
        np.testing.assert_allclose(prototypes.vectors[0], [1.0, 0.1, 0.2])
        np.testing.assert_allclose(prototypes.vectors[1], [0.5, 0.7, 0.9])

    def test_top3_adds_channel2(self):
        prototypes = select_top_z(self._filter_map(), z=3)
        # C2's argmax is also (0, 1) — duplicate location, dropped.
        assert prototypes.n_prototypes == 2


class TestSelectTopZ:
    def test_duplicate_locations_dropped(self):
        fm = np.zeros((4, 2, 2))
        fm[:, 1, 1] = [4.0, 3.0, 2.0, 1.0]  # all channels peak at (1,1)
        prototypes = select_top_z(fm, z=4)
        assert prototypes.n_prototypes == 1
        np.testing.assert_array_equal(prototypes.locations, [[1, 1]])

    def test_z_larger_than_channels(self):
        fm = np.random.default_rng(0).random((3, 4, 4))
        prototypes = select_top_z(fm, z=10)
        assert prototypes.n_prototypes <= 3

    def test_vectors_span_channels(self):
        fm = np.random.default_rng(1).random((5, 3, 3))
        prototypes = select_top_z(fm, z=2)
        assert prototypes.vectors.shape[1] == 5
        h, w = prototypes.locations[0]
        np.testing.assert_array_equal(prototypes.vectors[0], fm[:, h, w])

    def test_invalid_z(self):
        with pytest.raises(ValueError):
            select_top_z(np.random.default_rng(2).random((2, 2, 2)), z=0)

    def test_ranking_by_activation(self):
        fm = np.random.default_rng(3).random((6, 4, 4))
        prototypes = select_top_z(fm, z=6)
        activations = [fm[c].max() for c in prototypes.channels]
        assert activations == sorted(activations, reverse=True)

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=15, deadline=None)
    def test_locations_unique(self, z):
        fm = np.random.default_rng(z).random((8, 5, 5))
        prototypes = select_top_z(fm, z=z)
        locations = {tuple(loc) for loc in prototypes.locations}
        assert len(locations) == prototypes.n_prototypes


class TestPaddedVectors:
    def test_exact_z_rows(self):
        fm = np.zeros((4, 2, 2))
        fm[:, 1, 1] = [4.0, 3.0, 2.0, 1.0]
        prototypes = select_top_z(fm, z=4)  # collapses to 1 unique
        padded = prototypes.padded_vectors(4)
        assert padded.shape == (4, 4)
        for row in padded:
            np.testing.assert_array_equal(row, padded[0])

    def test_no_padding_needed(self):
        fm = np.random.default_rng(4).random((6, 4, 4))
        prototypes = select_top_z(fm, z=3)
        if prototypes.n_prototypes == 3:
            np.testing.assert_array_equal(prototypes.padded_vectors(3), prototypes.vectors)

    def test_invalid_z(self):
        fm = np.random.default_rng(5).random((2, 2, 2))
        with pytest.raises(ValueError):
            select_top_z(fm, 1).padded_vectors(0)


class TestBatchAndHelpers:
    def test_extract_prototypes_batch(self):
        fms = np.random.default_rng(6).random((3, 4, 4, 4))
        sets = extract_prototypes(fms, z=2)
        assert len(sets) == 3
        assert all(isinstance(s, PrototypeSet) for s in sets)

    def test_all_location_vectors(self):
        fm = np.random.default_rng(7).random((3, 2, 4))
        vectors = all_location_vectors(fm)
        assert vectors.shape == (8, 3)
        np.testing.assert_array_equal(vectors[0], fm[:, 0, 0])
        np.testing.assert_array_equal(vectors[5], fm[:, 1, 1])

    def test_prototype_set_validation(self):
        with pytest.raises(ValueError, match="aligned"):
            PrototypeSet(
                vectors=np.zeros((2, 3)),
                locations=np.zeros((1, 2), dtype=np.int64),
                channels=np.zeros(2, dtype=np.int64),
            )
